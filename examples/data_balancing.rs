//! Data balancing compatibility (the paper's Table 4): generate 5x more
//! minority data and show that fairness improves for existing networks and
//! for the FaHaNa architecture alike.
//!
//! Run with `cargo run -p fahana --example data_balancing`.

use archspace::zoo::{self, ReferenceModel};
use dermsim::{balance_dataset, BalancingConfig, DermatologyConfig, DermatologyGenerator, Group};
use evaluator::{Evaluate, SurrogateEvaluator};

fn main() -> Result<(), fahana::FahanaError> {
    let generator = DermatologyGenerator::new(DermatologyConfig {
        samples: 800,
        image_size: 8,
        minority_fraction: 0.15,
        ..DermatologyConfig::default()
    });
    let dataset = generator.generate();
    let balanced = balance_dataset(&dataset, &generator, BalancingConfig::default());
    println!(
        "minority samples: {} -> {} after 5x generative balancing (imbalance {:.2} -> {:.2})",
        dataset.subset_by_group(Group::DARK_SKIN).len(),
        balanced.subset_by_group(Group::DARK_SKIN).len(),
        dataset.stats().imbalance_ratio,
        balanced.stats().imbalance_ratio
    );
    println!();

    let models = [
        zoo::reference_architecture(ReferenceModel::MobileNetV2, 5, 224),
        zoo::reference_architecture(ReferenceModel::MnasNet05, 5, 224),
        zoo::paper_fahana_small(5, 224),
    ];
    println!(
        "{:<18} {:>16} {:>16} {:>12}",
        "model", "unfair (before)", "unfair (after)", "improvement"
    );
    for arch in &models {
        let mut before = SurrogateEvaluator::for_dataset(&dataset, 3);
        let mut after = SurrogateEvaluator::for_dataset(&balanced, 3);
        let u_before = before.evaluate(arch)?.unfairness();
        let u_after = after.evaluate(arch)?.unfairness();
        println!(
            "{:<18} {:>16.4} {:>16.4} {:>12.4}",
            arch.name(),
            u_before,
            u_after,
            u_before - u_after
        );
    }
    println!();
    println!(
        "FaHaNa is compatible with data balancing: the discovered architecture still benefits"
    );
    println!("from extra minority data and remains the fairest model after balancing.");
    Ok(())
}
