//! Dermatology case study: search for fair architectures on the synthetic
//! dermatology dataset and compare the discovered networks against
//! MobileNetV2, the fairest existing small model in the paper.
//!
//! Run with `cargo run -p fahana --example dermatology_search`.

use archspace::zoo;
use edgehw::{DeviceProfile, LatencyEstimator};
use evaluator::{Evaluate, SurrogateEvaluator};
use fahana::{FahanaConfig, FahanaSearch};

fn main() -> Result<(), fahana::FahanaError> {
    let config = FahanaConfig {
        episodes: 200,
        seed: 13,
        ..FahanaConfig::default()
    };
    let outcome = FahanaSearch::new(config)?.run()?;

    // Reference point: MobileNetV2 under the same evaluator and device model.
    let mbv2 = zoo::mobilenet_v2(5, 224);
    let mut surrogate = SurrogateEvaluator::default();
    let mbv2_eval = surrogate.evaluate(&mbv2)?;
    let pi = LatencyEstimator::new(DeviceProfile::raspberry_pi_4());
    let mbv2_latency = pi.estimate_ms(&mbv2);

    println!(
        "baseline MobileNetV2: {:.2}M params, accuracy {:.2}%, unfairness {:.4}, {:.0} ms",
        mbv2.param_millions(),
        mbv2_eval.accuracy() * 100.0,
        mbv2_eval.unfairness(),
        mbv2_latency
    );
    println!();

    if let Some(small) = &outcome.best_small {
        let size_reduction = mbv2.param_count() as f64 / small.record.params.max(1) as f64;
        let speedup = mbv2_latency / small.record.latency_ms.max(1.0);
        let fairness_gain =
            (mbv2_eval.unfairness() - small.record.unfairness) / mbv2_eval.unfairness() * 100.0;
        println!(
            "discovered small network: {} — {:.2}M params ({size_reduction:.2}x smaller), \
             accuracy {:.2}%, unfairness {:.4} ({fairness_gain:.1}% fairer), {:.0} ms ({speedup:.2}x faster)",
            small.record.name,
            small.record.params as f64 / 1e6,
            small.record.accuracy * 100.0,
            small.record.unfairness,
            small.record.latency_ms
        );
        println!("(paper reference for FaHaNa-Small: 5.28x smaller, 15.14% fairer, 5.75x faster)");
    }
    if let Some(fairest) = &outcome.fairest {
        println!();
        println!(
            "fairest discovered network: {} — unfairness {:.4} at accuracy {:.2}%",
            fairest.record.name,
            fairest.record.unfairness,
            fairest.record.accuracy * 100.0
        );
    }
    println!();
    println!("accuracy/unfairness Pareto frontier of the discovered networks:");
    for p in outcome.accuracy_fairness_frontier() {
        println!(
            "  {:<20} accuracy {:.4}, unfairness {:.4}",
            p.label, p.maximize, p.minimize
        );
    }
    Ok(())
}
