//! Freezing analysis: measure per-layer feature variation between skin-tone
//! groups on a small backbone, derive the frozen header, and show how much
//! training work the freezing method saves (the paper's Observation 3 and
//! Table 2 acceleration).
//!
//! Run with `cargo run -p fahana --example freezing_analysis`.

use archspace::{BackboneProducer, SearchSpace, SpaceConfig};
use dermsim::{DermatologyConfig, DermatologyGenerator};
use evaluator::paper_figure3_profile;

fn main() -> Result<(), fahana::FahanaError> {
    // The paper's published Figure 3 profile of the pretrained MobileNetV2
    // backbone drives the freezing decision.
    let backbone = archspace::zoo::mobilenet_v2(5, 224);
    let producer = BackboneProducer::new(backbone.clone(), 0.5);
    let profile = paper_figure3_profile();
    let decision = producer.decide_split(&profile);
    println!(
        "gamma = 0.5, threshold = {:.4} -> freeze the first {} of {} backbone blocks",
        decision.threshold,
        decision.split_layer,
        backbone.blocks().len()
    );

    let frozen = producer.template(&decision);
    let full = producer.full_search_template();
    let frozen_space = SearchSpace::new(SpaceConfig::default(), frozen.searchable_slots());
    let full_space = SearchSpace::new(SpaceConfig::default(), full.searchable_slots());
    println!(
        "search space: 10^{:.1} with freezing vs 10^{:.1} without (paper: 10^9 vs 10^19)",
        frozen_space.log10_size(),
        full_space.log10_size()
    );
    println!(
        "pretrained parameters reused per child: {:.2}M of the backbone header",
        frozen.frozen_param_count() as f64 / 1e6
    );

    // the dataset is only needed here to show the measured (local) profile
    let dataset = DermatologyGenerator::new(DermatologyConfig {
        samples: 200,
        image_size: 10,
        ..DermatologyConfig::default()
    })
    .generate();
    println!(
        "synthetic dermatology dataset: {} samples, imbalance ratio {:.2}",
        dataset.len(),
        dataset.stats().imbalance_ratio
    );
    Ok(())
}
