//! Quickstart: run a small FaHaNa search and print what it found.
//!
//! Run with `cargo run -p fahana --example quickstart`.

use fahana::{FahanaConfig, FahanaSearch};

fn main() -> Result<(), fahana::FahanaError> {
    // A short search with the paper's constraints (Raspberry Pi, TC = 1500 ms,
    // AC = 81%) but a small episode budget so it finishes in seconds.
    let config = FahanaConfig {
        episodes: 80,
        seed: 7,
        ..FahanaConfig::default()
    };
    let search = FahanaSearch::new(config)?;
    println!(
        "search space: 10^{:.1} candidate tails over {} searchable slots ({} backbone blocks frozen)",
        search.space().log10_size(),
        search.searchable_slots(),
        search.frozen_blocks()
    );

    let outcome = search.run()?;
    println!(
        "explored {} episodes, {:.1}% of the children met the hardware + accuracy constraints",
        outcome.history.len(),
        outcome.valid_ratio * 100.0
    );
    if let Some(best) = &outcome.best {
        println!(
            "best architecture: {} — reward {:.3}, accuracy {:.2}%, unfairness {:.4}, {:.0} ms on the Pi",
            best.record.name,
            best.record.reward,
            best.record.accuracy * 100.0,
            best.record.unfairness,
            best.record.latency_ms
        );
        println!("{}", archspace::render_architecture(&best.architecture));
    } else {
        println!("no valid architecture found — try more episodes");
    }
    Ok(())
}
