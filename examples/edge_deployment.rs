//! Edge deployment check: estimate latency and storage of candidate networks
//! on the two boards the paper targets and check them against a deployment
//! specification, exactly as the FaHaNa evaluator does before training.
//!
//! Run with `cargo run -p fahana --example edge_deployment`.

use archspace::zoo::{self, ReferenceModel};
use edgehw::{BlockLatencyTable, DeviceProfile, HardwareSpec, LatencyEstimator};

fn main() {
    let spec = HardwareSpec::table1_raspberry_pi();
    println!(
        "deployment spec: {} with TC = {:.0} ms and a {:.0} MB storage limit",
        spec.device.kind,
        spec.timing_constraint_ms,
        spec.storage_limit_mb.unwrap_or(f64::INFINITY)
    );
    println!();
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>8}",
        "model", "storage", "Pi (ms)", "Odroid (ms)", "deploy?"
    );

    let odroid = LatencyEstimator::new(DeviceProfile::odroid_xu4());
    let mut candidates = vec![
        zoo::paper_fahana_small(5, 224),
        zoo::paper_fahana_fair(5, 224),
    ];
    for model in [
        ReferenceModel::SqueezeNet10,
        ReferenceModel::MnasNet05,
        ReferenceModel::MobileNetV3Small,
        ReferenceModel::MobileNetV2,
        ReferenceModel::ResNet18,
        ReferenceModel::ProxylessNasMobile,
    ] {
        candidates.push(zoo::reference_architecture(model, 5, 224));
    }

    // the per-block latency table amortises profiling across candidates,
    // mirroring the paper's offline per-block measurement methodology
    let mut table = BlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
    for arch in &candidates {
        let pi_latency = table.estimate_ms(arch);
        let (_, meets) = spec.check(arch);
        println!(
            "{:<18} {:>8.2}MB {:>12.1} {:>12.1} {:>8}",
            arch.name(),
            arch.storage_mb(),
            pi_latency,
            odroid.estimate_ms(arch),
            if meets { "yes" } else { "no" }
        );
    }
    let (hits, misses) = table.hit_miss();
    println!();
    println!("per-block latency table: {hits} cache hits, {misses} profiled block configurations");
}
