//! Cross-crate integration tests: the full FaHaNa pipeline (dataset →
//! freezing → controller → evaluator → hardware constraint → reward) run end
//! to end with the surrogate evaluator.

use dermsim::DermatologyConfig;
use fahana::{FahanaConfig, FahanaSearch, MonasConfig, MonasSearch, RewardConfig};

fn test_config(episodes: usize, seed: u64) -> FahanaConfig {
    FahanaConfig {
        episodes,
        seed,
        dataset: DermatologyConfig {
            samples: 250,
            image_size: 8,
            ..DermatologyConfig::default()
        },
        ..FahanaConfig::default()
    }
}

#[test]
fn fahana_search_respects_hardware_and_accuracy_constraints() {
    let outcome = FahanaSearch::new(test_config(60, 1))
        .expect("config builds")
        .run()
        .expect("search runs");
    assert_eq!(outcome.history.len(), 60);
    for record in outcome.history.iter().filter(|r| r.valid) {
        assert!(
            record.latency_ms <= 1500.0,
            "valid child {} violates the timing constraint ({} ms)",
            record.name,
            record.latency_ms
        );
        assert!(record.accuracy >= 0.81);
        assert!(record.storage_mb <= 30.0);
        assert!(record.reward > -1.0);
    }
}

#[test]
fn fahana_finds_at_least_one_valid_architecture_in_a_moderate_run() {
    let outcome = FahanaSearch::new(test_config(120, 2))
        .expect("config builds")
        .run()
        .expect("search runs");
    assert!(
        outcome.best.is_some(),
        "120 episodes over the frozen-tail space should find a valid child (valid ratio {:.2})",
        outcome.valid_ratio
    );
    let best = outcome.best.unwrap();
    best.architecture
        .validate()
        .expect("discovered architecture is well-formed");
    // the discovered network must chain channels starting from the frozen
    // MobileNetV2 header
    assert_eq!(best.architecture.blocks().len(), 17);
}

#[test]
fn freezing_improves_valid_ratio_and_shrinks_space_versus_monas() {
    // Table 2's shape: same constraints, same episode budget.
    let fahana = FahanaSearch::new(test_config(80, 3))
        .expect("config builds")
        .run()
        .expect("search runs");
    let monas = MonasSearch::new(MonasConfig::matching(&test_config(80, 3)))
        .expect("config builds")
        .run()
        .expect("search runs");
    assert!(fahana.space_log10_size < monas.space_log10_size);
    assert!(
        fahana.valid_ratio >= monas.valid_ratio,
        "FaHaNa valid ratio {:.2} should not be below MONAS {:.2}",
        fahana.valid_ratio,
        monas.valid_ratio
    );
    // Per examined child, FaHaNa is cheaper by construction: its children
    // reuse the frozen pretrained header and train only the searched tail,
    // while every MONAS child trains end to end. (Whole-run time
    // additionally depends on how many children each method gets to train,
    // which is what Table 2 reports; see EXPERIMENTS.md.)
    for record in fahana.history.iter().filter(|r| r.trained_params > 0) {
        assert!(
            record.trained_params < record.params,
            "FaHaNa child {} should train fewer params ({}) than its total ({})",
            record.name,
            record.trained_params,
            record.params
        );
    }
    for record in monas.history.iter().filter(|r| r.trained_params > 0) {
        assert_eq!(
            record.trained_params, record.params,
            "MONAS child {} trains end to end",
            record.name
        );
    }
    assert!(
        fahana.history.iter().any(|r| r.trained_params > 0),
        "the FaHaNa run should evaluate at least one child"
    );
}

#[test]
fn reward_shaping_controls_the_accuracy_fairness_tradeoff() {
    // larger beta should steer the search toward lower unfairness among the
    // discovered best networks (or at least not increase it), mirroring the
    // paper's alpha/beta knobs
    let mut balanced_cfg = test_config(100, 4);
    balanced_cfg.reward = RewardConfig {
        alpha: 1.0,
        beta: 1.0,
        ..RewardConfig::default()
    };
    let mut fairness_heavy_cfg = test_config(100, 4);
    fairness_heavy_cfg.reward = RewardConfig {
        alpha: 1.0,
        beta: 4.0,
        ..RewardConfig::default()
    };
    let balanced = FahanaSearch::new(balanced_cfg).unwrap().run().unwrap();
    let fairness_heavy = FahanaSearch::new(fairness_heavy_cfg)
        .unwrap()
        .run()
        .unwrap();
    if let (Some(a), Some(b)) = (&balanced.best, &fairness_heavy.best) {
        assert!(
            b.record.unfairness <= a.record.unfairness + 0.03,
            "beta=4 best unfairness {:.4} should not exceed beta=1 best {:.4} by much",
            b.record.unfairness,
            a.record.unfairness
        );
    }
}

#[test]
fn controller_learning_improves_reward_over_random_half() {
    // the mean reward of the second half of the search should be at least as
    // good as the first half — evidence the policy gradient is learning
    let outcome = FahanaSearch::new(test_config(160, 5))
        .expect("config builds")
        .run()
        .expect("search runs");
    let rewards: Vec<f64> = outcome.history.iter().map(|r| r.reward).collect();
    let half = rewards.len() / 2;
    let first: f64 = rewards[..half].iter().sum::<f64>() / half as f64;
    let second: f64 = rewards[half..].iter().sum::<f64>() / (rewards.len() - half) as f64;
    assert!(
        second >= first - 0.05,
        "second-half mean reward {second:.3} should not collapse below first-half {first:.3}"
    );
}
