//! Cross-crate integration test of the "real" code path: generate synthetic
//! dermatology images, lower a searched architecture to a trainable network,
//! train it with the neural substrate, and measure fairness — the pipeline
//! the paper runs on its GPU cluster, at laptop scale.

use archspace::{Architecture, BackboneProducer, BlockConfig, BlockKind};
use archspace::{SearchSpace, SpaceConfig};
use dermsim::{DermatologyConfig, DermatologyGenerator};
use evaluator::{Evaluate, TrainedEvaluator, TrainedEvaluatorConfig};
use ftensor::SeededRng;
use neural::TrainConfig;

fn tiny_backbone() -> Architecture {
    Architecture::builder(3)
        .name("integration-backbone")
        .stem(8, 3)
        .input_size(8)
        .block(BlockConfig::new(BlockKind::Cb, 8, 12, 12, 3))
        .block(BlockConfig::new(BlockKind::Db, 12, 24, 12, 3))
        .block(BlockConfig::new(BlockKind::Rb, 12, 16, 16, 3))
        .build()
        .expect("backbone is valid")
}

#[test]
fn trained_evaluation_of_a_sampled_child_produces_sane_fairness_metrics() {
    let dataset = DermatologyGenerator::new(DermatologyConfig {
        samples: 150,
        classes: 3,
        image_size: 8,
        minority_fraction: 0.25,
        ..DermatologyConfig::default()
    })
    .generate();

    // freeze the first block of the backbone and search a 2-slot tail
    let producer = BackboneProducer::new(tiny_backbone(), 0.5);
    let decision = producer.decide_split(&[0.01, 0.05, 0.09]);
    let template = producer.template(&decision);
    assert!(template.frozen_block_count() >= 1);

    let space = SearchSpace::new(
        SpaceConfig {
            ch_mid_choices: vec![8, 12, 16],
            ch_out_choices: vec![8, 12, 16],
            kernel_choices: vec![3],
            allow_skip: true,
        },
        template.searchable_slots(),
    );
    let mut rng = SeededRng::new(9);
    let decisions = space.random_decisions(&mut rng);
    let child = template
        .instantiate(&space, &decisions, "integration-child")
        .expect("child instantiates");
    child.validate().expect("child is valid");

    let mut evaluator = TrainedEvaluator::new(
        &dataset,
        TrainedEvaluatorConfig {
            train: TrainConfig {
                epochs: 4,
                batch_size: 16,
                learning_rate: 0.08,
                ..TrainConfig::default()
            },
            seed: 2,
        },
    )
    .expect("dataset is non-empty");

    let frozen_eval = evaluator
        .evaluate_with_frozen(&child, template.frozen_block_count())
        .expect("training succeeds");
    let full_eval = evaluator.evaluate(&child).expect("training succeeds");

    for eval in [&frozen_eval, &full_eval] {
        assert!((0.0..=1.0).contains(&eval.accuracy()));
        assert!((0.0..=2.0).contains(&eval.unfairness()));
        assert_eq!(eval.report.per_group.len(), 2);
    }
    assert!(
        frozen_eval.trained_params < full_eval.trained_params,
        "freezing the header must reduce the trained parameter count"
    );
}
