//! Cross-crate integration tests: the reference zoo, the surrogate and the
//! hardware model must jointly reproduce the qualitative claims the paper's
//! tables rest on.

use archspace::zoo::{self, ReferenceModel};
use edgehw::{DeviceProfile, HardwareSpec, LatencyEstimator};
use evaluator::{Evaluate, SurrogateEvaluator};

#[test]
fn table1_meets_spec_classification_matches_the_paper() {
    // with TC = 1500 ms and < 30 MB on the Pi, the paper finds exactly
    // SqueezeNet 1.0, MobileNetV3(S) and MnasNet 0.5 feasible among the
    // competitors it lists in Table 1
    let spec = HardwareSpec::table1_raspberry_pi();
    let feasible = [
        ReferenceModel::SqueezeNet10,
        ReferenceModel::MobileNetV3Small,
        ReferenceModel::MnasNet05,
    ];
    let infeasible = [
        ReferenceModel::MobileNetV2,
        ReferenceModel::ProxylessNasGpu,
        ReferenceModel::MnasNet10,
        ReferenceModel::ProxylessNasMobile,
    ];
    for model in feasible {
        let arch = zoo::reference_architecture(model, 5, 224);
        let (latency, meets) = spec.check(&arch);
        assert!(
            meets,
            "{model} should meet the Table 1 spec (got {latency:.0} ms)"
        );
    }
    for model in infeasible {
        let arch = zoo::reference_architecture(model, 5, 224);
        let (latency, meets) = spec.check(&arch);
        assert!(
            !meets,
            "{model} should violate the Table 1 spec (got {latency:.0} ms)"
        );
    }
}

#[test]
fn fahana_nets_reproduce_the_headline_comparison_against_mobilenet_v2() {
    // paper headline: vs MobileNetV2, FaHaNa-Small is >4x smaller, >2x faster
    // on both boards, fairer, and no less accurate
    let mut surrogate = SurrogateEvaluator::default();
    let pi = LatencyEstimator::new(DeviceProfile::raspberry_pi_4());
    let odroid = LatencyEstimator::new(DeviceProfile::odroid_xu4());

    let mbv2 = zoo::mobilenet_v2(5, 224);
    let small = zoo::paper_fahana_small(5, 224);
    let mbv2_eval = surrogate.evaluate(&mbv2).unwrap();
    let small_eval = surrogate.evaluate(&small).unwrap();

    assert!(mbv2.param_count() as f64 / small.param_count() as f64 > 4.0);
    assert!(pi.estimate_ms(&mbv2) / pi.estimate_ms(&small) > 2.0);
    assert!(odroid.estimate_ms(&mbv2) / odroid.estimate_ms(&small) > 2.0);
    assert!(small_eval.unfairness() < mbv2_eval.unfairness());
    assert!(small_eval.accuracy() >= mbv2_eval.accuracy() - 0.01);
}

#[test]
fn fahana_fair_is_the_fairest_model_and_beats_the_resnet50_baseline() {
    let mut surrogate = SurrogateEvaluator::default();
    let pi = LatencyEstimator::new(DeviceProfile::raspberry_pi_4());
    let fair = zoo::paper_fahana_fair(5, 224);
    let fair_eval = surrogate.evaluate(&fair).unwrap();
    let resnet50 = zoo::reference_architecture(ReferenceModel::ResNet50, 5, 224);
    let resnet50_eval = surrogate.evaluate(&resnet50).unwrap();

    assert!(fair_eval.unfairness() < resnet50_eval.unfairness());
    assert!(resnet50.param_count() as f64 / fair.param_count() as f64 > 3.0);
    assert!(pi.estimate_ms(&resnet50) > pi.estimate_ms(&fair));
    // every zoo competitor is less fair than FaHaNa-Fair
    for entry in zoo::reference_models(5, 224) {
        let eval = surrogate.evaluate(&entry.architecture).unwrap();
        assert!(
            fair_eval.unfairness() <= eval.unfairness() + 1e-9,
            "{} should not be fairer than FaHaNa-Fair",
            entry.model
        );
    }
}

#[test]
fn larger_is_fairer_within_each_model_family() {
    // Figure 1(a): within a family, the larger variant is fairer
    let unfair = |model: ReferenceModel| {
        SurrogateEvaluator::default()
            .evaluate(&zoo::reference_architecture(model, 5, 224))
            .unwrap()
            .unfairness()
    };
    assert!(unfair(ReferenceModel::MnasNet05) > unfair(ReferenceModel::MnasNet10));
    assert!(unfair(ReferenceModel::MobileNetV3Small) > unfair(ReferenceModel::MobileNetV3Large));
    assert!(unfair(ReferenceModel::ResNet18) >= unfair(ReferenceModel::ResNet50));
    // the ProxylessNAS pair is not asserted here: the two IR approximations
    // are nearly the same size, so their surrogate scores differ only by
    // noise (the paper's gap comes from the GPU variant being ~2x larger)
}

#[test]
fn odroid_is_uniformly_slower_than_the_pi() {
    let pi = LatencyEstimator::new(DeviceProfile::raspberry_pi_4());
    let odroid = LatencyEstimator::new(DeviceProfile::odroid_xu4());
    for entry in zoo::reference_models(5, 224) {
        assert!(odroid.estimate_ms(&entry.architecture) > pi.estimate_ms(&entry.architecture));
    }
}
