//! Offline stand-in for the `serde` facade.
//!
//! Re-exports the no-op derives from the sibling `serde_derive` stub and
//! declares the two marker traits so `use serde::{Serialize, Deserialize}`
//! resolves in both the macro and the trait namespace. No in-tree code
//! bounds on these traits (JSON output in `fahana-runtime` is hand-rolled),
//! so the derives intentionally generate no impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no in-tree consumers).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no in-tree consumers).
pub trait Deserialize<'de> {}
