//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` for API fidelity with the
//! real ecosystem, but nothing in-tree consumes the generated impls (JSON
//! emission is hand-rolled in `fahana-runtime::report`). These derives
//! therefore expand to nothing; they exist so `#[derive(Serialize,
//! Deserialize)]` and `#[serde(...)]` helper attributes keep compiling
//! without network access to crates.io.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
