//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x surface this workspace's test
//! suites use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`, range and
//! tuple strategies, `collection::vec` and `sample::select`.
//!
//! Unlike upstream there is no shrinking and no persistence: each test runs
//! a fixed number of cases drawn from a generator seeded deterministically
//! from the test's module path, so failures reproduce across runs.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{TestCaseError, TestRng};

/// Run-shaping configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Module-style re-exports matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each argument is drawn from its strategy for
/// every case; the body may use `prop_assert!` family macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!("property {} failed at case {case}: {err}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Property-test assertion; fails the current case without panicking
/// through arbitrary stack frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{Strategy, TestRng};

    #[test]
    fn config_constructors() {
        assert_eq!(ProptestConfig::with_cases(5).cases, 5);
        assert!(ProptestConfig::default().cases > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            n in 1usize..10,
            x in -2.0f64..2.0,
            (a, b) in (0.0f64..1.0, 0.0f64..1.0),
            k in prop::sample::select(vec![3usize, 5, 7]),
            xs in crate::collection::vec(0.0f32..1.0, 1..8),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
            prop_assert!([3usize, 5, 7].contains(&k));
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    proptest! {
        #[test]
        fn default_config_is_used_without_inner_attribute(v in 0usize..3) {
            prop_assert!(v < 3);
            prop_assert_eq!(v, v);
            prop_assert_ne!(v, v + 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = 0usize..100;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
