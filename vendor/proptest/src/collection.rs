//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length interval for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy generating a `Vec` of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_size_range() {
        let mut rng = TestRng::deterministic("vec");
        let s = vec(0usize..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = vec(0usize..10, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
        let inclusive = vec(0usize..10, 1..=2);
        let v = inclusive.generate(&mut rng);
        assert!((1..=2).contains(&v.len()));
    }
}
