//! Sampling strategies (`proptest::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy drawing uniformly from a fixed list of options.
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].clone()
    }
}

/// Selects uniformly from `options`, which must be non-empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_only_returns_listed_options() {
        let mut rng = TestRng::deterministic("select");
        let s = select(vec![3usize, 5, 7]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            match s.generate(&mut rng) {
                3 => seen[0] = true,
                5 => seen[1] = true,
                7 => seen[2] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s), "all options should appear");
    }

    #[test]
    #[should_panic(expected = "at least one option")]
    fn empty_select_panics() {
        select(Vec::<u8>::new());
    }
}
