//! Case generation and failure plumbing.

use std::fmt;

/// A failed property case (carried by `prop_assert!` through `?`-free
/// early return).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary label (typically the test's
    /// module path), so every property test has a stable stream.
    pub fn deterministic(label: &str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below requires n > 0");
        self.next_u64() % n
    }
}
