//! The [`Strategy`] trait and the built-in range/tuple strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type (no shrinking, unlike
/// upstream proptest).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot generate from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ranges_cover_bounds_exclusively() {
        let mut rng = TestRng::deterministic("int");
        let s = 2usize..5;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v));
        }
        let inclusive = 7i32..=7;
        assert_eq!(inclusive.generate(&mut rng), 7);
    }

    #[test]
    fn negative_integer_ranges_work() {
        let mut rng = TestRng::deterministic("neg");
        let s = -5i64..-1;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((-5..-1).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("float");
        let s = -1.5f32..2.5;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((-1.5..2.5).contains(&v));
        }
    }
}
