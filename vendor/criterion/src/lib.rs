//! Offline stand-in for `criterion`.
//!
//! Provides the macro/builder surface the `fahana-bench` crate uses —
//! [`Criterion::default`], [`Criterion::sample_size`],
//! [`Criterion::bench_function`], [`criterion_group!`] and
//! [`criterion_main!`] — backed by a plain wall-clock harness instead of
//! criterion's statistical machinery. Results print mean time per
//! iteration; there is no outlier analysis, plotting or history.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean_ns = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
        println!(
            "bench {id:<55} {:>12} ns/iter ({} iters)",
            mean_ns, bencher.iterations
        );
        self
    }
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations (plus one
    /// untimed warm-up run).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("unit/test", |b| b.iter(|| runs += 1));
        // 3 timed + 1 warm-up
        assert_eq!(runs, 4);
    }

    criterion_group! {
        name = group_long_form;
        config = Criterion::default().sample_size(2);
        targets = noop_bench
    }
    criterion_group!(group_short_form, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("unit/noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macros_produce_callable_functions() {
        group_long_form();
        group_short_form();
    }
}
