//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A deterministic, seedable generator (xoshiro256** under the hood; the
/// upstream crate uses ChaCha12, but callers only depend on determinism).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state
        if state == [0; 4] {
            state = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { state }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }
}
