//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the small slice of the `rand` 0.8 API the
//! workspace actually uses: `StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`, and `Rng::gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the workspace only relies
//! on determinism for a fixed seed, never on a specific stream.

pub mod rngs;

pub use rngs::StdRng;

/// Minimal core-RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the full value domain
/// (the subset of `rand::distributions::Standard` the workspace needs).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1)
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random bits in [0, 1)
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A half-open or inclusive range a value can be drawn from uniformly
/// (stands in for `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of an RNG from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f64 = rng.gen_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(rng.gen_range(0usize..5) < 5);
            let v = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!StdRng::seed_from_u64(0).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(0).gen_bool(1.0 + 1e-9));
    }

    #[test]
    fn standard_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }
}
