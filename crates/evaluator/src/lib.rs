//! `evaluator` — accuracy/fairness evaluation of candidate architectures.
//!
//! The FaHaNa search loop (paper Figure 4 ➃) needs, for every child network,
//! the overall accuracy `A(f'_N, D)`, the per-group accuracies
//! `A(f'_N, D_gk)` and the unfairness score `U(f'_N, D)`. The paper obtains
//! these by training each child from scratch on a GPU cluster; this crate
//! offers two interchangeable back-ends behind the [`Evaluate`] trait:
//!
//! * [`SurrogateEvaluator`] — an analytic training-outcome model calibrated
//!   against the accuracy/unfairness values the paper publishes for eleven
//!   reference networks. It is monotone in the factors the paper identifies
//!   (model capacity, tail-block expressivity, group imbalance) and is fast
//!   enough to drive a 500-episode search in milliseconds.
//! * [`TrainedEvaluator`] — really lowers the architecture with
//!   [`archspace::lowering`], trains it on a [`dermsim`] dataset with the
//!   [`neural`] substrate and measures the metrics. Slow, used for spot
//!   validation and the smaller examples.
//!
//! The crate also contains the fairness metric definitions ([`fairness`]),
//! the layer-wise feature-variation analysis behind the freezing method
//! ([`variation`]) and the search-cost model used to reproduce Table 2
//! ([`cost`]).

pub mod cost;
pub mod error;
pub mod evaluate;
pub mod fairness;
pub mod surrogate;
pub mod trained;
pub mod variation;

pub use cost::{SearchCostConfig, SearchCostModel};
pub use error::EvalError;
pub use evaluate::{EvalRequest, Evaluate, EvaluateBatch, FairnessEvaluation};
pub use fairness::{unfairness_score, FairnessReport, GroupAccuracy};
pub use surrogate::{SurrogateConfig, SurrogateEvaluator};
pub use trained::{TrainedEvaluator, TrainedEvaluatorConfig};
pub use variation::{feature_variation_by_block, paper_figure3_profile, FeatureVariationProfile};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, EvalError>;
