//! Error type for evaluation operations.

use std::error::Error;
use std::fmt;

/// Error returned by evaluators.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The dataset cannot be used (empty, missing groups, export failure).
    BadDataset(String),
    /// The architecture could not be lowered or trained.
    Architecture(String),
    /// A lower-level neural-network error occurred during training.
    Training(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::BadDataset(msg) => write!(f, "dataset error: {msg}"),
            EvalError::Architecture(msg) => write!(f, "architecture error: {msg}"),
            EvalError::Training(msg) => write!(f, "training error: {msg}"),
        }
    }
}

impl Error for EvalError {}

impl From<archspace::ArchError> for EvalError {
    fn from(err: archspace::ArchError) -> Self {
        EvalError::Architecture(err.to_string())
    }
}

impl From<neural::NeuralError> for EvalError {
    fn from(err: neural::NeuralError) -> Self {
        EvalError::Training(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let arch_err = archspace::ArchError::InvalidArchitecture("zero classes".into());
        let eval: EvalError = arch_err.into();
        assert!(eval.to_string().contains("zero classes"));

        let neural_err = neural::NeuralError::InvalidConfig("bad".into());
        let eval: EvalError = neural_err.into();
        assert!(eval.to_string().contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<EvalError>();
    }
}
