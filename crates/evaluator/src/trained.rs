//! The trained evaluator: really trains a lowered child network.

use archspace::lowering::{lower, LoweringOptions};
use archspace::Architecture;
use dermsim::{Dataset, DatasetSplit, Group};
use ftensor::{Scratch, Tensor};
use neural::{Layer, TrainConfig, Trainer};

use crate::evaluate::{Evaluate, FairnessEvaluation};
use crate::fairness::report_from_predictions;
use crate::{EvalError, Result};

/// Configuration of the trained evaluator.
#[derive(Debug, Clone)]
pub struct TrainedEvaluatorConfig {
    /// Training hyperparameters for each child network.
    pub train: TrainConfig,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl Default for TrainedEvaluatorConfig {
    fn default() -> Self {
        TrainedEvaluatorConfig {
            train: TrainConfig {
                epochs: 6,
                batch_size: 16,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
            seed: 0,
        }
    }
}

/// Trains each candidate on the dermatology images and measures accuracy and
/// fairness on the held-out test split.
///
/// This is the "real" code path standing in for the paper's GPU-cluster
/// training; it is practical only for small architectures and small image
/// sizes, which is why the search defaults to the
/// [`SurrogateEvaluator`](crate::SurrogateEvaluator).
#[derive(Debug)]
pub struct TrainedEvaluator {
    split: DatasetSplit,
    config: TrainedEvaluatorConfig,
    groups: usize,
    // episode-invariant evaluation inputs, materialised once so that each
    // candidate evaluation touches no per-episode dataset allocation
    train_data: (Tensor, Vec<usize>),
    test_data: (Tensor, Vec<usize>),
    test_groups: Vec<Group>,
    // per-episode working memory, recycled across candidates
    scratch: Scratch,
    predictions: Vec<usize>,
    correct: Vec<bool>,
}

impl TrainedEvaluator {
    /// Creates an evaluator over a dataset (split 60/20/20 internally).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::BadDataset`] if the dataset is empty or either
    /// the training or the test split ends up without samples.
    pub fn new(dataset: &Dataset, config: TrainedEvaluatorConfig) -> Result<Self> {
        if dataset.is_empty() {
            return Err(EvalError::BadDataset("dataset is empty".into()));
        }
        let split = dataset.split_default();
        let train_data = split
            .train
            .to_image_tensor()
            .ok_or_else(|| EvalError::BadDataset("training split is empty".into()))?;
        let test_data = split
            .test
            .to_image_tensor()
            .ok_or_else(|| EvalError::BadDataset("test split is empty".into()))?;
        let test_groups = split.test.sample_groups();
        Ok(TrainedEvaluator {
            split,
            config,
            groups: dataset.groups(),
            train_data,
            test_data,
            test_groups,
            scratch: Scratch::new(),
            predictions: Vec::new(),
            correct: Vec::new(),
        })
    }

    /// The train/validation/test split in use.
    pub fn split(&self) -> &DatasetSplit {
        &self.split
    }
}

impl Evaluate for TrainedEvaluator {
    fn evaluate_with_frozen(
        &mut self,
        arch: &Architecture,
        frozen_blocks: usize,
    ) -> Result<FairnessEvaluation> {
        let lowered = lower(
            arch,
            LoweringOptions {
                seed: self.config.seed,
                freeze_first_blocks: frozen_blocks,
            },
        )?;
        let mut network = lowered.network;
        let trained_params = network.trainable_param_count() as u64;

        let (train_x, train_y) = &self.train_data;
        let trainer = Trainer::new(self.config.train.clone());
        trainer.fit(&mut network, train_x, train_y)?;

        let (test_x, test_y) = &self.test_data;
        let logits = network.forward_scratch(test_x, false, &mut self.scratch)?;
        logits
            .argmax_rows_into(&mut self.predictions)
            .map_err(neural::NeuralError::from)?;
        self.scratch.release_tensor(logits);
        self.correct.clear();
        self.correct.extend(
            self.predictions
                .iter()
                .zip(test_y.iter())
                .map(|(p, l)| p == l),
        );
        let report = report_from_predictions(&self.correct, &self.test_groups, self.groups);
        Ok(FairnessEvaluation {
            architecture: arch.name().to_string(),
            report,
            trained_params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archspace::{BlockConfig, BlockKind};
    use dermsim::{DermatologyConfig, DermatologyGenerator};

    fn tiny_dataset() -> Dataset {
        // 360 samples leave a 72-sample test split — small enough to train
        // quickly, large enough that above-chance accuracy is a stable
        // signal rather than a coin flip on two dozen samples.
        DermatologyGenerator::new(DermatologyConfig {
            samples: 360,
            image_size: 8,
            classes: 3,
            minority_fraction: 0.25,
            ..DermatologyConfig::default()
        })
        .generate()
    }

    fn tiny_arch() -> Architecture {
        Architecture::builder(3)
            .name("tiny-trained")
            .stem(8, 3)
            .input_size(8)
            .block(BlockConfig::new(BlockKind::Cb, 8, 12, 16, 3))
            .block(BlockConfig::new(BlockKind::Cb, 16, 16, 16, 3))
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_empty_dataset() {
        let empty = Dataset::new(Vec::new(), 5, 2);
        assert!(TrainedEvaluator::new(&empty, TrainedEvaluatorConfig::default()).is_err());
    }

    #[test]
    fn trains_and_reports_fairness_metrics() {
        let dataset = tiny_dataset();
        let mut evaluator = TrainedEvaluator::new(
            &dataset,
            TrainedEvaluatorConfig {
                train: TrainConfig {
                    epochs: 25,
                    batch_size: 16,
                    // lr 0.1 reliably diverges on this tiny conv stack; a
                    // gentler schedule converges for every probed seed
                    learning_rate: 0.02,
                    ..TrainConfig::default()
                },
                seed: 0,
            },
        )
        .unwrap();
        let eval = evaluator.evaluate(&tiny_arch()).unwrap();
        assert!((0.0..=1.0).contains(&eval.accuracy()));
        assert!(eval.unfairness() >= 0.0);
        assert_eq!(eval.report.per_group.len(), 2);
        assert!(eval.trained_params > 0);
        // the classifier should at least beat chance on 3 classes after
        // training on the strongly structured synthetic images
        assert!(
            eval.accuracy() > 1.0 / 3.0,
            "trained accuracy {} should beat chance",
            eval.accuracy()
        );
    }

    #[test]
    fn freezing_reduces_trained_parameter_count() {
        let dataset = tiny_dataset();
        let mut evaluator =
            TrainedEvaluator::new(&dataset, TrainedEvaluatorConfig::default()).unwrap();
        let arch = tiny_arch();
        let full = evaluator.evaluate_with_frozen(&arch, 0).unwrap();
        let frozen = evaluator.evaluate_with_frozen(&arch, 1).unwrap();
        assert!(frozen.trained_params < full.trained_params);
    }
}
