//! Fairness metrics: per-group accuracy and the unfairness score.

use dermsim::Group;
use serde::{Deserialize, Serialize};

/// Accuracy of one demographic group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupAccuracy {
    /// The group.
    pub group: Group,
    /// Accuracy on that group's samples.
    pub accuracy: f64,
    /// Number of samples the accuracy was measured on.
    pub count: usize,
}

/// A full fairness report for one model on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Accuracy on the whole dataset.
    pub overall_accuracy: f64,
    /// Per-group accuracies, ordered by group index.
    pub per_group: Vec<GroupAccuracy>,
    /// The paper's unfairness score `U`.
    pub unfairness: f64,
}

impl FairnessReport {
    /// Builds a report from the overall accuracy and per-group accuracies,
    /// computing the unfairness score.
    pub fn new(overall_accuracy: f64, per_group: Vec<GroupAccuracy>) -> Self {
        // summed in per_group order, exactly as `unfairness_score` over the
        // collected accuracies would
        let unfairness = per_group
            .iter()
            .map(|g| (g.accuracy - overall_accuracy).abs())
            .sum();
        FairnessReport {
            overall_accuracy,
            per_group,
            unfairness,
        }
    }

    /// Accuracy of a specific group, if present in the report.
    pub fn group_accuracy(&self, group: Group) -> Option<f64> {
        self.per_group
            .iter()
            .find(|g| g.group == group)
            .map(|g| g.accuracy)
    }
}

/// The paper's unfairness score (Section 3.1):
/// `U(f'_N, D) = Σ_g |A(f'_N, D_g) − A(f'_N, D)|`.
///
/// A score of 0 means every group is treated exactly like the average; the
/// larger the score, the more the model's accuracy varies across groups.
///
/// # Example
///
/// ```
/// use evaluator::unfairness_score;
///
/// // light skin 81.27%, dark skin 58.02%, overall 81.05% — MobileNetV2's
/// // published numbers give an unfairness score of about 0.2325.
/// let u = unfairness_score(0.8105, &[0.8127, 0.5802]);
/// assert!((u - 0.2325).abs() < 1e-9);
/// ```
pub fn unfairness_score(overall_accuracy: f64, group_accuracies: &[f64]) -> f64 {
    group_accuracies
        .iter()
        .map(|a| (a - overall_accuracy).abs())
        .sum()
}

/// Computes a [`FairnessReport`] from per-sample predictions.
///
/// `correct` holds whether each sample was predicted correctly; `groups`
/// holds each sample's group. `group_count` fixes the number of groups so
/// that groups with no samples still appear (with zero accuracy and count).
pub fn report_from_predictions(
    correct: &[bool],
    groups: &[Group],
    group_count: usize,
) -> FairnessReport {
    let total = correct.len().max(1);
    let overall = correct.iter().filter(|&&c| c).count() as f64 / total as f64;
    // single pass over the samples instead of one scan per group
    let mut counts = vec![0usize; group_count];
    let mut hits = vec![0usize; group_count];
    for (i, &Group(g)) in groups.iter().enumerate() {
        if g < group_count {
            counts[g] += 1;
            if correct[i] {
                hits[g] += 1;
            }
        }
    }
    let mut per_group = Vec::with_capacity(group_count);
    // groups with no samples are excluded from the unfairness sum, matching
    // the paper's definition over the groups present in D; present groups
    // are summed in group-index order
    let mut unfairness = 0.0f64;
    for (g, (&count, &hit)) in counts.iter().zip(hits.iter()).enumerate() {
        let acc = if count == 0 {
            0.0
        } else {
            hit as f64 / count as f64
        };
        if count > 0 {
            unfairness += (acc - overall).abs();
        }
        per_group.push(GroupAccuracy {
            group: Group(g),
            accuracy: acc,
            count,
        });
    }
    FairnessReport {
        overall_accuracy: overall,
        per_group,
        unfairness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfectly_even_groups_have_zero_unfairness() {
        assert_eq!(unfairness_score(0.8, &[0.8, 0.8]), 0.0);
    }

    #[test]
    fn mobilenet_v2_published_numbers_reproduce_their_score() {
        let u = unfairness_score(0.8105, &[0.8127, 0.5802]);
        assert!((u - 0.2325).abs() < 1e-9);
    }

    #[test]
    // 0.7854 is MnasNet's published light-skin accuracy, not an attempt at π/4
    #[allow(clippy::approx_constant)]
    fn mnasnet_published_numbers_reproduce_their_score() {
        // MnasNet 0.5: overall 78.12%, light 78.54%, dark 33.33% → 0.4521
        let u = unfairness_score(0.7812, &[0.7854, 0.3333]);
        assert!((u - 0.4521).abs() < 1e-3);
    }

    #[test]
    fn report_from_predictions_counts_each_group() {
        let correct = [true, true, false, true, false, false];
        let groups = [Group(0), Group(0), Group(0), Group(0), Group(1), Group(1)];
        let report = report_from_predictions(&correct, &groups, 2);
        assert!((report.overall_accuracy - 0.5).abs() < 1e-9);
        assert!((report.group_accuracy(Group(0)).unwrap() - 0.75).abs() < 1e-9);
        assert_eq!(report.group_accuracy(Group(1)).unwrap(), 0.0);
        assert_eq!(report.per_group[0].count, 4);
        assert_eq!(report.per_group[1].count, 2);
        // U = |0.75-0.5| + |0.0-0.5| = 0.75
        assert!((report.unfairness - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_groups_do_not_contribute_to_unfairness() {
        let correct = [true, false];
        let groups = [Group(0), Group(0)];
        let report = report_from_predictions(&correct, &groups, 3);
        assert_eq!(report.per_group.len(), 3);
        assert!((report.unfairness - 0.0).abs() < 1e-9);
    }

    #[test]
    fn fairness_report_new_computes_score() {
        let report = FairnessReport::new(
            0.8,
            vec![
                GroupAccuracy {
                    group: Group(0),
                    accuracy: 0.9,
                    count: 90,
                },
                GroupAccuracy {
                    group: Group(1),
                    accuracy: 0.5,
                    count: 10,
                },
            ],
        );
        assert!((report.unfairness - 0.4).abs() < 1e-9);
        assert_eq!(report.group_accuracy(Group(2)), None);
    }

    proptest! {
        #[test]
        fn prop_unfairness_is_nonnegative_and_bounded(
            overall in 0.0f64..1.0,
            groups in proptest::collection::vec(0.0f64..1.0, 1..5),
        ) {
            let u = unfairness_score(overall, &groups);
            prop_assert!(u >= 0.0);
            prop_assert!(u <= groups.len() as f64);
        }

        #[test]
        fn prop_equal_groups_have_zero_score(acc in 0.0f64..1.0, n in 1usize..5) {
            let groups = vec![acc; n];
            prop_assert!(unfairness_score(acc, &groups) < 1e-12);
        }
    }
}
