//! The search-cost model behind the paper's Table 2.
//!
//! Table 2 compares MONAS and FaHaNa on search-space size, the fraction of
//! valid architectures examined, and wall-clock search time on the authors'
//! GPU cluster (e.g. 104H45M for MONAS vs 57H10M for FaHaNa under a tight
//! timing constraint). We cannot rent their cluster, so search *time* is
//! modelled: training a child costs time proportional to the number of
//! trainable parameters (the freezing method trains fewer), and a child
//! that fails the hardware check costs only the cheap latency-table lookup.
//! The *valid ratio* is measured, not modelled — it comes out of the actual
//! search run.

use serde::{Deserialize, Serialize};

/// Constants of the search-cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchCostConfig {
    /// GPU-seconds needed to train one million parameters for one episode's
    /// child network (folds in epochs, dataset size and the cluster's
    /// throughput). Calibrated so a MONAS run of 500 episodes lands near the
    /// paper's ~105 hours under the tight constraint.
    pub seconds_per_million_params: f64,
    /// Fixed GPU-seconds per episode (controller step, data loading,
    /// evaluation of the trained child).
    pub fixed_seconds_per_episode: f64,
    /// GPU-seconds spent on an episode whose child fails the hardware
    /// specification (latency-table lookup only, no training).
    pub invalid_episode_seconds: f64,
}

impl Default for SearchCostConfig {
    fn default() -> Self {
        SearchCostConfig {
            seconds_per_million_params: 900.0,
            fixed_seconds_per_episode: 120.0,
            invalid_episode_seconds: 15.0,
        }
    }
}

/// Accumulates the modelled cost of a search run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchCostModel {
    config: SearchCostConfig,
    total_seconds: f64,
    valid_episodes: usize,
    invalid_episodes: usize,
}

impl SearchCostModel {
    /// Creates an empty cost accumulator.
    pub fn new(config: SearchCostConfig) -> Self {
        SearchCostModel {
            config,
            total_seconds: 0.0,
            valid_episodes: 0,
            invalid_episodes: 0,
        }
    }

    /// Records an episode whose child met the hardware spec and was trained
    /// with `trained_params` trainable parameters.
    pub fn record_valid(&mut self, trained_params: u64) {
        self.valid_episodes += 1;
        self.total_seconds += self.config.fixed_seconds_per_episode
            + trained_params as f64 / 1.0e6 * self.config.seconds_per_million_params;
    }

    /// Records an episode whose child violated the hardware spec (reward −1,
    /// no training).
    pub fn record_invalid(&mut self) {
        self.invalid_episodes += 1;
        self.total_seconds += self.config.invalid_episode_seconds;
    }

    /// Total modelled search time in GPU-seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_seconds
    }

    /// Total modelled search time in hours.
    pub fn total_hours(&self) -> f64 {
        self.total_seconds / 3600.0
    }

    /// Number of episodes recorded.
    pub fn episodes(&self) -> usize {
        self.valid_episodes + self.invalid_episodes
    }

    /// Fraction of recorded episodes whose child met the specification
    /// (the "Valid" column of Table 2).
    pub fn valid_ratio(&self) -> f64 {
        if self.episodes() == 0 {
            return 0.0;
        }
        self.valid_episodes as f64 / self.episodes() as f64
    }

    /// Formats the total time like the paper ("104H45M").
    pub fn format_hours_minutes(&self) -> String {
        let total_minutes = (self.total_seconds / 60.0).round() as u64;
        format!("{}H{:02}M", total_minutes / 60, total_minutes % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_reports_zero() {
        let model = SearchCostModel::new(SearchCostConfig::default());
        assert_eq!(model.total_seconds(), 0.0);
        assert_eq!(model.valid_ratio(), 0.0);
        assert_eq!(model.episodes(), 0);
    }

    #[test]
    fn valid_episodes_cost_more_than_invalid_ones() {
        let mut model = SearchCostModel::new(SearchCostConfig::default());
        model.record_invalid();
        let invalid_cost = model.total_seconds();
        model.record_valid(2_000_000);
        let valid_cost = model.total_seconds() - invalid_cost;
        assert!(valid_cost > 10.0 * invalid_cost);
        assert_eq!(model.episodes(), 2);
        assert!((model.valid_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn training_fewer_parameters_is_cheaper() {
        let mut full = SearchCostModel::new(SearchCostConfig::default());
        let mut frozen = SearchCostModel::new(SearchCostConfig::default());
        for _ in 0..100 {
            full.record_valid(2_200_000);
            frozen.record_valid(600_000);
        }
        assert!(frozen.total_seconds() < full.total_seconds());
        // the speedup is roughly the ratio of trained parameters plus the
        // fixed overhead — comfortably above the paper's 1.83x-2.67x range
        let speedup = full.total_seconds() / frozen.total_seconds();
        assert!(speedup > 1.5, "speedup {speedup}");
    }

    #[test]
    fn default_calibration_lands_near_paper_scale() {
        // MONAS, tight TC: 27.5% of 500 episodes valid, full MobileNetV2-scale
        // children (≈2.2M params) -> the paper reports 104H45M.
        let mut monas = SearchCostModel::new(SearchCostConfig::default());
        for i in 0..500 {
            if i % 1000 < 275 {
                monas.record_valid(2_200_000);
            } else {
                monas.record_invalid();
            }
        }
        let hours = monas.total_hours();
        assert!(
            (40.0..=200.0).contains(&hours),
            "modelled MONAS search time {hours:.1}h should be within 2x of the paper's ~105h"
        );
    }

    #[test]
    fn hours_minutes_formatting() {
        let mut model = SearchCostModel::new(SearchCostConfig {
            seconds_per_million_params: 0.0,
            fixed_seconds_per_episode: 3600.0,
            invalid_episode_seconds: 0.0,
        });
        model.record_valid(0);
        model.record_valid(0);
        assert_eq!(model.format_hours_minutes(), "2H00M");
    }
}
