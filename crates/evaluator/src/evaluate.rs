//! The [`Evaluate`] trait shared by the surrogate and trained back-ends.

use archspace::Architecture;
use serde::{Deserialize, Serialize};

use crate::fairness::FairnessReport;
use crate::Result;

/// The outcome of evaluating one candidate architecture: everything the
/// reward function of Eq. 1 needs on the software side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessEvaluation {
    /// Name of the evaluated architecture.
    pub architecture: String,
    /// The accuracy/fairness report on the evaluation split.
    pub report: FairnessReport,
    /// Number of trainable parameters the evaluation had to fit (differs
    /// from the architecture's total when a frozen header was reused).
    pub trained_params: u64,
}

impl FairnessEvaluation {
    /// Overall accuracy `A(f'_N, D)`.
    pub fn accuracy(&self) -> f64 {
        self.report.overall_accuracy
    }

    /// Unfairness score `U(f'_N, D)`.
    pub fn unfairness(&self) -> f64 {
        self.report.unfairness
    }
}

/// One evaluation job inside a batch: an architecture plus how many of its
/// leading blocks reuse frozen pretrained parameters.
#[derive(Debug, Clone)]
pub struct EvalRequest {
    /// The candidate architecture.
    pub arch: Architecture,
    /// Number of leading blocks with frozen (reused) parameters.
    pub frozen_blocks: usize,
}

impl EvalRequest {
    /// Builds a request.
    pub fn new(arch: Architecture, frozen_blocks: usize) -> Self {
        EvalRequest {
            arch,
            frozen_blocks,
        }
    }
}

/// A batch evaluation stage: maps a slice of [`EvalRequest`]s to one result
/// per request, in order.
///
/// The search loop consumes this trait rather than [`Evaluate`] directly, so
/// an implementation is free to fan the batch out across worker threads (as
/// `fahana-runtime`'s pooled evaluator does) as long as result order matches
/// request order. Every [`Evaluate`] implementor is an [`EvaluateBatch`]
/// through the blanket impl, which evaluates sequentially.
pub trait EvaluateBatch {
    /// Evaluates every request, returning results in request order.
    fn evaluate_batch(&mut self, requests: &[EvalRequest]) -> Vec<Result<FairnessEvaluation>>;
}

impl<E: Evaluate + ?Sized> EvaluateBatch for E {
    fn evaluate_batch(&mut self, requests: &[EvalRequest]) -> Vec<Result<FairnessEvaluation>> {
        requests
            .iter()
            .map(|r| self.evaluate_with_frozen(&r.arch, r.frozen_blocks))
            .collect()
    }
}

/// An evaluation back-end: maps an architecture to accuracy and fairness on
/// the dermatology task.
///
/// The search loop is generic over this trait, so the surrogate and the
/// trained evaluator are interchangeable.
pub trait Evaluate {
    /// Evaluates a child network whose first `frozen_blocks` blocks reuse
    /// pretrained (frozen) parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the architecture is invalid or training fails.
    fn evaluate_with_frozen(
        &mut self,
        arch: &Architecture,
        frozen_blocks: usize,
    ) -> Result<FairnessEvaluation>;

    /// Evaluates a child network trained end to end (nothing frozen).
    ///
    /// # Errors
    ///
    /// Returns an error if the architecture is invalid or training fails.
    fn evaluate(&mut self, arch: &Architecture) -> Result<FairnessEvaluation> {
        self.evaluate_with_frozen(arch, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::GroupAccuracy;
    use crate::surrogate::SurrogateEvaluator;
    use dermsim::Group;

    #[test]
    fn blanket_batch_impl_matches_sequential_evaluation() {
        let arch_a = archspace::zoo::paper_fahana_small(5, 64);
        let arch_b = archspace::zoo::mobilenet_v2(5, 64);
        let requests = vec![
            EvalRequest::new(arch_a.clone(), 0),
            EvalRequest::new(arch_b.clone(), 3),
        ];
        let mut batched = SurrogateEvaluator::default();
        let results = batched.evaluate_batch(&requests);
        assert_eq!(results.len(), 2);

        let mut sequential = SurrogateEvaluator::default();
        let a = sequential.evaluate_with_frozen(&arch_a, 0).unwrap();
        let b = sequential.evaluate_with_frozen(&arch_b, 3).unwrap();
        assert_eq!(results[0].as_ref().unwrap(), &a);
        assert_eq!(results[1].as_ref().unwrap(), &b);
    }

    #[test]
    fn evaluators_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SurrogateEvaluator>();
        assert_send_sync::<crate::trained::TrainedEvaluator>();
        assert_send_sync::<EvalRequest>();
        assert_send_sync::<FairnessEvaluation>();
    }

    #[test]
    fn accessors_expose_report_fields() {
        let eval = FairnessEvaluation {
            architecture: "test".into(),
            report: FairnessReport::new(
                0.8,
                vec![
                    GroupAccuracy {
                        group: Group(0),
                        accuracy: 0.85,
                        count: 10,
                    },
                    GroupAccuracy {
                        group: Group(1),
                        accuracy: 0.60,
                        count: 5,
                    },
                ],
            ),
            trained_params: 1000,
        };
        assert!((eval.accuracy() - 0.8).abs() < 1e-12);
        assert!((eval.unfairness() - 0.25).abs() < 1e-12);
    }
}
