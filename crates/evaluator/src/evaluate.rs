//! The [`Evaluate`] trait shared by the surrogate and trained back-ends.

use archspace::Architecture;
use serde::{Deserialize, Serialize};

use crate::fairness::FairnessReport;
use crate::Result;

/// The outcome of evaluating one candidate architecture: everything the
/// reward function of Eq. 1 needs on the software side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessEvaluation {
    /// Name of the evaluated architecture.
    pub architecture: String,
    /// The accuracy/fairness report on the evaluation split.
    pub report: FairnessReport,
    /// Number of trainable parameters the evaluation had to fit (differs
    /// from the architecture's total when a frozen header was reused).
    pub trained_params: u64,
}

impl FairnessEvaluation {
    /// Overall accuracy `A(f'_N, D)`.
    pub fn accuracy(&self) -> f64 {
        self.report.overall_accuracy
    }

    /// Unfairness score `U(f'_N, D)`.
    pub fn unfairness(&self) -> f64 {
        self.report.unfairness
    }
}

/// An evaluation back-end: maps an architecture to accuracy and fairness on
/// the dermatology task.
///
/// The search loop is generic over this trait, so the surrogate and the
/// trained evaluator are interchangeable.
pub trait Evaluate {
    /// Evaluates a child network whose first `frozen_blocks` blocks reuse
    /// pretrained (frozen) parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the architecture is invalid or training fails.
    fn evaluate_with_frozen(
        &mut self,
        arch: &Architecture,
        frozen_blocks: usize,
    ) -> Result<FairnessEvaluation>;

    /// Evaluates a child network trained end to end (nothing frozen).
    ///
    /// # Errors
    ///
    /// Returns an error if the architecture is invalid or training fails.
    fn evaluate(&mut self, arch: &Architecture) -> Result<FairnessEvaluation> {
        self.evaluate_with_frozen(arch, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::GroupAccuracy;
    use dermsim::Group;

    #[test]
    fn accessors_expose_report_fields() {
        let eval = FairnessEvaluation {
            architecture: "test".into(),
            report: FairnessReport::new(
                0.8,
                vec![
                    GroupAccuracy {
                        group: Group(0),
                        accuracy: 0.85,
                        count: 10,
                    },
                    GroupAccuracy {
                        group: Group(1),
                        accuracy: 0.60,
                        count: 5,
                    },
                ],
            ),
            trained_params: 1000,
        };
        assert!((eval.accuracy() - 0.8).abs() < 1e-12);
        assert!((eval.unfairness() - 0.25).abs() < 1e-12);
    }
}
