//! The calibrated analytic training-outcome model ("surrogate evaluator").
//!
//! Training every child network from scratch — the paper uses a 48-GPU
//! cluster and 500 epochs per child — is not reproducible on a laptop, and
//! the NAS loop only consumes two scalars per child: accuracy and
//! unfairness. The surrogate predicts those scalars from the factors the
//! paper itself identifies as decisive:
//!
//! * **capacity** — larger models are more accurate and fairer, with
//!   saturation (Figure 1);
//! * **tail composition** — RB/CB blocks in the tail improve fairness and
//!   (for small models) accuracy, because "the end layers are sensitive to
//!   fairness" (Observation 3 / Section 4.5);
//! * **block heterogeneity** — mixing block types beats a homogeneous
//!   design (Section 4.5);
//! * **group imbalance** — more minority data lowers the unfairness score
//!   and slightly raises accuracy (Figure 1(b), Table 4);
//! * seeded per-architecture noise, standing in for training stochasticity.
//!
//! The constants are calibrated so that the eleven reference networks land
//! near their published Table 1/3 numbers; `EXPERIMENTS.md` records the
//! residuals.

use archspace::{Architecture, BlockKind};
use dermsim::{Dataset, Group};
use serde::{Deserialize, Serialize};

use crate::evaluate::{Evaluate, FairnessEvaluation};
use crate::fairness::{FairnessReport, GroupAccuracy};
use crate::Result;

/// Configuration of the surrogate evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurrogateConfig {
    /// Fraction of evaluation samples belonging to the minority group.
    pub minority_fraction: f64,
    /// Majority-to-minority imbalance ratio of the *training* data.
    pub imbalance_ratio: f64,
    /// The imbalance ratio the constants were calibrated at (the paper's
    /// unbalanced dermatology dataset).
    pub reference_imbalance: f64,
    /// Standard deviation of the per-architecture noise.
    pub noise_scale: f64,
    /// Seed mixed into the per-architecture noise.
    pub seed: u64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            minority_fraction: 0.15,
            imbalance_ratio: 5.67,
            reference_imbalance: 5.67,
            noise_scale: 0.004,
            seed: 2022,
        }
    }
}

/// The analytic accuracy/fairness model.
///
/// # Example
///
/// ```
/// use archspace::zoo;
/// use evaluator::{Evaluate, SurrogateEvaluator};
///
/// let mut surrogate = SurrogateEvaluator::default();
/// let small = surrogate.evaluate(&zoo::paper_fahana_small(5, 64))?;
/// let mnasnet = surrogate.evaluate(&zoo::reference_architecture(
///     zoo::ReferenceModel::MnasNet05, 5, 64))?;
/// // the paper's headline: the small heterogeneous network is fairer
/// assert!(small.unfairness() < mnasnet.unfairness());
/// # Ok::<(), evaluator::EvalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SurrogateEvaluator {
    config: SurrogateConfig,
}

impl SurrogateEvaluator {
    /// Creates a surrogate with an explicit configuration.
    pub fn new(config: SurrogateConfig) -> Self {
        SurrogateEvaluator { config }
    }

    /// Derives the imbalance/minority settings from a dataset.
    pub fn for_dataset(dataset: &Dataset, seed: u64) -> Self {
        let stats = dataset.stats();
        let ratio = if stats.imbalance_ratio.is_finite() {
            stats.imbalance_ratio as f64
        } else {
            SurrogateConfig::default().imbalance_ratio
        };
        SurrogateEvaluator::new(SurrogateConfig {
            minority_fraction: stats.minority_fraction() as f64,
            imbalance_ratio: ratio,
            seed,
            ..SurrogateConfig::default()
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SurrogateConfig {
        &self.config
    }

    /// Replaces the imbalance ratio (used when evaluating on a balanced
    /// dataset, Table 4).
    pub fn with_imbalance_ratio(mut self, ratio: f64) -> Self {
        self.config.imbalance_ratio = ratio;
        self
    }

    /// Fraction of the tail (last 40% of active blocks, at least one) that
    /// uses the expressive RB/CB block types.
    pub fn tail_conv_fraction(arch: &Architecture) -> f64 {
        let active = arch.blocks().iter().filter(|b| !b.skipped).count();
        if active == 0 {
            return 0.0;
        }
        let tail_len = ((active as f64 * 0.4).ceil() as usize).max(1);
        let conv_like = arch
            .blocks()
            .iter()
            .filter(|b| !b.skipped)
            .skip(active - tail_len)
            .filter(|b| matches!(b.kind, BlockKind::Rb | BlockKind::Cb))
            .count();
        conv_like as f64 / tail_len as f64
    }

    /// Block-type heterogeneity: distinct kinds used / 4.
    pub fn heterogeneity(arch: &Architecture) -> f64 {
        let mut seen = [false; BlockKind::ALL.len()];
        for block in arch.blocks().iter().filter(|b| !b.skipped) {
            if let Some(i) = BlockKind::ALL.iter().position(|k| *k == block.kind) {
                seen[i] = true;
            }
        }
        let distinct = seen.iter().filter(|&&s| s).count();
        distinct as f64 / BlockKind::ALL.len() as f64
    }

    fn imbalance_norm(&self) -> f64 {
        let ref_ratio = self.config.reference_imbalance.max(1.01);
        ((self.config.imbalance_ratio - 1.0) / (ref_ratio - 1.0)).clamp(0.05, 1.3)
    }

    fn noise(&self, arch: &Architecture) -> f64 {
        // deterministic per-architecture jitter derived from a hash of the
        // name, the parameter count and the seed
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.config.seed;
        for byte in arch.name().bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= arch.param_count();
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (unit - 0.5) * 2.0 * self.config.noise_scale
    }

    /// Predicted overall accuracy for an architecture.
    pub fn predict_accuracy(&self, arch: &Architecture) -> f64 {
        let p_m = arch.param_millions();
        let tail = Self::tail_conv_fraction(arch);
        let het = Self::heterogeneity(arch);
        let depth = arch.depth() as f64;
        let imb = self.imbalance_norm();

        let capacity = 0.845 - 0.085 * (-p_m / 1.5).exp();
        let structure = 0.035 * tail + 0.010 * het;
        let depth_penalty = if depth < 3.0 {
            0.05 * (3.0 - depth)
        } else {
            0.0
        };
        // balancing the dataset buys a small accuracy improvement (Table 4)
        let balance_bonus = 0.010 * (1.0 - imb).max(0.0);
        let raw = capacity + structure - depth_penalty + balance_bonus + self.noise(arch);
        raw.clamp(0.05, 0.845)
    }

    /// Predicted unfairness score for an architecture.
    pub fn predict_unfairness(&self, arch: &Architecture) -> f64 {
        let p_m = arch.param_millions();
        let tail = Self::tail_conv_fraction(arch);
        let het = Self::heterogeneity(arch);
        let imb = self.imbalance_norm();

        let floor = (0.185 - 0.025 * tail - 0.020 * het) * (0.7 + 0.3 * imb);
        let capacity_gap = 0.9 * (-p_m / 0.7).exp() * (1.0 - 0.95 * tail) * imb;
        (floor + capacity_gap + self.noise(arch)).clamp(0.02, 0.6)
    }

    fn build_report(&self, arch: &Architecture) -> FairnessReport {
        let accuracy = self.predict_accuracy(arch);
        let unfairness = self.predict_unfairness(arch);
        // With two groups the unfairness score equals the accuracy gap, and
        // the overall accuracy is the group-weighted mean:
        //   A_light = A + f_dark · U,   A_dark = A − f_light · U
        let f_dark = self.config.minority_fraction.clamp(0.0, 0.5);
        let f_light = 1.0 - f_dark;
        let light = (accuracy + f_dark * unfairness).min(1.0);
        let dark = (accuracy - f_light * unfairness).max(0.0);
        FairnessReport::new(
            accuracy,
            vec![
                GroupAccuracy {
                    group: Group::LIGHT_SKIN,
                    accuracy: light,
                    count: 0,
                },
                GroupAccuracy {
                    group: Group::DARK_SKIN,
                    accuracy: dark,
                    count: 0,
                },
            ],
        )
    }
}

impl Default for SurrogateEvaluator {
    fn default() -> Self {
        SurrogateEvaluator::new(SurrogateConfig::default())
    }
}

impl Evaluate for SurrogateEvaluator {
    fn evaluate_with_frozen(
        &mut self,
        arch: &Architecture,
        frozen_blocks: usize,
    ) -> Result<FairnessEvaluation> {
        arch.validate()?;
        let report = self.build_report(arch);
        let frozen_params: u64 = arch
            .blocks()
            .iter()
            .take(frozen_blocks)
            .map(|b| b.param_count())
            .sum();
        Ok(FairnessEvaluation {
            architecture: arch.name().to_string(),
            report,
            trained_params: arch.param_count().saturating_sub(frozen_params),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archspace::zoo::{self, ReferenceModel};
    use archspace::{BlockConfig, BlockKind};

    fn surrogate() -> SurrogateEvaluator {
        SurrogateEvaluator::default()
    }

    fn eval(model: ReferenceModel) -> FairnessEvaluation {
        let arch = zoo::reference_architecture(model, 5, 64);
        surrogate().evaluate(&arch).unwrap()
    }

    #[test]
    fn reference_accuracies_are_near_paper_values() {
        // loose calibration check: within 5 accuracy points of the paper
        let cases = [
            (ReferenceModel::MobileNetV2, 0.8105),
            (ReferenceModel::MnasNet05, 0.7812),
            (ReferenceModel::ResNet18, 0.8308),
            (ReferenceModel::ResNet50, 0.8381),
            (ReferenceModel::ProxylessNasGpu, 0.8321),
        ];
        for (model, paper) in cases {
            let ours = eval(model).accuracy();
            assert!(
                (ours - paper).abs() < 0.05,
                "{model}: predicted {ours:.3} vs paper {paper:.3}"
            );
        }
    }

    #[test]
    fn reference_unfairness_is_near_paper_values() {
        let cases = [
            (ReferenceModel::MobileNetV2, 0.2325),
            (ReferenceModel::MnasNet05, 0.4521),
            (ReferenceModel::ResNet18, 0.2155),
            (ReferenceModel::ResNet50, 0.1855),
        ];
        for (model, paper) in cases {
            let ours = eval(model).unfairness();
            assert!(
                (ours - paper).abs() < 0.12,
                "{model}: predicted {ours:.3} vs paper {paper:.3}"
            );
        }
    }

    #[test]
    fn larger_models_within_a_family_are_fairer() {
        // the paper's Figure 1(a) observation
        assert!(
            eval(ReferenceModel::MnasNet05).unfairness()
                > eval(ReferenceModel::MnasNet10).unfairness()
        );
        assert!(
            eval(ReferenceModel::MobileNetV3Small).unfairness()
                > eval(ReferenceModel::MobileNetV3Large).unfairness()
        );
        assert!(
            eval(ReferenceModel::ResNet18).unfairness()
                >= eval(ReferenceModel::ResNet50).unfairness()
        );
    }

    #[test]
    fn fahana_nets_beat_size_peers_on_fairness() {
        let mut s = surrogate();
        let small = s.evaluate(&zoo::paper_fahana_small(5, 64)).unwrap();
        let fair = s.evaluate(&zoo::paper_fahana_fair(5, 64)).unwrap();
        // FaHaNa-Small is fairer than every sub-4M competitor
        for model in [
            ReferenceModel::MobileNetV2,
            ReferenceModel::MnasNet05,
            ReferenceModel::MnasNet10,
            ReferenceModel::MobileNetV3Small,
            ReferenceModel::ProxylessNasMobile,
        ] {
            assert!(
                small.unfairness() < eval(model).unfairness(),
                "FaHaNa-Small ({:.3}) should be fairer than {model}",
                small.unfairness()
            );
        }
        // FaHaNa-Fair is the fairest overall
        assert!(fair.unfairness() < eval(ReferenceModel::ResNet50).unfairness());
        // and neither sacrifices accuracy relative to MobileNetV2
        assert!(small.accuracy() >= eval(ReferenceModel::MobileNetV2).accuracy() - 0.01);
    }

    #[test]
    fn group_accuracies_are_consistent_with_unfairness() {
        let mut s = surrogate();
        let eval = s.evaluate(&zoo::mobilenet_v2(5, 64)).unwrap();
        let light = eval.report.group_accuracy(Group::LIGHT_SKIN).unwrap();
        let dark = eval.report.group_accuracy(Group::DARK_SKIN).unwrap();
        assert!(light > dark, "majority accuracy should exceed minority");
        assert!((eval.unfairness() - (light - dark)).abs() < 1e-9);
        assert!(light <= 1.0 && dark >= 0.0);
    }

    #[test]
    fn balancing_the_dataset_reduces_unfairness_and_helps_accuracy() {
        let arch = zoo::mobilenet_v2(5, 64);
        let mut unbalanced = surrogate();
        let mut balanced = surrogate().with_imbalance_ratio(1.15);
        let before = unbalanced.evaluate(&arch).unwrap();
        let after = balanced.evaluate(&arch).unwrap();
        assert!(after.unfairness() < before.unfairness());
        assert!(after.accuracy() >= before.accuracy());
    }

    #[test]
    fn unfairness_decreases_monotonically_with_minority_data_amount() {
        // Figure 1(b): 1×..5× minority data
        let arch = zoo::reference_architecture(ReferenceModel::MnasNet05, 5, 64);
        let mut last = f64::MAX;
        for multiplier in 1..=5 {
            let ratio = 5.67 / multiplier as f64;
            let mut s = surrogate().with_imbalance_ratio(ratio.max(1.0));
            let u = s.evaluate(&arch).unwrap().unfairness();
            assert!(
                u <= last + 1e-9,
                "unfairness should not increase with more minority data"
            );
            last = u;
        }
    }

    #[test]
    fn tail_fraction_and_heterogeneity_are_computed_correctly() {
        let arch = zoo::paper_fahana_fair(5, 64);
        // last 40% of 8 blocks = 4 blocks: CB, CB -> wait, tail is [CB, RB, RB] plus one
        let tail = SurrogateEvaluator::tail_conv_fraction(&arch);
        assert!(tail > 0.9, "FaHaNa-Fair tail is all CB/RB, got {tail}");
        let het = SurrogateEvaluator::heterogeneity(&arch);
        assert!((het - 0.75).abs() < 1e-9, "MB+CB+RB = 3 of 4 kinds");

        let mbv2 = zoo::mobilenet_v2(5, 64);
        assert_eq!(SurrogateEvaluator::tail_conv_fraction(&mbv2), 0.0);
    }

    #[test]
    fn frozen_blocks_reduce_trained_params_but_not_fairness() {
        let arch = zoo::mobilenet_v2(5, 64);
        let mut s = surrogate();
        let full = s.evaluate_with_frozen(&arch, 0).unwrap();
        let frozen = s.evaluate_with_frozen(&arch, 10).unwrap();
        assert!(frozen.trained_params < full.trained_params);
        assert!((frozen.unfairness() - full.unfairness()).abs() < 1e-9);
        assert!((frozen.accuracy() - full.accuracy()).abs() < 1e-9);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let arch = zoo::paper_fahana_small(5, 64);
        let mut a = surrogate();
        let mut b = surrogate();
        assert_eq!(
            a.evaluate(&arch).unwrap().report,
            b.evaluate(&arch).unwrap().report
        );
    }

    #[test]
    fn very_shallow_networks_are_penalised() {
        let mut s = surrogate();
        let shallow = Architecture::builder(5)
            .name("shallow")
            .stem(16, 3)
            .input_size(64)
            .block(BlockConfig::new(BlockKind::Cb, 16, 32, 64, 3))
            .build()
            .unwrap();
        let deeper = Architecture::builder(5)
            .name("deeper")
            .stem(16, 3)
            .input_size(64)
            .block(BlockConfig::new(BlockKind::Cb, 16, 32, 32, 3))
            .block(BlockConfig::new(BlockKind::Rb, 32, 32, 32, 3))
            .block(BlockConfig::new(BlockKind::Rb, 32, 48, 64, 3))
            .block(BlockConfig::new(BlockKind::Rb, 64, 64, 64, 3))
            .build()
            .unwrap();
        assert!(s.evaluate(&shallow).unwrap().accuracy() < s.evaluate(&deeper).unwrap().accuracy());
    }

    #[test]
    fn for_dataset_reads_imbalance_from_stats() {
        let dataset = dermsim::DermatologyGenerator::new(dermsim::DermatologyConfig {
            samples: 400,
            minority_fraction: 0.25,
            image_size: 6,
            ..dermsim::DermatologyConfig::default()
        })
        .generate();
        let s = SurrogateEvaluator::for_dataset(&dataset, 7);
        assert!((s.config().minority_fraction - 0.25).abs() < 0.05);
        assert!(s.config().imbalance_ratio > 2.0);
    }
}
