//! Layer-wise feature-variation analysis between demographic groups.
//!
//! Paper Observation 3 / Figure 3: stream a batch of majority data and a
//! batch of minority data through a pretrained backbone, compare the
//! intermediate feature maps of each layer between the two groups with the
//! L2 norm, and note that the variation is small in the front layers and
//! grows toward the tail. The [`BackboneProducer`](archspace::BackboneProducer)
//! turns this profile into a freezing decision.

use archspace::lowering::{lower, LoweringOptions};
use archspace::Architecture;
use dermsim::{Dataset, Group};
use ftensor::stats::mean_row_l2_distance;
use ftensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{EvalError, Result};

/// The per-block feature variation profile of a backbone on a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVariationProfile {
    /// Variation (mean-feature L2 distance between groups) after each block.
    pub per_block: Vec<f32>,
    /// Name of the analysed backbone.
    pub backbone: String,
}

impl FeatureVariationProfile {
    /// The block index chosen as the freezing split for a scale factor
    /// `gamma` (the paper's three-step rule).
    pub fn split_for_gamma(&self, gamma: f32) -> usize {
        if self.per_block.is_empty() {
            return 0;
        }
        let max = self
            .per_block
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        let threshold = gamma * max;
        self.per_block
            .iter()
            .position(|&v| v >= threshold)
            .unwrap_or(self.per_block.len().saturating_sub(1))
    }
}

/// Runs the feature-variation analysis of a backbone on a dataset.
///
/// A batch of majority and a batch of minority samples (up to `batch` each)
/// are pushed through the lowered backbone; after every block the mean
/// feature vector of each group is compared with the L2 norm, normalised by
/// the feature dimensionality so layers of different widths are comparable.
///
/// # Errors
///
/// Returns an error if either group has no samples or lowering fails.
pub fn feature_variation_by_block(
    backbone: &Architecture,
    dataset: &Dataset,
    batch: usize,
    seed: u64,
) -> Result<FeatureVariationProfile> {
    let majority = dataset.subset_by_group(Group::LIGHT_SKIN);
    let minority = dataset.subset_by_group(Group::DARK_SKIN);
    if majority.is_empty() || minority.is_empty() {
        return Err(EvalError::BadDataset(
            "feature variation needs samples from both groups".into(),
        ));
    }
    let take = |d: &Dataset| -> Option<Tensor> {
        let (tensor, _) = d.to_image_tensor()?;
        let n = tensor.dims()[0].min(batch.max(1));
        let width = tensor.len() / tensor.dims()[0];
        let mut dims = tensor.dims().to_vec();
        dims[0] = n;
        Tensor::from_vec(tensor.as_slice()[..n * width].to_vec(), &dims).ok()
    };
    let light = take(&majority).ok_or_else(|| EvalError::BadDataset("empty majority".into()))?;
    let dark = take(&minority).ok_or_else(|| EvalError::BadDataset("empty minority".into()))?;

    let lowered = lower(
        backbone,
        LoweringOptions {
            seed,
            freeze_first_blocks: 0,
        },
    )?;
    let mut network = lowered.network;
    let light_acts = network.forward_collect(&light, false)?;
    let dark_acts = network.forward_collect(&dark, false)?;

    let mut per_block = Vec::with_capacity(lowered.block_boundaries.len());
    for &layer_idx in &lowered.block_boundaries {
        let a = flatten_batch(&light_acts[layer_idx]);
        let b = flatten_batch(&dark_acts[layer_idx]);
        let width = (a.len() / a.dims()[0].max(1)) as f32;
        let distance = mean_row_l2_distance(&a, &b).unwrap_or(0.0) / width.sqrt().max(1.0);
        per_block.push(distance);
    }
    Ok(FeatureVariationProfile {
        per_block,
        backbone: backbone.name().to_string(),
    })
}

/// The per-block feature-variation profile of the *pretrained* MobileNetV2
/// backbone reported in the paper's Figure 3 (digitised values, one per
/// backbone block).
///
/// The paper measures this on a MobileNetV2 pretrained on the dermatology
/// dataset; we do not have their checkpoint, so the search uses these
/// published values as the default freezing input (with γ = 0.5 the
/// threshold is 0.5 · 0.105 ≈ 0.052, and the first block exceeding it is
/// block 12 — "the front layers, say before layer 12, have small
/// variations"). Re-measuring on a locally trained proxy backbone is
/// available through [`feature_variation_by_block`].
pub fn paper_figure3_profile() -> Vec<f32> {
    vec![
        0.006, 0.007, 0.008, 0.009, 0.010, 0.012, 0.014, 0.016, 0.018, 0.021, 0.024, 0.028, 0.062,
        0.075, 0.090, 0.105, 0.030,
    ]
}

/// Flattens `(n, …)` activations to `(n, features)`.
fn flatten_batch(t: &Tensor) -> Tensor {
    let n = t.dims().first().copied().unwrap_or(1).max(1);
    let features = t.len() / n;
    t.reshape(&[n, features]).unwrap_or_else(|_| t.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use archspace::{BlockConfig, BlockKind};
    use dermsim::{DermatologyConfig, DermatologyGenerator};

    fn dataset() -> Dataset {
        DermatologyGenerator::new(DermatologyConfig {
            samples: 80,
            image_size: 8,
            minority_fraction: 0.3,
            ..DermatologyConfig::default()
        })
        .generate()
    }

    fn backbone() -> Architecture {
        Architecture::builder(5)
            .name("variation-backbone")
            .stem(8, 3)
            .input_size(8)
            .block(BlockConfig::new(BlockKind::Mb, 8, 16, 12, 3))
            .block(BlockConfig::new(BlockKind::Db, 12, 24, 12, 3))
            .block(BlockConfig::new(BlockKind::Db, 12, 24, 16, 3))
            .block(BlockConfig::new(BlockKind::Rb, 16, 16, 16, 3))
            .build()
            .unwrap()
    }

    #[test]
    fn produces_one_variation_per_block() {
        let profile = feature_variation_by_block(&backbone(), &dataset(), 16, 0).unwrap();
        assert_eq!(profile.per_block.len(), 4);
        assert!(profile.per_block.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(
            profile.per_block.iter().any(|&v| v > 0.0),
            "the two skin tones must produce measurably different features"
        );
    }

    #[test]
    fn split_rule_matches_manual_threshold() {
        let profile = FeatureVariationProfile {
            per_block: vec![0.01, 0.02, 0.06, 0.10],
            backbone: "x".into(),
        };
        // gamma 0.5 -> threshold 0.05 -> first exceeding layer is index 2
        assert_eq!(profile.split_for_gamma(0.5), 2);
        // gamma 1.0 -> only the max layer qualifies
        assert_eq!(profile.split_for_gamma(1.0), 3);
        // tiny gamma freezes nothing
        assert_eq!(profile.split_for_gamma(0.01), 0);
    }

    #[test]
    fn figure3_profile_freezes_the_first_twelve_blocks_at_gamma_half() {
        let profile = FeatureVariationProfile {
            per_block: paper_figure3_profile(),
            backbone: "MobileNetV2".into(),
        };
        assert_eq!(profile.per_block.len(), 17);
        assert_eq!(profile.split_for_gamma(0.5), 12);
        // the variation grows toward the tail (ignoring the final layer,
        // which the paper notes is small because most elements approach 0)
        let rising = &profile.per_block[..16];
        assert!(rising.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn empty_profile_splits_at_zero() {
        let profile = FeatureVariationProfile {
            per_block: vec![],
            backbone: "x".into(),
        };
        assert_eq!(profile.split_for_gamma(0.5), 0);
    }

    #[test]
    fn fails_without_minority_samples() {
        let all_light = DermatologyGenerator::new(DermatologyConfig {
            samples: 30,
            image_size: 8,
            minority_fraction: 0.0,
            ..DermatologyConfig::default()
        })
        .generate();
        assert!(feature_variation_by_block(&backbone(), &all_light, 8, 0).is_err());
    }

    #[test]
    fn analysis_is_deterministic() {
        let a = feature_variation_by_block(&backbone(), &dataset(), 16, 3).unwrap();
        let b = feature_variation_by_block(&backbone(), &dataset(), 16, 3).unwrap();
        assert_eq!(a, b);
    }
}
