//! Error type for architecture construction and manipulation.

use std::error::Error;
use std::fmt;

/// Error returned when an architecture or search-space operation fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// Two consecutive blocks disagree about their shared channel count
    /// (`CH3` of block *i* must equal `CH1` of block *i + 1*).
    ChannelMismatch {
        /// Index of the downstream block reporting the mismatch.
        block_index: usize,
        /// `CH3` of the upstream block (or stem width).
        expected: usize,
        /// `CH1` declared by the downstream block.
        actual: usize,
    },
    /// A block parameter was invalid (zero channels, unsupported kernel, …).
    InvalidBlock {
        /// Index of the offending block.
        block_index: usize,
        /// Explanation of the problem.
        reason: String,
    },
    /// The architecture as a whole was malformed (no blocks, zero classes, …).
    InvalidArchitecture(String),
    /// An action index was outside the valid range of its decision.
    InvalidAction {
        /// The decision dimension name.
        decision: &'static str,
        /// The offending index.
        index: usize,
        /// Number of available choices.
        choices: usize,
    },
    /// The decision vector length does not match the number of searchable slots.
    DecisionLengthMismatch {
        /// Expected number of decisions.
        expected: usize,
        /// Provided number of decisions.
        actual: usize,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::ChannelMismatch {
                block_index,
                expected,
                actual,
            } => write!(
                f,
                "block {block_index} expects {expected} input channels but declares {actual}"
            ),
            ArchError::InvalidBlock {
                block_index,
                reason,
            } => write!(f, "block {block_index} is invalid: {reason}"),
            ArchError::InvalidArchitecture(msg) => write!(f, "invalid architecture: {msg}"),
            ArchError::InvalidAction {
                decision,
                index,
                choices,
            } => write!(
                f,
                "action index {index} is out of range for decision {decision} with {choices} choices"
            ),
            ArchError::DecisionLengthMismatch { expected, actual } => write!(
                f,
                "expected {expected} block decisions, got {actual}"
            ),
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ArchError::ChannelMismatch {
            block_index: 3,
            expected: 32,
            actual: 16,
        };
        let text = e.to_string();
        assert!(text.contains('3') && text.contains("32") && text.contains("16"));

        let e = ArchError::InvalidAction {
            decision: "kernel",
            index: 9,
            choices: 3,
        };
        assert!(e.to_string().contains("kernel"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_bounds<T: Send + Sync + Error>() {}
        assert_bounds::<ArchError>();
    }
}
