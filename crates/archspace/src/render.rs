//! Text rendering of architectures (the paper's Figure 7 visualisation).

use crate::arch::Architecture;

/// Renders an architecture as a block diagram in plain text, one layer per
/// line, in the same style as the paper's Figure 7 (`MB 64,384,64,3`).
///
/// # Example
///
/// ```
/// use archspace::{render_architecture, zoo};
///
/// let arch = zoo::paper_fahana_fair(5, 64);
/// let text = render_architecture(&arch);
/// assert!(text.contains("Conv 7x7"));
/// assert!(text.contains("RB 256,256,256,5"));
/// assert!(text.contains("LINEAR"));
/// ```
pub fn render_architecture(arch: &Architecture) -> String {
    let mut lines = Vec::new();
    lines.push(format!("=== {} ===", arch.name()));
    lines.push(format!(
        "Input {}x{}x3",
        arch.input_size(),
        arch.input_size()
    ));
    lines.push(format!(
        "Conv {k}x{k} -> {c}",
        k = arch.stem().kernel,
        c = arch.stem().out_channels
    ));
    for block in arch.blocks() {
        if block.skipped {
            lines.push("(skipped)".to_string());
        } else {
            lines.push(format!(
                "{} {},{},{},{}",
                block.kind.label(),
                block.ch_in,
                block.ch_mid,
                block.ch_out,
                block.kernel
            ));
        }
    }
    lines.push(format!("LINEAR -> {}", arch.classes()));
    lines.push(format!(
        "[{:.2}M params, {:.2} MB, {:.1} MFLOPs]",
        arch.param_millions(),
        arch.storage_mb(),
        arch.flops() as f64 / 1.0e6
    ));
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::block::{BlockConfig, BlockKind};

    #[test]
    fn render_includes_every_block_and_summary() {
        let arch = Architecture::builder(5)
            .name("demo")
            .stem(16, 3)
            .block(BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3))
            .block(BlockConfig::new(BlockKind::Rb, 24, 24, 24, 5))
            .build()
            .unwrap();
        let text = render_architecture(&arch);
        assert!(text.contains("=== demo ==="));
        assert!(text.contains("MB 16,64,24,3"));
        assert!(text.contains("RB 24,24,24,5"));
        assert!(text.contains("LINEAR -> 5"));
        assert!(text.contains("params"));
    }

    #[test]
    fn skipped_blocks_are_marked() {
        let arch = Architecture::builder(2)
            .stem(8, 3)
            .block(BlockConfig::new(BlockKind::Db, 8, 16, 8, 3))
            .block(BlockConfig::new(BlockKind::Db, 8, 8, 8, 3).skipped())
            .build()
            .unwrap();
        assert!(render_architecture(&arch).contains("(skipped)"));
    }
}
