//! The block-based search space and its action encoding.

use ftensor::SeededRng;
use serde::{Deserialize, Serialize};

use crate::block::{BlockConfig, BlockKind};
use crate::error::ArchError;
use crate::Result;

/// Hyperparameter choices offered to the controller for each searchable
/// block (paper Section 3.2 ➁: block type, `K`, `CH2`, `CH3`, and an optional
/// skip to vary depth).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceConfig {
    /// Kernel-size choices.
    pub kernel_choices: Vec<usize>,
    /// Choices for the intermediate width `CH2`.
    pub ch_mid_choices: Vec<usize>,
    /// Choices for the output width `CH3`.
    pub ch_out_choices: Vec<usize>,
    /// Whether blocks may be skipped entirely.
    pub allow_skip: bool,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig {
            kernel_choices: vec![3, 5, 7],
            ch_mid_choices: vec![32, 64, 96, 128, 192, 256, 384],
            ch_out_choices: vec![16, 24, 32, 48, 64, 96, 128, 256],
            allow_skip: true,
        }
    }
}

/// One searchable block's decisions, as indices into the [`SpaceConfig`]
/// choice lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockDecision {
    /// Index into [`BlockKind::ALL`].
    pub kind_idx: usize,
    /// Index into `kernel_choices`.
    pub kernel_idx: usize,
    /// Index into `ch_mid_choices`.
    pub ch_mid_idx: usize,
    /// Index into `ch_out_choices`.
    pub ch_out_idx: usize,
    /// Whether the block is skipped.
    pub skip: bool,
}

/// The names and cardinalities of the per-block decision dimensions, in the
/// order the RNN controller emits them.
pub const DECISIONS_PER_BLOCK: usize = 5;

/// A search space over a fixed number of searchable block slots.
///
/// # Example
///
/// ```
/// use archspace::{SearchSpace, SpaceConfig};
///
/// let space = SearchSpace::new(SpaceConfig::default(), 4);
/// assert_eq!(space.total_decisions(), 20);
/// assert!(space.log10_size() > 6.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    config: SpaceConfig,
    slots: usize,
}

impl SearchSpace {
    /// Creates a space over `slots` searchable blocks.
    pub fn new(config: SpaceConfig, slots: usize) -> Self {
        SearchSpace { config, slots }
    }

    /// The choice configuration.
    pub fn config(&self) -> &SpaceConfig {
        &self.config
    }

    /// Number of searchable block slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Total number of controller decisions for one architecture.
    pub fn total_decisions(&self) -> usize {
        self.slots * DECISIONS_PER_BLOCK
    }

    /// Number of choices of the `i`-th decision within a block
    /// (order: kind, kernel, `CH2`, `CH3`, skip).
    pub fn choices_of(&self, decision_in_block: usize) -> usize {
        match decision_in_block {
            0 => BlockKind::ALL.len(),
            1 => self.config.kernel_choices.len(),
            2 => self.config.ch_mid_choices.len(),
            3 => self.config.ch_out_choices.len(),
            4 if self.config.allow_skip => 2,
            _ => 1,
        }
    }

    /// Number of choices of every decision across the whole architecture, in
    /// controller emission order.
    pub fn decision_cardinalities(&self) -> Vec<usize> {
        (0..self.total_decisions())
            .map(|d| self.choices_of(d % DECISIONS_PER_BLOCK))
            .collect()
    }

    /// Per-block combination count.
    pub fn combinations_per_block(&self) -> f64 {
        (0..DECISIONS_PER_BLOCK)
            .map(|d| self.choices_of(d) as f64)
            .product()
    }

    /// Total search-space size (`combinations_per_block ^ slots`), the
    /// quantity the paper's Table 2 reports as 10^19 (MONAS, full backbone)
    /// versus 10^9 (FaHaNa, frozen header).
    pub fn size(&self) -> f64 {
        self.combinations_per_block().powi(self.slots as i32)
    }

    /// `log10` of the search-space size (easier to compare to the paper).
    pub fn log10_size(&self) -> f64 {
        (self.slots as f64) * self.combinations_per_block().log10()
    }

    /// Validates a decision against the choice cardinalities.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidAction`] naming the offending dimension.
    pub fn validate_decision(&self, decision: &BlockDecision) -> Result<()> {
        if decision.kind_idx >= BlockKind::ALL.len() {
            return Err(ArchError::InvalidAction {
                decision: "kind",
                index: decision.kind_idx,
                choices: BlockKind::ALL.len(),
            });
        }
        if decision.kernel_idx >= self.config.kernel_choices.len() {
            return Err(ArchError::InvalidAction {
                decision: "kernel",
                index: decision.kernel_idx,
                choices: self.config.kernel_choices.len(),
            });
        }
        if decision.ch_mid_idx >= self.config.ch_mid_choices.len() {
            return Err(ArchError::InvalidAction {
                decision: "ch_mid",
                index: decision.ch_mid_idx,
                choices: self.config.ch_mid_choices.len(),
            });
        }
        if decision.ch_out_idx >= self.config.ch_out_choices.len() {
            return Err(ArchError::InvalidAction {
                decision: "ch_out",
                index: decision.ch_out_idx,
                choices: self.config.ch_out_choices.len(),
            });
        }
        if decision.skip && !self.config.allow_skip {
            return Err(ArchError::InvalidAction {
                decision: "skip",
                index: 1,
                choices: 1,
            });
        }
        Ok(())
    }

    /// Converts a flat list of categorical action indices (as emitted by the
    /// controller, `total_decisions()` long) into block decisions.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DecisionLengthMismatch`] or
    /// [`ArchError::InvalidAction`].
    pub fn decisions_from_actions(&self, actions: &[usize]) -> Result<Vec<BlockDecision>> {
        if actions.len() != self.total_decisions() {
            return Err(ArchError::DecisionLengthMismatch {
                expected: self.total_decisions(),
                actual: actions.len(),
            });
        }
        let mut decisions = Vec::with_capacity(self.slots);
        for slot in 0..self.slots {
            let base = slot * DECISIONS_PER_BLOCK;
            let decision = BlockDecision {
                kind_idx: actions[base],
                kernel_idx: actions[base + 1],
                ch_mid_idx: actions[base + 2],
                ch_out_idx: actions[base + 3],
                skip: actions[base + 4] == 1,
            };
            self.validate_decision(&decision)?;
            decisions.push(decision);
        }
        Ok(decisions)
    }

    /// Materialises block configurations from decisions, chaining channels
    /// starting from `input_channels`.
    ///
    /// # Errors
    ///
    /// Returns an error if any decision is invalid.
    pub fn decode(
        &self,
        decisions: &[BlockDecision],
        input_channels: usize,
    ) -> Result<Vec<BlockConfig>> {
        if decisions.len() != self.slots {
            return Err(ArchError::DecisionLengthMismatch {
                expected: self.slots,
                actual: decisions.len(),
            });
        }
        let mut blocks = Vec::with_capacity(decisions.len());
        let mut current = input_channels;
        for decision in decisions {
            self.validate_decision(decision)?;
            if decision.skip {
                blocks
                    .push(BlockConfig::new(BlockKind::Db, current, current, current, 3).skipped());
                continue;
            }
            let block = BlockConfig::new(
                BlockKind::ALL[decision.kind_idx],
                current,
                self.config.ch_mid_choices[decision.ch_mid_idx],
                self.config.ch_out_choices[decision.ch_out_idx],
                self.config.kernel_choices[decision.kernel_idx],
            );
            current = block.output_channels();
            blocks.push(block);
        }
        Ok(blocks)
    }

    /// Samples uniformly random decisions (used by random-search baselines
    /// and tests).
    pub fn random_decisions(&self, rng: &mut SeededRng) -> Vec<BlockDecision> {
        (0..self.slots)
            .map(|_| BlockDecision {
                kind_idx: rng.below(BlockKind::ALL.len()),
                kernel_idx: rng.below(self.config.kernel_choices.len()),
                ch_mid_idx: rng.below(self.config.ch_mid_choices.len()),
                ch_out_idx: rng.below(self.config.ch_out_choices.len()),
                skip: self.config.allow_skip && rng.chance(0.15),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_space_matches_paper_scale() {
        // FaHaNa searches ~5 tail blocks (space ≈ 10^9); MONAS searches the
        // whole ~17-block backbone (space ≈ 10^19, clipped by the paper to
        // the searchable hyperparameters it lists).
        let fahana = SearchSpace::new(SpaceConfig::default(), 5);
        let monas = SearchSpace::new(SpaceConfig::default(), 17);
        assert!(fahana.log10_size() >= 8.0 && fahana.log10_size() <= 16.0);
        assert!(monas.log10_size() > fahana.log10_size() + 8.0);
    }

    #[test]
    fn decision_cardinalities_follow_config() {
        let space = SearchSpace::new(SpaceConfig::default(), 2);
        let cards = space.decision_cardinalities();
        assert_eq!(cards.len(), 10);
        assert_eq!(cards[0], 4); // block kinds
        assert_eq!(cards[1], 3); // kernels
        assert_eq!(cards[2], 7); // ch_mid
        assert_eq!(cards[3], 8); // ch_out
        assert_eq!(cards[4], 2); // skip
        assert_eq!(&cards[5..], &cards[..5]);
    }

    #[test]
    fn disallowing_skip_shrinks_space() {
        let with_skip = SearchSpace::new(SpaceConfig::default(), 4);
        let without = SearchSpace::new(
            SpaceConfig {
                allow_skip: false,
                ..SpaceConfig::default()
            },
            4,
        );
        assert!(without.size() < with_skip.size());
        assert_eq!(without.choices_of(4), 1);
    }

    #[test]
    fn decode_chains_channels() {
        let space = SearchSpace::new(SpaceConfig::default(), 3);
        let decisions = vec![
            BlockDecision {
                kind_idx: 0,
                kernel_idx: 0,
                ch_mid_idx: 1,
                ch_out_idx: 2,
                skip: false,
            };
            3
        ];
        let blocks = space.decode(&decisions, 16).unwrap();
        assert_eq!(blocks[0].ch_in, 16);
        let ch_out = SpaceConfig::default().ch_out_choices[2];
        assert_eq!(blocks[1].ch_in, ch_out);
        assert_eq!(blocks[2].ch_in, ch_out);
    }

    #[test]
    fn decode_skipped_blocks_preserve_width() {
        let space = SearchSpace::new(SpaceConfig::default(), 2);
        let decisions = vec![
            BlockDecision {
                kind_idx: 0,
                kernel_idx: 0,
                ch_mid_idx: 0,
                ch_out_idx: 0,
                skip: true,
            },
            BlockDecision {
                kind_idx: 2,
                kernel_idx: 1,
                ch_mid_idx: 3,
                ch_out_idx: 4,
                skip: false,
            },
        ];
        let blocks = space.decode(&decisions, 32).unwrap();
        assert!(blocks[0].skipped);
        assert_eq!(blocks[1].ch_in, 32);
    }

    #[test]
    fn decisions_from_actions_round_trip() {
        let space = SearchSpace::new(SpaceConfig::default(), 2);
        let actions = vec![1, 2, 3, 4, 0, 3, 0, 6, 7, 1];
        let decisions = space.decisions_from_actions(&actions).unwrap();
        assert_eq!(decisions.len(), 2);
        assert_eq!(decisions[0].kind_idx, 1);
        assert_eq!(decisions[0].kernel_idx, 2);
        assert!(!decisions[0].skip);
        assert!(decisions[1].skip);
        assert!(space.decisions_from_actions(&actions[..5]).is_err());
    }

    #[test]
    fn invalid_actions_are_rejected() {
        let space = SearchSpace::new(SpaceConfig::default(), 1);
        assert!(space.decisions_from_actions(&[9, 0, 0, 0, 0]).is_err());
        assert!(space.decisions_from_actions(&[0, 9, 0, 0, 0]).is_err());
        assert!(space.decisions_from_actions(&[0, 0, 9, 0, 0]).is_err());
        assert!(space.decisions_from_actions(&[0, 0, 0, 9, 0]).is_err());
        let no_skip = SearchSpace::new(
            SpaceConfig {
                allow_skip: false,
                ..SpaceConfig::default()
            },
            1,
        );
        assert!(no_skip.decisions_from_actions(&[0, 0, 0, 0, 1]).is_err());
    }

    #[test]
    fn random_decisions_are_always_valid() {
        let space = SearchSpace::new(SpaceConfig::default(), 6);
        let mut rng = SeededRng::new(5);
        for _ in 0..50 {
            let decisions = space.random_decisions(&mut rng);
            assert_eq!(decisions.len(), 6);
            for d in &decisions {
                space.validate_decision(d).unwrap();
            }
            let blocks = space.decode(&decisions, 16).unwrap();
            assert_eq!(blocks.len(), 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_size_is_monotone_in_slots(slots in 1usize..12) {
            let smaller = SearchSpace::new(SpaceConfig::default(), slots);
            let larger = SearchSpace::new(SpaceConfig::default(), slots + 1);
            prop_assert!(larger.size() > smaller.size());
            prop_assert!((smaller.log10_size() - smaller.size().log10()).abs() < 1e-6);
        }
    }
}
