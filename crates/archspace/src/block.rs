//! Search-space blocks (MB / DB / RB / CB) and their cost accounting.

use serde::{Deserialize, Serialize};

/// The four basic block types of the FaHaNa search space (paper Figure 4 ➁).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// MobileNetV2 inverted bottleneck with stride 2 (downsampling).
    Mb,
    /// MobileNetV2 inverted bottleneck with stride 1.
    Db,
    /// ResNet basic block (two spatial convolutions + skip).
    Rb,
    /// Conventional convolution block.
    Cb,
}

impl BlockKind {
    /// All block kinds, in controller action order.
    pub const ALL: [BlockKind; 4] = [BlockKind::Mb, BlockKind::Db, BlockKind::Rb, BlockKind::Cb];

    /// Short label used in renders and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BlockKind::Mb => "MB",
            BlockKind::Db => "DB",
            BlockKind::Rb => "RB",
            BlockKind::Cb => "CB",
        }
    }

    /// The spatial stride this block applies.
    pub fn stride(&self) -> usize {
        match self {
            BlockKind::Mb => 2,
            _ => 1,
        }
    }
}

impl std::fmt::Display for BlockKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The primitive operation categories a block decomposes into.
///
/// The hardware latency model treats these differently: depthwise
/// convolutions have far lower arithmetic efficiency on ARM CPUs running
/// vanilla PyTorch, which is exactly why MobileNetV2 measures *slower* than
/// ResNet-50 on the Raspberry Pi in the paper's Table 3 despite having far
/// fewer FLOPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Standard k×k convolution.
    Standard,
    /// 1×1 (pointwise) convolution.
    Pointwise,
    /// Depthwise k×k convolution.
    Depthwise,
    /// Fully connected layer.
    Dense,
}

/// One primitive operation with enough geometry to cost it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvOp {
    /// Operation category.
    pub kind: OpKind,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Kernel size (1 for pointwise/dense).
    pub kernel: usize,
    /// Spatial stride (1 for dense).
    pub stride: usize,
    /// Output feature-map height (1 for dense).
    pub out_h: usize,
    /// Output feature-map width (1 for dense).
    pub out_w: usize,
}

impl ConvOp {
    /// Multiply–accumulate count ×2 (the usual FLOP convention).
    pub fn flops(&self) -> u64 {
        let spatial = (self.out_h * self.out_w) as u64;
        match self.kind {
            OpKind::Depthwise => {
                2 * spatial * (self.kernel * self.kernel) as u64 * self.c_out as u64
            }
            OpKind::Dense => 2 * (self.c_in * self.c_out) as u64,
            _ => {
                2 * spatial
                    * (self.kernel * self.kernel) as u64
                    * self.c_in as u64
                    * self.c_out as u64
            }
        }
    }

    /// Weight parameter count (bias included).
    pub fn params(&self) -> u64 {
        match self.kind {
            OpKind::Depthwise => (self.c_out * self.kernel * self.kernel + self.c_out) as u64,
            OpKind::Dense => (self.c_in * self.c_out + self.c_out) as u64,
            _ => (self.c_in * self.c_out * self.kernel * self.kernel + self.c_out) as u64,
        }
    }

    /// Approximate memory traffic in elements: weights + output activations.
    pub fn memory_traffic(&self) -> u64 {
        self.params() + (self.c_out * self.out_h * self.out_w) as u64
    }
}

/// Configuration of one block in an architecture.
///
/// `CH1` is inherited from the previous block's `CH3` (the paper notes only
/// `K`, `CH2` and `CH3` are searchable). A block can also be skipped entirely
/// to shorten the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockConfig {
    /// Block type.
    pub kind: BlockKind,
    /// Input channel count (`CH1`).
    pub ch_in: usize,
    /// Intermediate channel count (`CH2`).
    pub ch_mid: usize,
    /// Output channel count (`CH3`).
    pub ch_out: usize,
    /// Kernel size (`K`).
    pub kernel: usize,
    /// Whether the block is skipped (identity), which requires
    /// `ch_in == ch_out` to be meaningful for cost accounting.
    pub skipped: bool,
    /// Forces a stride of 2 regardless of block kind. The search space never
    /// sets this (block stride is implied by the block type, as in the
    /// paper); it exists so the reference zoo can express the stage
    /// downsampling of ResNet/SqueezeNet-style networks faithfully.
    pub downsample: bool,
}

impl BlockConfig {
    /// Creates an active (non-skipped) block.
    pub fn new(kind: BlockKind, ch_in: usize, ch_mid: usize, ch_out: usize, kernel: usize) -> Self {
        BlockConfig {
            kind,
            ch_in,
            ch_mid,
            ch_out,
            kernel,
            skipped: false,
            downsample: false,
        }
    }

    /// Marks the block as skipped (identity pass-through).
    pub fn skipped(mut self) -> Self {
        self.skipped = true;
        self
    }

    /// Forces the block to downsample (stride 2). Used only by the reference
    /// zoo; searchable blocks get their stride from the block kind.
    pub fn downsampled(mut self) -> Self {
        self.downsample = true;
        self
    }

    /// Validates channel and kernel parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a dimension is zero or the
    /// kernel is even (even kernels break the "same" padding assumption).
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.skipped {
            return Ok(());
        }
        if self.ch_in == 0 || self.ch_mid == 0 || self.ch_out == 0 {
            return Err("channel counts must be non-zero".into());
        }
        if self.kernel == 0 || self.kernel.is_multiple_of(2) {
            return Err(format!("kernel {} must be odd and non-zero", self.kernel));
        }
        Ok(())
    }

    /// Spatial stride (1 for skipped blocks).
    pub fn stride(&self) -> usize {
        if self.skipped {
            1
        } else if self.downsample {
            2
        } else {
            self.kind.stride()
        }
    }

    /// Effective output channels (input channels when skipped).
    pub fn output_channels(&self) -> usize {
        if self.skipped {
            self.ch_in
        } else {
            self.ch_out
        }
    }

    /// Whether the block has a residual (skip) connection in the paper's
    /// block diagrams: RB always, DB when input and output widths agree.
    pub fn has_residual(&self) -> bool {
        if self.skipped {
            return false;
        }
        match self.kind {
            BlockKind::Rb => true,
            BlockKind::Db => self.ch_in == self.ch_out,
            _ => false,
        }
    }

    /// The primitive operations of the block at the given input resolution.
    ///
    /// Skipped blocks contribute no operations.
    pub fn ops(&self, in_h: usize, in_w: usize) -> Vec<ConvOp> {
        if self.skipped {
            return Vec::new();
        }
        let stride = self.stride();
        let out_h = spatial_out(in_h, stride);
        let out_w = spatial_out(in_w, stride);
        match self.kind {
            BlockKind::Mb | BlockKind::Db => vec![
                // expand 1×1
                ConvOp {
                    kind: OpKind::Pointwise,
                    c_in: self.ch_in,
                    c_out: self.ch_mid,
                    kernel: 1,
                    stride: 1,
                    out_h: in_h,
                    out_w: in_w,
                },
                // depthwise k×k (carries the stride)
                ConvOp {
                    kind: OpKind::Depthwise,
                    c_in: self.ch_mid,
                    c_out: self.ch_mid,
                    kernel: self.kernel,
                    stride,
                    out_h,
                    out_w,
                },
                // project 1×1
                ConvOp {
                    kind: OpKind::Pointwise,
                    c_in: self.ch_mid,
                    c_out: self.ch_out,
                    kernel: 1,
                    stride: 1,
                    out_h,
                    out_w,
                },
            ],
            BlockKind::Rb => {
                let mut ops = vec![
                    ConvOp {
                        kind: OpKind::Standard,
                        c_in: self.ch_in,
                        c_out: self.ch_mid,
                        kernel: self.kernel,
                        stride,
                        out_h,
                        out_w,
                    },
                    ConvOp {
                        kind: OpKind::Standard,
                        c_in: self.ch_mid,
                        c_out: self.ch_out,
                        kernel: self.kernel,
                        stride: 1,
                        out_h,
                        out_w,
                    },
                ];
                if self.ch_in != self.ch_out {
                    // 1×1 projection on the shortcut
                    ops.push(ConvOp {
                        kind: OpKind::Pointwise,
                        c_in: self.ch_in,
                        c_out: self.ch_out,
                        kernel: 1,
                        stride,
                        out_h,
                        out_w,
                    });
                }
                ops
            }
            BlockKind::Cb => vec![
                ConvOp {
                    kind: OpKind::Standard,
                    c_in: self.ch_in,
                    c_out: self.ch_mid,
                    kernel: self.kernel,
                    stride,
                    out_h,
                    out_w,
                },
                ConvOp {
                    kind: OpKind::Pointwise,
                    c_in: self.ch_mid,
                    c_out: self.ch_out,
                    kernel: 1,
                    stride: 1,
                    out_h,
                    out_w,
                },
            ],
        }
    }

    /// Weight parameters of the block (including per-channel norm affine
    /// parameters, two per normalised channel).
    pub fn param_count(&self) -> u64 {
        if self.skipped {
            return 0;
        }
        let conv_params: u64 = self.ops(8, 8).iter().map(|op| op.params()).sum();
        // every conv op is followed by a channel norm with 2·C parameters
        let norm_params: u64 = self.ops(8, 8).iter().map(|op| 2 * op.c_out as u64).sum();
        conv_params + norm_params
    }

    /// FLOPs of the block at the given input resolution.
    pub fn flops(&self, in_h: usize, in_w: usize) -> u64 {
        self.ops(in_h, in_w).iter().map(|op| op.flops()).sum()
    }
}

impl std::fmt::Display for BlockConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.skipped {
            write!(f, "skip")
        } else {
            write!(
                f,
                "{} {},{},{},{}",
                self.kind, self.ch_in, self.ch_mid, self.ch_out, self.kernel
            )
        }
    }
}

/// Output spatial extent after a stride, assuming "same" padding.
pub fn spatial_out(input: usize, stride: usize) -> usize {
    input.div_ceil(stride.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block_kinds_have_expected_strides() {
        assert_eq!(BlockKind::Mb.stride(), 2);
        assert_eq!(BlockKind::Db.stride(), 1);
        assert_eq!(BlockKind::Rb.stride(), 1);
        assert_eq!(BlockKind::Cb.stride(), 1);
        assert_eq!(BlockKind::Mb.to_string(), "MB");
    }

    #[test]
    fn mb_block_params_match_hand_computation() {
        // MB 16 -> 96 -> 24, k=3
        let block = BlockConfig::new(BlockKind::Mb, 16, 96, 24, 3);
        // expand 1x1: 16*96 + 96, dw 3x3: 96*9 + 96, project 1x1: 96*24 + 24
        let conv = (16 * 96 + 96) + (96 * 9 + 96) + (96 * 24 + 24);
        let norm = 2 * 96 + 2 * 96 + 2 * 24;
        assert_eq!(block.param_count(), (conv + norm) as u64);
    }

    #[test]
    fn rb_block_adds_projection_only_when_widths_differ() {
        let same = BlockConfig::new(BlockKind::Rb, 32, 32, 32, 3);
        let diff = BlockConfig::new(BlockKind::Rb, 32, 32, 64, 3);
        assert_eq!(same.ops(8, 8).len(), 2);
        assert_eq!(diff.ops(8, 8).len(), 3);
        assert!(diff.param_count() > same.param_count());
    }

    #[test]
    fn skipped_block_is_free() {
        let block = BlockConfig::new(BlockKind::Rb, 32, 32, 32, 3).skipped();
        assert_eq!(block.param_count(), 0);
        assert_eq!(block.flops(16, 16), 0);
        assert!(block.ops(16, 16).is_empty());
        assert_eq!(block.output_channels(), 32);
        assert_eq!(block.stride(), 1);
        assert_eq!(block.to_string(), "skip");
    }

    #[test]
    fn validation_rejects_bad_dimensions() {
        assert!(BlockConfig::new(BlockKind::Cb, 0, 8, 8, 3)
            .validate()
            .is_err());
        assert!(BlockConfig::new(BlockKind::Cb, 8, 8, 8, 4)
            .validate()
            .is_err());
        assert!(BlockConfig::new(BlockKind::Cb, 8, 8, 8, 3)
            .validate()
            .is_ok());
        assert!(BlockConfig::new(BlockKind::Cb, 0, 0, 0, 0)
            .skipped()
            .validate()
            .is_ok());
    }

    #[test]
    fn residual_rules_follow_paper_diagrams() {
        assert!(BlockConfig::new(BlockKind::Rb, 16, 16, 32, 3).has_residual());
        assert!(BlockConfig::new(BlockKind::Db, 24, 96, 24, 3).has_residual());
        assert!(!BlockConfig::new(BlockKind::Db, 24, 96, 32, 3).has_residual());
        assert!(!BlockConfig::new(BlockKind::Mb, 24, 96, 24, 3).has_residual());
        assert!(!BlockConfig::new(BlockKind::Cb, 24, 24, 24, 3).has_residual());
    }

    #[test]
    fn mb_stride_halves_feature_map() {
        let block = BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3);
        let ops = block.ops(32, 32);
        assert_eq!(ops[1].out_h, 16);
        assert_eq!(ops[2].out_h, 16);
        // stride-1 DB keeps the resolution
        let db = BlockConfig::new(BlockKind::Db, 16, 64, 24, 3);
        assert_eq!(db.ops(32, 32)[2].out_h, 32);
    }

    #[test]
    fn depthwise_flops_are_much_cheaper_than_standard() {
        let dw = ConvOp {
            kind: OpKind::Depthwise,
            c_in: 64,
            c_out: 64,
            kernel: 3,
            stride: 1,
            out_h: 16,
            out_w: 16,
        };
        let std_op = ConvOp {
            kind: OpKind::Standard,
            c_in: 64,
            c_out: 64,
            kernel: 3,
            stride: 1,
            out_h: 16,
            out_w: 16,
        };
        assert!(std_op.flops() > 10 * dw.flops());
        assert!(std_op.params() > 10 * dw.params());
    }

    #[test]
    fn dense_op_costs() {
        let dense = ConvOp {
            kind: OpKind::Dense,
            c_in: 256,
            c_out: 5,
            kernel: 1,
            stride: 1,
            out_h: 1,
            out_w: 1,
        };
        assert_eq!(dense.params(), 256 * 5 + 5);
        assert_eq!(dense.flops(), 2 * 256 * 5);
    }

    #[test]
    fn downsampled_blocks_apply_stride_two() {
        let block = BlockConfig::new(BlockKind::Rb, 32, 32, 32, 3).downsampled();
        assert_eq!(block.stride(), 2);
        assert_eq!(block.ops(16, 16)[0].out_h, 8);
        // the plain variant keeps the resolution
        assert_eq!(BlockConfig::new(BlockKind::Rb, 32, 32, 32, 3).stride(), 1);
        // skip wins over downsample
        assert_eq!(
            BlockConfig::new(BlockKind::Rb, 32, 32, 32, 3)
                .downsampled()
                .skipped()
                .stride(),
            1
        );
    }

    #[test]
    fn spatial_out_rounds_up() {
        assert_eq!(spatial_out(7, 2), 4);
        assert_eq!(spatial_out(8, 2), 4);
        assert_eq!(spatial_out(5, 1), 5);
        assert_eq!(spatial_out(1, 2), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_params_grow_with_channels(
            kind_idx in 0usize..4,
            ch in 4usize..64,
            k in prop::sample::select(vec![3usize, 5, 7]),
        ) {
            let kind = BlockKind::ALL[kind_idx];
            let small = BlockConfig::new(kind, ch, ch, ch, k);
            let large = BlockConfig::new(kind, ch, ch * 2, ch * 2, k);
            prop_assert!(large.param_count() > small.param_count());
        }

        #[test]
        fn prop_flops_scale_with_resolution(
            kind_idx in 0usize..4,
            ch in 4usize..32,
        ) {
            let kind = BlockKind::ALL[kind_idx];
            let block = BlockConfig::new(kind, ch, ch, ch, 3);
            prop_assert!(block.flops(16, 16) >= block.flops(8, 8));
        }
    }
}
