//! `archspace` — block-based architecture IR, search space and model zoo.
//!
//! FaHaNa searches over architectures assembled from four block types
//! (Section 3.2 ➁ of the paper):
//!
//! * **MB** — MobileNetV2 inverted bottleneck with stride 2 (downsampling);
//! * **DB** — MobileNetV2 inverted bottleneck with stride 1 (optionally with
//!   a skip connection);
//! * **RB** — ResNet basic block (two spatial convolutions plus skip);
//! * **CB** — a conventional convolution block.
//!
//! Every block shares the hyperparameters `CH1` (input channels, inherited
//! from the previous block), `CH2`, `CH3` and kernel size `K`; blocks may
//! also be skipped entirely to vary network depth.
//!
//! This crate provides:
//!
//! * the [`BlockConfig`]/[`Architecture`] IR with parameter, FLOP and storage
//!   accounting ([`block`], [`arch`]);
//! * the [`SearchSpace`] with action encoding/decoding and search-space-size
//!   computation — the quantity Table 2 reports as 10^19 vs 10^9 ([`space`]);
//! * the [`BackboneProducer`] that freezes the header of a backbone and
//!   exposes only tail slots for search, given per-layer feature variations
//!   ([`backbone`]);
//! * the reference [`zoo`] (MobileNetV2/V3, MnasNet, ProxylessNAS, ResNet,
//!   SqueezeNet) expressed in the same IR;
//! * [`lowering`] from the IR to a trainable [`neural::Sequential`] network;
//! * a text [`render`]er for architecture visualisations (Figure 7).
//!
//! # Example
//!
//! ```
//! use archspace::{Architecture, BlockConfig, BlockKind};
//!
//! let arch = Architecture::builder(5)
//!     .stem(16, 3)
//!     .block(BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3))
//!     .block(BlockConfig::new(BlockKind::Rb, 24, 24, 24, 3))
//!     .build()
//!     .expect("valid architecture");
//! assert!(arch.param_count() > 0);
//! ```

pub mod arch;
pub mod backbone;
pub mod block;
pub mod error;
pub mod lowering;
pub mod render;
pub mod space;
pub mod zoo;

pub use arch::{Architecture, ArchitectureBuilder, StemConfig};
pub use backbone::{BackboneProducer, BackboneTemplate, FreezeDecision};
pub use block::{BlockConfig, BlockKind};
pub use error::ArchError;
pub use render::render_architecture;
pub use space::{BlockDecision, SearchSpace, SpaceConfig};
pub use zoo::{reference_models, ReferenceModel, ZooEntry};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ArchError>;
