//! Lowering the architecture IR to trainable [`neural`] networks.
//!
//! The trained evaluator needs a real forward/backward pass for a candidate
//! architecture. This module converts an [`Architecture`] into a
//! [`neural::Sequential`] stack of convolution, normalisation, activation,
//! pooling and classifier layers operating on NCHW image tensors.

use ftensor::SeededRng;
use neural::{
    ChannelNorm, Conv2d, Dense, DepthwiseConv2d, GlobalAvgPool, Relu, Relu6, Residual, Sequential,
};

use crate::arch::Architecture;
use crate::block::{BlockConfig, BlockKind};
use crate::error::ArchError;
use crate::Result;

/// Options controlling the lowering.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoweringOptions {
    /// Seed for weight initialisation.
    pub seed: u64,
    /// If `true`, the stem and frozen header layers are marked non-trainable.
    pub freeze_first_blocks: usize,
}

/// A lowered network: the trainable stack plus the index of the first layer
/// of each block (used by feature-variation analysis to map activations back
/// to architecture layers).
#[derive(Debug)]
pub struct LoweredNetwork {
    /// The trainable layer stack.
    pub network: Sequential,
    /// For each architecture block (in order), the index of its final layer
    /// inside [`LoweredNetwork::network`].
    pub block_boundaries: Vec<usize>,
}

/// Lowers an architecture into a trainable network.
///
/// # Errors
///
/// Returns [`ArchError::InvalidArchitecture`] if the architecture fails
/// validation or a layer rejects its configuration.
pub fn lower(arch: &Architecture, options: LoweringOptions) -> Result<LoweredNetwork> {
    arch.validate()?;
    let mut rng = SeededRng::new(options.seed);
    let mut net = Sequential::new();
    let mut boundaries = Vec::new();

    // Stem: conv(stride 2) + norm + ReLU.
    let stem = arch.stem();
    net.push(Box::new(
        Conv2d::new(
            3,
            stem.out_channels,
            stem.kernel,
            2,
            stem.kernel / 2,
            &mut rng,
        )
        .map_err(|e| ArchError::InvalidArchitecture(format!("stem: {e}")))?,
    ));
    net.push(Box::new(ChannelNorm::new(stem.out_channels).map_err(
        |e| ArchError::InvalidArchitecture(format!("stem norm: {e}")),
    )?));
    net.push(Box::new(Relu::new()));

    for (block_idx, block) in arch.blocks().iter().enumerate() {
        if block.skipped {
            boundaries.push(net.len().saturating_sub(1));
            continue;
        }
        let body = lower_block(block, &mut rng)?;
        if block.has_residual() && block.ch_in == block.ch_out {
            net.push(Box::new(Residual::new(body)));
        } else {
            // flatten the body into the outer stack
            net.push(Box::new(body));
        }
        if options.freeze_first_blocks > block_idx {
            // freeze everything appended so far (stem + blocks up to here)
            net.freeze_prefix(net.len());
        }
        boundaries.push(net.len() - 1);
    }

    // Head: global average pool + linear classifier.
    net.push(Box::new(GlobalAvgPool::new()));
    net.push(Box::new(Dense::new(
        arch.final_channels(),
        arch.classes(),
        &mut rng,
    )));

    Ok(LoweredNetwork {
        network: net,
        block_boundaries: boundaries,
    })
}

fn lower_block(block: &BlockConfig, rng: &mut SeededRng) -> Result<Sequential> {
    let mut body = Sequential::new();
    let pad = block.kernel / 2;
    let err = |e: neural::NeuralError| ArchError::InvalidArchitecture(format!("block: {e}"));
    match block.kind {
        BlockKind::Mb | BlockKind::Db => {
            let stride = block.stride();
            body.push(Box::new(
                Conv2d::new(block.ch_in, block.ch_mid, 1, 1, 0, rng).map_err(err)?,
            ));
            body.push(Box::new(ChannelNorm::new(block.ch_mid).map_err(err)?));
            body.push(Box::new(Relu6::new()));
            body.push(Box::new(
                DepthwiseConv2d::new(block.ch_mid, block.kernel, stride, pad, rng).map_err(err)?,
            ));
            body.push(Box::new(ChannelNorm::new(block.ch_mid).map_err(err)?));
            body.push(Box::new(Relu6::new()));
            body.push(Box::new(
                Conv2d::new(block.ch_mid, block.ch_out, 1, 1, 0, rng).map_err(err)?,
            ));
            body.push(Box::new(ChannelNorm::new(block.ch_out).map_err(err)?));
        }
        BlockKind::Rb => {
            body.push(Box::new(
                Conv2d::new(block.ch_in, block.ch_mid, block.kernel, 1, pad, rng).map_err(err)?,
            ));
            body.push(Box::new(ChannelNorm::new(block.ch_mid).map_err(err)?));
            body.push(Box::new(Relu::new()));
            body.push(Box::new(
                Conv2d::new(block.ch_mid, block.ch_out, block.kernel, 1, pad, rng).map_err(err)?,
            ));
            body.push(Box::new(ChannelNorm::new(block.ch_out).map_err(err)?));
            body.push(Box::new(Relu::new()));
        }
        BlockKind::Cb => {
            body.push(Box::new(
                Conv2d::new(block.ch_in, block.ch_mid, block.kernel, 1, pad, rng).map_err(err)?,
            ));
            body.push(Box::new(ChannelNorm::new(block.ch_mid).map_err(err)?));
            body.push(Box::new(Relu::new()));
            body.push(Box::new(
                Conv2d::new(block.ch_mid, block.ch_out, 1, 1, 0, rng).map_err(err)?,
            ));
            body.push(Box::new(ChannelNorm::new(block.ch_out).map_err(err)?));
            body.push(Box::new(Relu::new()));
        }
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use ftensor::Tensor;
    use neural::Layer;

    fn tiny_arch() -> Architecture {
        Architecture::builder(5)
            .name("tiny")
            .stem(8, 3)
            .input_size(16)
            .block(BlockConfig::new(BlockKind::Mb, 8, 16, 12, 3))
            .block(BlockConfig::new(BlockKind::Db, 12, 24, 12, 3))
            .block(BlockConfig::new(BlockKind::Rb, 12, 12, 12, 3))
            .block(BlockConfig::new(BlockKind::Cb, 12, 12, 16, 3))
            .build()
            .unwrap()
    }

    #[test]
    fn lowered_network_runs_forward() {
        let lowered = lower(&tiny_arch(), LoweringOptions::default()).unwrap();
        let mut net = lowered.network;
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 5]);
    }

    #[test]
    fn block_boundaries_cover_every_block() {
        let arch = tiny_arch();
        let lowered = lower(&arch, LoweringOptions::default()).unwrap();
        assert_eq!(lowered.block_boundaries.len(), arch.blocks().len());
        // boundaries are increasing and inside the network
        let mut prev = 0usize;
        for &b in &lowered.block_boundaries {
            assert!(b >= prev);
            assert!(b < lowered.network.len());
            prev = b;
        }
    }

    #[test]
    fn residual_blocks_preserve_shape() {
        let arch = Architecture::builder(3)
            .stem(8, 3)
            .input_size(8)
            .block(BlockConfig::new(BlockKind::Db, 8, 16, 8, 3))
            .build()
            .unwrap();
        let lowered = lower(&arch, LoweringOptions::default()).unwrap();
        let mut net = lowered.network;
        let y = net.forward(&Tensor::zeros(&[1, 3, 8, 8]), false).unwrap();
        assert_eq!(y.dims(), &[1, 3]);
    }

    #[test]
    fn freezing_reduces_trainable_params() {
        let arch = tiny_arch();
        let unfrozen = lower(&arch, LoweringOptions::default()).unwrap();
        let frozen = lower(
            &arch,
            LoweringOptions {
                seed: 0,
                freeze_first_blocks: 2,
            },
        )
        .unwrap();
        let mut a = unfrozen.network;
        let mut b = frozen.network;
        assert!(b.trainable_param_count() < a.trainable_param_count());
        assert_eq!(a.param_count(), b.param_count());
    }

    #[test]
    fn skipped_blocks_are_not_lowered() {
        let arch = Architecture::builder(3)
            .stem(8, 3)
            .input_size(8)
            .block(BlockConfig::new(BlockKind::Db, 8, 16, 8, 3))
            .block(BlockConfig::new(BlockKind::Rb, 8, 8, 8, 3).skipped())
            .build()
            .unwrap();
        let lowered = lower(&arch, LoweringOptions::default()).unwrap();
        let mut net = lowered.network;
        let y = net.forward(&Tensor::zeros(&[1, 3, 8, 8]), false).unwrap();
        assert_eq!(y.dims(), &[1, 3]);
    }

    #[test]
    fn lowering_is_deterministic_in_the_seed() {
        let arch = tiny_arch();
        let mut a = lower(&arch, LoweringOptions::default()).unwrap().network;
        let mut b = lower(&arch, LoweringOptions::default()).unwrap().network;
        let x = Tensor::ones(&[1, 3, 16, 16]);
        let ya = a.forward(&x, false).unwrap();
        let yb = b.forward(&x, false).unwrap();
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    fn lowered_param_count_matches_ir_accounting() {
        // The IR's param_count and the lowered network's param_count use the
        // same formula (convs + biases + 2-per-channel norms + classifier),
        // so they must agree exactly for non-residual-projection blocks.
        let arch = Architecture::builder(5)
            .stem(8, 3)
            .input_size(16)
            .block(BlockConfig::new(BlockKind::Mb, 8, 16, 12, 3))
            .block(BlockConfig::new(BlockKind::Cb, 12, 12, 16, 3))
            .build()
            .unwrap();
        let lowered = lower(&arch, LoweringOptions::default()).unwrap();
        assert_eq!(lowered.network.param_count() as u64, arch.param_count());
    }
}
