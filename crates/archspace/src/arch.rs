//! Whole-network architecture IR: stem + block sequence + classifier.

use serde::{Deserialize, Serialize};

use crate::block::{spatial_out, BlockConfig, ConvOp, OpKind};
use crate::error::ArchError;
use crate::Result;

/// The fixed stem in front of the block sequence: a `k × k` convolution with
/// stride 2 over the RGB input (the paper's backbones all start with a
/// `Conv 7×7` or `Conv 3×3` stem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StemConfig {
    /// Output channels of the stem convolution.
    pub out_channels: usize,
    /// Stem kernel size.
    pub kernel: usize,
    /// Whether the stem convolution is followed by a stride-2 max-pool
    /// (the ResNet/SqueezeNet-style `conv7×7 + pool` stem). MobileNet-style
    /// stems leave this off.
    pub pool: bool,
}

impl Default for StemConfig {
    fn default() -> Self {
        StemConfig {
            out_channels: 16,
            kernel: 3,
            pool: false,
        }
    }
}

impl StemConfig {
    /// Total spatial reduction applied by the stem (2, or 4 with pooling).
    pub fn reduction(&self) -> usize {
        if self.pool {
            4
        } else {
            2
        }
    }
}

/// A complete candidate architecture.
///
/// An architecture is the stem, an ordered list of blocks (channel-chained:
/// `CH1` of block *i* equals the effective output width of block *i − 1*),
/// global average pooling and a linear classifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Architecture {
    name: String,
    stem: StemConfig,
    blocks: Vec<BlockConfig>,
    classes: usize,
    input_channels: usize,
    input_size: usize,
}

impl Architecture {
    /// Starts building an architecture for a `classes`-way classifier.
    pub fn builder(classes: usize) -> ArchitectureBuilder {
        ArchitectureBuilder {
            name: "unnamed".to_string(),
            stem: StemConfig::default(),
            blocks: Vec::new(),
            classes,
            input_channels: 3,
            input_size: 64,
        }
    }

    /// The architecture's name (zoo name or a search-generated identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the name (used when the search labels discovered networks).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The stem configuration.
    pub fn stem(&self) -> StemConfig {
        self.stem
    }

    /// The block sequence.
    pub fn blocks(&self) -> &[BlockConfig] {
        &self.blocks
    }

    /// Mutable access to the block sequence (used by the producer when
    /// grafting searchable tails onto frozen headers).
    pub fn blocks_mut(&mut self) -> &mut Vec<BlockConfig> {
        &mut self.blocks
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Input image side length assumed for FLOP/latency accounting.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Number of active (non-skipped) blocks.
    pub fn depth(&self) -> usize {
        self.blocks.iter().filter(|b| !b.skipped).count()
    }

    /// Validates the channel chaining and per-block parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::ChannelMismatch`] or [`ArchError::InvalidBlock`]
    /// pointing at the first offending block.
    pub fn validate(&self) -> Result<()> {
        if self.classes == 0 {
            return Err(ArchError::InvalidArchitecture(
                "classifier needs at least one class".into(),
            ));
        }
        if self.stem.out_channels == 0 {
            return Err(ArchError::InvalidArchitecture(
                "stem must produce at least one channel".into(),
            ));
        }
        let mut current = self.stem.out_channels;
        for (idx, block) in self.blocks.iter().enumerate() {
            block.validate().map_err(|reason| ArchError::InvalidBlock {
                block_index: idx,
                reason,
            })?;
            if block.skipped {
                continue;
            }
            if block.ch_in != current {
                return Err(ArchError::ChannelMismatch {
                    block_index: idx,
                    expected: current,
                    actual: block.ch_in,
                });
            }
            current = block.output_channels();
        }
        Ok(())
    }

    /// The channel width feeding the classifier.
    pub fn final_channels(&self) -> usize {
        self.blocks
            .iter()
            .rfind(|b| !b.skipped)
            .map(|b| b.output_channels())
            .unwrap_or(self.stem.out_channels)
    }

    /// Every primitive operation of the network at its nominal input size,
    /// in execution order. This is what the hardware latency model consumes.
    pub fn ops(&self) -> Vec<ConvOp> {
        let mut ops = Vec::new();
        // stem conv (stride 2), optionally followed by a stride-2 pool
        let conv_h = spatial_out(self.input_size, 2);
        ops.push(ConvOp {
            kind: OpKind::Standard,
            c_in: self.input_channels,
            c_out: self.stem.out_channels,
            kernel: self.stem.kernel,
            stride: 2,
            out_h: conv_h,
            out_w: conv_h,
        });
        let mut h = spatial_out(self.input_size, self.stem.reduction());
        let mut w = h;
        for block in &self.blocks {
            ops.extend(block.ops(h, w));
            if !block.skipped {
                h = spatial_out(h, block.stride());
                w = spatial_out(w, block.stride());
            }
        }
        // classifier
        ops.push(ConvOp {
            kind: OpKind::Dense,
            c_in: self.final_channels(),
            c_out: self.classes,
            kernel: 1,
            stride: 1,
            out_h: 1,
            out_w: 1,
        });
        ops
    }

    /// Total number of parameters (stem + blocks + norms + classifier).
    pub fn param_count(&self) -> u64 {
        let stem_params =
            (self.input_channels * self.stem.out_channels * self.stem.kernel * self.stem.kernel
                + self.stem.out_channels) as u64
                + 2 * self.stem.out_channels as u64;
        let block_params: u64 = self.blocks.iter().map(|b| b.param_count()).sum();
        let classifier_params = (self.final_channels() * self.classes + self.classes) as u64;
        stem_params + block_params + classifier_params
    }

    /// Total FLOPs at the nominal input size.
    pub fn flops(&self) -> u64 {
        self.ops().iter().map(|op| op.flops()).sum()
    }

    /// Model storage in megabytes assuming 32-bit weights.
    pub fn storage_mb(&self) -> f64 {
        self.param_count() as f64 * 4.0 / (1024.0 * 1024.0)
    }

    /// Model size in millions of parameters (the unit of the paper's plots).
    pub fn param_millions(&self) -> f64 {
        self.param_count() as f64 / 1.0e6
    }
}

/// Builder for [`Architecture`] values.
#[derive(Debug, Clone)]
pub struct ArchitectureBuilder {
    name: String,
    stem: StemConfig,
    blocks: Vec<BlockConfig>,
    classes: usize,
    input_channels: usize,
    input_size: usize,
}

impl ArchitectureBuilder {
    /// Sets the architecture name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Configures the stem convolution.
    pub fn stem(mut self, out_channels: usize, kernel: usize) -> Self {
        self.stem = StemConfig {
            out_channels,
            kernel,
            pool: self.stem.pool,
        };
        self
    }

    /// Adds a stride-2 max-pool after the stem convolution (ResNet-style).
    pub fn stem_pooled(mut self) -> Self {
        self.stem.pool = true;
        self
    }

    /// Sets the nominal input resolution (square) used for cost accounting.
    pub fn input_size(mut self, size: usize) -> Self {
        self.input_size = size;
        self
    }

    /// Sets the number of input channels (3 for RGB).
    pub fn input_channels(mut self, channels: usize) -> Self {
        self.input_channels = channels;
        self
    }

    /// Appends one block.
    pub fn block(mut self, block: BlockConfig) -> Self {
        self.blocks.push(block);
        self
    }

    /// Appends several blocks.
    pub fn blocks<I: IntoIterator<Item = BlockConfig>>(mut self, blocks: I) -> Self {
        self.blocks.extend(blocks);
        self
    }

    /// Finalises and validates the architecture.
    ///
    /// # Errors
    ///
    /// Returns the first validation error (see [`Architecture::validate`]).
    pub fn build(self) -> Result<Architecture> {
        let arch = Architecture {
            name: self.name,
            stem: self.stem,
            blocks: self.blocks,
            classes: self.classes,
            input_channels: self.input_channels,
            input_size: self.input_size,
        };
        arch.validate()?;
        Ok(arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockKind;
    use proptest::prelude::*;

    fn sample_arch() -> Architecture {
        Architecture::builder(5)
            .name("sample")
            .stem(16, 3)
            .input_size(64)
            .block(BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3))
            .block(BlockConfig::new(BlockKind::Db, 24, 96, 24, 3))
            .block(BlockConfig::new(BlockKind::Rb, 24, 48, 48, 3))
            .block(BlockConfig::new(BlockKind::Cb, 48, 48, 64, 5))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_architecture() {
        let arch = sample_arch();
        assert_eq!(arch.name(), "sample");
        assert_eq!(arch.depth(), 4);
        assert_eq!(arch.classes(), 5);
        assert_eq!(arch.final_channels(), 64);
        assert!(arch.param_count() > 0);
        assert!(arch.flops() > 0);
        assert!(arch.storage_mb() > 0.0);
    }

    #[test]
    fn channel_mismatch_is_rejected() {
        let result = Architecture::builder(5)
            .stem(16, 3)
            .block(BlockConfig::new(BlockKind::Mb, 32, 64, 24, 3))
            .build();
        assert!(matches!(result, Err(ArchError::ChannelMismatch { .. })));
    }

    #[test]
    fn invalid_block_is_rejected_with_index() {
        let result = Architecture::builder(5)
            .stem(16, 3)
            .block(BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3))
            .block(BlockConfig::new(BlockKind::Cb, 24, 24, 24, 4))
            .build();
        match result {
            Err(ArchError::InvalidBlock { block_index, .. }) => assert_eq!(block_index, 1),
            other => panic!("expected InvalidBlock, got {other:?}"),
        }
    }

    #[test]
    fn zero_classes_is_rejected() {
        assert!(Architecture::builder(0).stem(8, 3).build().is_err());
    }

    #[test]
    fn skipped_blocks_do_not_break_chaining() {
        let arch = Architecture::builder(5)
            .stem(16, 3)
            .block(BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3))
            .block(BlockConfig::new(BlockKind::Rb, 99, 99, 99, 3).skipped())
            .block(BlockConfig::new(BlockKind::Db, 24, 96, 24, 3))
            .build()
            .unwrap();
        assert_eq!(arch.depth(), 2);
        assert_eq!(arch.final_channels(), 24);
    }

    #[test]
    fn ops_track_spatial_resolution() {
        let arch = sample_arch();
        let ops = arch.ops();
        // stem halves 64 -> 32; MB halves 32 -> 16; the rest keep 16
        assert_eq!(ops[0].out_h, 32);
        let last_conv = &ops[ops.len() - 2];
        assert_eq!(last_conv.out_h, 16);
        // final op is the classifier
        assert_eq!(ops.last().unwrap().kind, OpKind::Dense);
        assert_eq!(ops.last().unwrap().c_out, 5);
    }

    #[test]
    fn param_count_is_consistent_with_ops_plus_norms() {
        let arch = sample_arch();
        let op_params: u64 = arch.ops().iter().map(|o| o.params()).sum();
        // param_count additionally includes the channel-norm affine params,
        // so it must be strictly larger than the bare conv/dense params.
        assert!(arch.param_count() > op_params);
    }

    #[test]
    fn storage_follows_four_bytes_per_param() {
        let arch = sample_arch();
        let expected = arch.param_count() as f64 * 4.0 / (1024.0 * 1024.0);
        assert!((arch.storage_mb() - expected).abs() < 1e-9);
        assert!((arch.param_millions() - arch.param_count() as f64 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn set_name_updates_name() {
        let mut arch = sample_arch();
        arch.set_name("fahana-small");
        assert_eq!(arch.name(), "fahana-small");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_wider_final_block_never_reduces_params(extra in 1usize..64) {
            let base = sample_arch();
            let wider = Architecture::builder(5)
                .stem(16, 3)
                .input_size(64)
                .block(BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3))
                .block(BlockConfig::new(BlockKind::Db, 24, 96, 24, 3))
                .block(BlockConfig::new(BlockKind::Rb, 24, 48, 48, 3))
                .block(BlockConfig::new(BlockKind::Cb, 48, 48, 64 + extra, 5))
                .build()
                .unwrap();
            prop_assert!(wider.param_count() > base.param_count());
        }

        #[test]
        fn prop_larger_input_never_reduces_flops(size in prop::sample::select(vec![32usize, 64, 96, 128])) {
            let small = Architecture::builder(5)
                .stem(16, 3)
                .input_size(size)
                .block(BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3))
                .build()
                .unwrap();
            let large = Architecture::builder(5)
                .stem(16, 3)
                .input_size(size * 2)
                .block(BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3))
                .build()
                .unwrap();
            prop_assert!(large.flops() >= small.flops());
        }
    }
}
