//! The backbone architecture producer and its freezing method.
//!
//! Paper Section 3.2 ➂: given a pretrained backbone (MobileNetV2 in the
//! evaluation), the producer streams minority and majority batches through
//! it, measures the per-layer feature variation between groups, and freezes
//! every layer *before* the first one whose variation exceeds
//! `γ · max_variation`. Frozen layers keep their pretrained weights; only the
//! remaining tail slots are searched.

use serde::{Deserialize, Serialize};

use crate::arch::{Architecture, StemConfig};
use crate::block::BlockConfig;
use crate::error::ArchError;
use crate::space::{BlockDecision, SearchSpace};
use crate::Result;

/// The outcome of the freezing analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreezeDecision {
    /// Index of the first searchable layer (all earlier layers are frozen).
    pub split_layer: usize,
    /// The threshold `γ · max_variation` that was applied.
    pub threshold: f32,
    /// The per-layer feature variations that informed the decision.
    pub variations: Vec<f32>,
}

/// A backbone with a frozen header and open tail slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackboneTemplate {
    name: String,
    stem: StemConfig,
    frozen_blocks: Vec<BlockConfig>,
    searchable_slots: usize,
    classes: usize,
    input_size: usize,
}

impl BackboneTemplate {
    /// Number of frozen blocks (the header).
    pub fn frozen_block_count(&self) -> usize {
        self.frozen_blocks.len()
    }

    /// Number of searchable tail slots.
    pub fn searchable_slots(&self) -> usize {
        self.searchable_slots
    }

    /// Channel width entering the first searchable slot.
    pub fn tail_input_channels(&self) -> usize {
        self.frozen_blocks
            .iter()
            .rfind(|b| !b.skipped)
            .map(|b| b.output_channels())
            .unwrap_or(self.stem.out_channels)
    }

    /// Parameters held by the frozen header (stem + frozen blocks), i.e. the
    /// weights that do **not** need to be trained for each child network.
    pub fn frozen_param_count(&self) -> u64 {
        let stem = (3 * self.stem.out_channels * self.stem.kernel * self.stem.kernel
            + self.stem.out_channels) as u64
            + 2 * self.stem.out_channels as u64;
        stem + self
            .frozen_blocks
            .iter()
            .map(|b| b.param_count())
            .sum::<u64>()
    }

    /// Builds a full child architecture from tail decisions.
    ///
    /// # Errors
    ///
    /// Returns an error if the decisions are invalid for `space` or the
    /// resulting architecture fails validation.
    pub fn instantiate(
        &self,
        space: &SearchSpace,
        decisions: &[BlockDecision],
        name: impl Into<String>,
    ) -> Result<Architecture> {
        if space.slots() != self.searchable_slots {
            return Err(ArchError::DecisionLengthMismatch {
                expected: self.searchable_slots,
                actual: space.slots(),
            });
        }
        let tail = space.decode(decisions, self.tail_input_channels())?;
        Architecture::builder(self.classes)
            .name(name)
            .stem(self.stem.out_channels, self.stem.kernel)
            .input_size(self.input_size)
            .blocks(self.frozen_blocks.iter().copied())
            .blocks(tail)
            .build()
    }
}

/// Produces [`BackboneTemplate`]s from a backbone architecture and a
/// feature-variation profile.
#[derive(Debug, Clone)]
pub struct BackboneProducer {
    backbone: Architecture,
    gamma: f32,
}

impl BackboneProducer {
    /// Creates a producer for `backbone` with freezing scale factor `gamma`
    /// (the paper uses `γ = 0.5`).
    pub fn new(backbone: Architecture, gamma: f32) -> Self {
        BackboneProducer { backbone, gamma }
    }

    /// The backbone this producer freezes.
    pub fn backbone(&self) -> &Architecture {
        &self.backbone
    }

    /// The freezing scale factor.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// Applies the paper's three-step rule to a per-layer feature-variation
    /// profile: threshold `T = γ · max(variations)`, split at the foremost
    /// layer whose variation exceeds `T`.
    ///
    /// An empty profile freezes nothing (split at layer 0).
    pub fn decide_split(&self, variations: &[f32]) -> FreezeDecision {
        if variations.is_empty() {
            return FreezeDecision {
                split_layer: 0,
                threshold: 0.0,
                variations: Vec::new(),
            };
        }
        let max = variations.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let threshold = self.gamma * max;
        let split_layer = variations
            .iter()
            .position(|&v| v >= threshold)
            .unwrap_or(variations.len().saturating_sub(1));
        FreezeDecision {
            split_layer,
            threshold,
            variations: variations.to_vec(),
        }
    }

    /// Builds the backbone template for a freezing decision: blocks before
    /// the split are frozen, the remaining block positions become searchable
    /// slots.
    ///
    /// The variation profile indexes backbone *blocks* (the stem is always
    /// kept, matching the paper's note that the first layers can be replaced
    /// by a plain trainable convolution for feature extraction).
    pub fn template(&self, decision: &FreezeDecision) -> BackboneTemplate {
        let split = decision.split_layer.min(self.backbone.blocks().len());
        let frozen_blocks = self.backbone.blocks()[..split].to_vec();
        let searchable_slots = self.backbone.blocks().len() - split;
        BackboneTemplate {
            name: format!("{}-frozen{}", self.backbone.name(), split),
            stem: self.backbone.stem(),
            frozen_blocks,
            searchable_slots,
            classes: self.backbone.classes(),
            input_size: self.backbone.input_size(),
        }
    }

    /// A template with nothing frozen — the search space MONAS explores.
    pub fn full_search_template(&self) -> BackboneTemplate {
        self.template(&FreezeDecision {
            split_layer: 0,
            threshold: 0.0,
            variations: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockKind;
    use crate::space::SpaceConfig;

    fn backbone() -> Architecture {
        Architecture::builder(5)
            .name("testnet")
            .stem(16, 3)
            .input_size(64)
            .block(BlockConfig::new(BlockKind::Mb, 16, 64, 24, 3))
            .block(BlockConfig::new(BlockKind::Db, 24, 96, 24, 3))
            .block(BlockConfig::new(BlockKind::Mb, 24, 96, 32, 3))
            .block(BlockConfig::new(BlockKind::Db, 32, 128, 32, 3))
            .block(BlockConfig::new(BlockKind::Db, 32, 128, 48, 3))
            .block(BlockConfig::new(BlockKind::Rb, 48, 64, 64, 3))
            .build()
            .unwrap()
    }

    #[test]
    fn split_follows_threshold_rule() {
        let producer = BackboneProducer::new(backbone(), 0.5);
        // variations rise toward the tail, as in the paper's Figure 3
        let variations = [0.01, 0.02, 0.03, 0.05, 0.08, 0.10];
        let decision = producer.decide_split(&variations);
        assert!((decision.threshold - 0.05).abs() < 1e-6);
        assert_eq!(decision.split_layer, 3);
    }

    #[test]
    fn gamma_controls_how_much_is_frozen() {
        let variations = [0.01, 0.02, 0.03, 0.05, 0.08, 0.10];
        let strict = BackboneProducer::new(backbone(), 0.9).decide_split(&variations);
        let lax = BackboneProducer::new(backbone(), 0.1).decide_split(&variations);
        assert!(strict.split_layer > lax.split_layer);
    }

    #[test]
    fn empty_profile_freezes_nothing() {
        let producer = BackboneProducer::new(backbone(), 0.5);
        let decision = producer.decide_split(&[]);
        assert_eq!(decision.split_layer, 0);
        let template = producer.template(&decision);
        assert_eq!(template.frozen_block_count(), 0);
        assert_eq!(template.searchable_slots(), 6);
    }

    #[test]
    fn template_partitions_blocks() {
        let producer = BackboneProducer::new(backbone(), 0.5);
        let decision = FreezeDecision {
            split_layer: 4,
            threshold: 0.0,
            variations: vec![],
        };
        let template = producer.template(&decision);
        assert_eq!(template.frozen_block_count(), 4);
        assert_eq!(template.searchable_slots(), 2);
        assert_eq!(template.tail_input_channels(), 32);
        assert!(template.frozen_param_count() > 0);
    }

    #[test]
    fn split_beyond_block_count_is_clamped() {
        let producer = BackboneProducer::new(backbone(), 0.5);
        let decision = FreezeDecision {
            split_layer: 99,
            threshold: 0.0,
            variations: vec![],
        };
        let template = producer.template(&decision);
        assert_eq!(template.frozen_block_count(), 6);
        assert_eq!(template.searchable_slots(), 0);
    }

    #[test]
    fn instantiate_builds_valid_child_networks() {
        let producer = BackboneProducer::new(backbone(), 0.5);
        let decision = FreezeDecision {
            split_layer: 3,
            threshold: 0.0,
            variations: vec![],
        };
        let template = producer.template(&decision);
        let space = SearchSpace::new(SpaceConfig::default(), template.searchable_slots());
        let mut rng = ftensor::SeededRng::new(11);
        for i in 0..20 {
            let decisions = space.random_decisions(&mut rng);
            let child = template
                .instantiate(&space, &decisions, format!("child-{i}"))
                .unwrap();
            child.validate().unwrap();
            assert_eq!(child.blocks().len(), 6);
            assert!(child.name().starts_with("child-"));
        }
    }

    #[test]
    fn instantiate_rejects_mismatched_space() {
        let producer = BackboneProducer::new(backbone(), 0.5);
        let template = producer.full_search_template();
        let wrong_space = SearchSpace::new(SpaceConfig::default(), 2);
        let mut rng = ftensor::SeededRng::new(3);
        let decisions = wrong_space.random_decisions(&mut rng);
        assert!(template
            .instantiate(&wrong_space, &decisions, "bad")
            .is_err());
    }

    #[test]
    fn frozen_header_reduces_trainable_fraction() {
        let producer = BackboneProducer::new(backbone(), 0.5);
        let frozen_t = producer.template(&FreezeDecision {
            split_layer: 4,
            threshold: 0.0,
            variations: vec![],
        });
        let full_t = producer.full_search_template();
        assert!(frozen_t.frozen_param_count() > full_t.frozen_param_count());
    }
}
