//! Reference model zoo: the existing networks the paper compares against,
//! expressed in the same block IR as the search space, plus the metric
//! values the paper reports for them (used for surrogate calibration and for
//! the "paper" columns of the regenerated tables).

use serde::{Deserialize, Serialize};

use crate::arch::Architecture;
use crate::block::{BlockConfig, BlockKind};

/// The competitor networks evaluated in the paper (Tables 1 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReferenceModel {
    /// MobileNetV2 (manually designed; the G1 fairness baseline).
    MobileNetV2,
    /// MobileNetV3-Small (AutoML).
    MobileNetV3Small,
    /// MobileNetV3-Large (AutoML).
    MobileNetV3Large,
    /// MnasNet with width multiplier 0.5.
    MnasNet05,
    /// MnasNet with width multiplier 1.0.
    MnasNet10,
    /// ProxylessNAS, mobile variant.
    ProxylessNasMobile,
    /// ProxylessNAS, GPU variant.
    ProxylessNasGpu,
    /// ResNet-18.
    ResNet18,
    /// ResNet-34.
    ResNet34,
    /// ResNet-50 (the G2 fairness baseline).
    ResNet50,
    /// SqueezeNet 1.0 (Table 1 only).
    SqueezeNet10,
}

impl ReferenceModel {
    /// All reference models, in the order used by the paper's tables.
    pub const ALL: [ReferenceModel; 11] = [
        ReferenceModel::MobileNetV2,
        ReferenceModel::ProxylessNasMobile,
        ReferenceModel::MnasNet05,
        ReferenceModel::MobileNetV3Small,
        ReferenceModel::MnasNet10,
        ReferenceModel::ResNet50,
        ReferenceModel::ResNet18,
        ReferenceModel::ResNet34,
        ReferenceModel::ProxylessNasGpu,
        ReferenceModel::MobileNetV3Large,
        ReferenceModel::SqueezeNet10,
    ];

    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            ReferenceModel::MobileNetV2 => "MobileNetV2",
            ReferenceModel::MobileNetV3Small => "MobileNetV3(S)",
            ReferenceModel::MobileNetV3Large => "MobileNetV3(L)",
            ReferenceModel::MnasNet05 => "MnasNet 0.5",
            ReferenceModel::MnasNet10 => "MnasNet 1.0",
            ReferenceModel::ProxylessNasMobile => "ProxylessNAS(M)",
            ReferenceModel::ProxylessNasGpu => "ProxylessNAS(G)",
            ReferenceModel::ResNet18 => "ResNet-18",
            ReferenceModel::ResNet34 => "ResNet-34",
            ReferenceModel::ResNet50 => "ResNet-50",
            ReferenceModel::SqueezeNet10 => "SqueezeNet 1.0",
        }
    }
}

impl std::fmt::Display for ReferenceModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The numbers the paper reports for a model (Tables 1 and 3). All fields
/// are exactly the published values; they anchor the surrogate calibration
/// and appear in the "paper" columns of the regenerated tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperMetrics {
    /// Parameter count (`# of Para.` column).
    pub params: u64,
    /// Overall test accuracy (fraction, not percent).
    pub accuracy: f64,
    /// Light-skin (majority) accuracy.
    pub light_accuracy: f64,
    /// Dark-skin (minority) accuracy.
    pub dark_accuracy: f64,
    /// Unfairness score.
    pub unfairness: f64,
    /// Model storage in MB.
    pub storage_mb: f64,
    /// Inference latency on the Raspberry Pi 4 (ms).
    pub latency_raspberry_ms: f64,
    /// Inference latency on the Odroid XU-4 (ms).
    pub latency_odroid_ms: f64,
}

/// A zoo entry: the architecture IR plus the paper-reported metrics.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// Which reference model this is.
    pub model: ReferenceModel,
    /// IR approximation of the network (used for op-level cost modelling).
    pub architecture: Architecture,
    /// Metrics reported by the paper, when the paper lists the model.
    pub paper: Option<PaperMetrics>,
}

impl ZooEntry {
    /// Parameter count: the paper-reported value when available (so tables
    /// match the publication), otherwise the IR-computed count.
    pub fn param_count(&self) -> u64 {
        self.paper
            .map(|p| p.params)
            .unwrap_or_else(|| self.architecture.param_count())
    }

    /// Storage in MB (paper value when available).
    pub fn storage_mb(&self) -> f64 {
        self.paper
            .map(|p| p.storage_mb)
            .unwrap_or_else(|| self.architecture.storage_mb())
    }
}

fn mb(ch_in: usize, expand: usize, ch_out: usize, k: usize) -> BlockConfig {
    BlockConfig::new(BlockKind::Mb, ch_in, ch_in * expand, ch_out, k)
}

fn db(ch_in: usize, expand: usize, ch_out: usize, k: usize) -> BlockConfig {
    BlockConfig::new(BlockKind::Db, ch_in, ch_in * expand, ch_out, k)
}

fn rb(ch_in: usize, ch_mid: usize, ch_out: usize, k: usize) -> BlockConfig {
    BlockConfig::new(BlockKind::Rb, ch_in, ch_mid, ch_out, k)
}

fn cb(ch_in: usize, ch_mid: usize, ch_out: usize, k: usize) -> BlockConfig {
    BlockConfig::new(BlockKind::Cb, ch_in, ch_mid, ch_out, k)
}

/// MobileNetV2 backbone expressed in the block IR (5-class head).
///
/// This is also the backbone the FaHaNa producer freezes (paper Section 4.1-B).
pub fn mobilenet_v2(classes: usize, input_size: usize) -> Architecture {
    Architecture::builder(classes)
        .name("MobileNetV2")
        .stem(32, 3)
        .input_size(input_size)
        .blocks(vec![
            db(32, 1, 16, 3),
            mb(16, 6, 24, 3),
            db(24, 6, 24, 3),
            mb(24, 6, 32, 3),
            db(32, 6, 32, 3),
            db(32, 6, 32, 3),
            mb(32, 6, 64, 3),
            db(64, 6, 64, 3),
            db(64, 6, 64, 3),
            db(64, 6, 64, 3),
            db(64, 6, 96, 3),
            db(96, 6, 96, 3),
            db(96, 6, 96, 3),
            mb(96, 6, 160, 3),
            db(160, 6, 160, 3),
            db(160, 6, 160, 3),
            db(160, 6, 320, 3),
        ])
        .build()
        .expect("static MobileNetV2 definition is valid")
}

fn mobilenet_v3_small(classes: usize, input_size: usize) -> Architecture {
    Architecture::builder(classes)
        .name("MobileNetV3(S)")
        .stem(16, 3)
        .input_size(input_size)
        .blocks(vec![
            mb(16, 1, 16, 3),
            mb(16, 4, 24, 3),
            db(24, 3, 24, 3),
            mb(24, 4, 40, 5),
            db(40, 6, 40, 5),
            db(40, 6, 40, 5),
            db(40, 3, 48, 5),
            db(48, 3, 48, 5),
            mb(48, 6, 96, 5),
            db(96, 6, 96, 5),
            db(96, 6, 96, 5),
            db(96, 6, 288, 3),
        ])
        .build()
        .expect("static MobileNetV3-S definition is valid")
}

fn mobilenet_v3_large(classes: usize, input_size: usize) -> Architecture {
    Architecture::builder(classes)
        .name("MobileNetV3(L)")
        .stem(16, 3)
        .input_size(input_size)
        .blocks(vec![
            db(16, 1, 16, 3),
            mb(16, 4, 24, 3),
            db(24, 3, 24, 3),
            mb(24, 3, 40, 5),
            db(40, 3, 40, 5),
            db(40, 3, 40, 5),
            mb(40, 6, 80, 3),
            db(80, 2, 80, 3),
            db(80, 2, 80, 3),
            db(80, 2, 80, 3),
            db(80, 6, 112, 3),
            db(112, 6, 112, 3),
            mb(112, 6, 160, 5),
            db(160, 6, 160, 5),
            db(160, 6, 160, 5),
            db(160, 6, 480, 3),
        ])
        .build()
        .expect("static MobileNetV3-L definition is valid")
}

fn mnasnet(width_half: bool, classes: usize, input_size: usize) -> Architecture {
    let w = |c: usize| if width_half { (c / 2).max(8) } else { c };
    Architecture::builder(classes)
        .name(if width_half {
            "MnasNet 0.5"
        } else {
            "MnasNet 1.0"
        })
        .stem(w(32), 3)
        .input_size(input_size)
        .blocks(vec![
            db(w(32), 1, w(16), 3),
            mb(w(16), 3, w(24), 3),
            db(w(24), 3, w(24), 3),
            db(w(24), 3, w(24), 3),
            mb(w(24), 3, w(40), 5),
            db(w(40), 3, w(40), 5),
            db(w(40), 3, w(40), 5),
            mb(w(40), 6, w(80), 5),
            db(w(80), 6, w(80), 5),
            db(w(80), 6, w(80), 5),
            db(w(80), 6, w(96), 3),
            db(w(96), 6, w(96), 3),
            mb(w(96), 6, w(192), 5),
            db(w(192), 6, w(192), 5),
            db(w(192), 6, w(192), 5),
            db(w(192), 6, w(192), 5),
            db(w(192), 6, w(320), 3),
        ])
        .build()
        .expect("static MnasNet definition is valid")
}

fn proxyless_nas(gpu: bool, classes: usize, input_size: usize) -> Architecture {
    // The GPU variant is shallower but much wider; the mobile variant is
    // deeper with smaller expansion ratios and mixed kernels.
    let name = if gpu {
        "ProxylessNAS(G)"
    } else {
        "ProxylessNAS(M)"
    };
    let blocks = if gpu {
        vec![
            db(40, 1, 24, 3),
            mb(24, 6, 32, 5),
            db(32, 6, 32, 3),
            mb(32, 6, 56, 7),
            db(56, 6, 56, 3),
            mb(56, 6, 112, 7),
            db(112, 6, 112, 5),
            db(112, 6, 128, 3),
            db(128, 6, 128, 5),
            mb(128, 6, 256, 7),
            db(256, 6, 256, 5),
            db(256, 6, 432, 3),
        ]
    } else {
        vec![
            db(40, 1, 16, 3),
            mb(16, 6, 32, 5),
            db(32, 3, 32, 3),
            db(32, 3, 32, 5),
            mb(32, 6, 40, 7),
            db(40, 3, 40, 3),
            db(40, 3, 40, 5),
            db(40, 3, 40, 5),
            mb(40, 6, 80, 7),
            db(80, 3, 80, 5),
            db(80, 3, 80, 5),
            db(80, 3, 80, 5),
            db(80, 6, 96, 5),
            db(96, 3, 96, 5),
            db(96, 3, 96, 5),
            db(96, 3, 96, 5),
            mb(96, 6, 192, 7),
            db(192, 6, 192, 7),
            db(192, 6, 192, 7),
            db(192, 6, 192, 7),
            db(192, 6, 320, 7),
        ]
    };
    Architecture::builder(classes)
        .name(name)
        .stem(40, 3)
        .input_size(input_size)
        .blocks(blocks)
        .build()
        .expect("static ProxylessNAS definition is valid")
}

fn resnet(depth: usize, classes: usize, input_size: usize) -> Architecture {
    // Basic-block layouts: 18 = [2,2,2,2], 34 = [3,4,6,3].
    // ResNet-50 uses bottleneck blocks; we approximate it with wide basic
    // blocks chosen to land near its parameter count.
    let (name, stages): (&str, Vec<(usize, usize)>) = match depth {
        18 => ("ResNet-18", vec![(64, 2), (128, 2), (256, 2), (512, 2)]),
        34 => ("ResNet-34", vec![(64, 3), (128, 4), (256, 6), (512, 3)]),
        // ResNet-50 uses 1×1/3×3/1×1 bottlenecks; widened basic blocks land
        // near its parameter count and latency profile.
        _ => ("ResNet-50", vec![(72, 3), (144, 4), (288, 6), (576, 3)]),
    };
    let mut blocks = Vec::new();
    let mut current = 64usize;
    for (stage_idx, (width, repeats)) in stages.into_iter().enumerate() {
        for r in 0..repeats {
            let ch_in = if r == 0 { current } else { width };
            let block = rb(ch_in, width, width, 3);
            // stages after the first start with a stride-2 block, as in the
            // real ResNet family
            if r == 0 && stage_idx > 0 {
                blocks.push(block.downsampled());
            } else {
                blocks.push(block);
            }
        }
        current = width;
    }
    Architecture::builder(classes)
        .name(name)
        .stem(64, 7)
        .stem_pooled()
        .input_size(input_size)
        .blocks(blocks)
        .build()
        .expect("static ResNet definition is valid")
}

fn squeezenet(classes: usize, input_size: usize) -> Architecture {
    // Fire modules approximated as CB blocks (squeeze 1×1 + expand).
    Architecture::builder(classes)
        .name("SqueezeNet 1.0")
        .stem(96, 7)
        .stem_pooled()
        .input_size(input_size)
        .blocks(vec![
            cb(96, 16, 128, 3).downsampled(),
            cb(128, 16, 128, 3),
            cb(128, 32, 256, 3).downsampled(),
            cb(256, 32, 256, 3),
            cb(256, 48, 384, 3).downsampled(),
            cb(384, 48, 384, 3),
            cb(384, 64, 512, 3),
            cb(512, 64, 512, 3),
        ])
        .build()
        .expect("static SqueezeNet definition is valid")
}

/// Builds the architecture IR for a reference model.
pub fn reference_architecture(
    model: ReferenceModel,
    classes: usize,
    input_size: usize,
) -> Architecture {
    match model {
        ReferenceModel::MobileNetV2 => mobilenet_v2(classes, input_size),
        ReferenceModel::MobileNetV3Small => mobilenet_v3_small(classes, input_size),
        ReferenceModel::MobileNetV3Large => mobilenet_v3_large(classes, input_size),
        ReferenceModel::MnasNet05 => mnasnet(true, classes, input_size),
        ReferenceModel::MnasNet10 => mnasnet(false, classes, input_size),
        ReferenceModel::ProxylessNasMobile => proxyless_nas(false, classes, input_size),
        ReferenceModel::ProxylessNasGpu => proxyless_nas(true, classes, input_size),
        ReferenceModel::ResNet18 => resnet(18, classes, input_size),
        ReferenceModel::ResNet34 => resnet(34, classes, input_size),
        ReferenceModel::ResNet50 => resnet(50, classes, input_size),
        ReferenceModel::SqueezeNet10 => squeezenet(classes, input_size),
    }
}

/// The paper-reported metrics for a reference model, when the paper lists
/// the model in Table 1 or Table 3.
pub fn paper_metrics(model: ReferenceModel) -> Option<PaperMetrics> {
    let m = |params, acc: f64, light: f64, dark: f64, unfair, storage, pi, odroid| PaperMetrics {
        params,
        accuracy: acc / 100.0,
        light_accuracy: light / 100.0,
        dark_accuracy: dark / 100.0,
        unfairness: unfair,
        storage_mb: storage,
        latency_raspberry_ms: pi,
        latency_odroid_ms: odroid,
    };
    match model {
        ReferenceModel::MobileNetV2 => Some(m(
            2_230_277, 81.05, 81.27, 58.02, 0.2325, 8.51, 1939.40, 4264.55,
        )),
        ReferenceModel::ProxylessNasMobile => Some(m(
            2_805_917, 81.27, 81.56, 50.62, 0.3094, 10.70, 5241.51, 8784.53,
        )),
        ReferenceModel::MnasNet05 => Some(m(
            943_917, 78.12, 78.54, 33.33, 0.4521, 3.60, 714.19, 2312.05,
        )),
        ReferenceModel::MobileNetV3Small => Some(m(
            1_522_981, 80.38, 80.68, 48.15, 0.3253, 5.81, 658.84, 1954.14,
        )),
        ReferenceModel::MnasNet10 => Some(m(
            3_108_717, 80.71, 80.98, 51.85, 0.2913, 11.86, 3855.72, 7033.29,
        )),
        ReferenceModel::ResNet50 => Some(m(
            23_518_277, 83.81, 83.98, 65.43, 0.1855, 89.72, 1063.61, 5750.42,
        )),
        ReferenceModel::ResNet18 => Some(m(
            11_179_077, 83.08, 83.28, 61.73, 0.2155, 42.64, 425.90, 1373.16,
        )),
        ReferenceModel::ResNet34 => Some(m(
            21_287_237, 83.01, 83.23, 59.26, 0.2397, 81.20, 621.87, 2829.22,
        )),
        ReferenceModel::ProxylessNasGpu => Some(m(
            5_399_493, 83.21, 83.46, 56.79, 0.2667, 20.60, 3714.44, 9426.17,
        )),
        ReferenceModel::MobileNetV3Large => Some(m(
            4_208_437, 79.58, 80.00, 34.57, 0.4543, 16.05, 2668.00, 4824.40,
        )),
        // Table 1 reports latency/storage/accuracy/unfairness for SqueezeNet
        // on the Raspberry Pi only; the Odroid latency is not published.
        ReferenceModel::SqueezeNet10 => Some(PaperMetrics {
            params: 735_813,
            accuracy: 0.1565,
            light_accuracy: 0.1660,
            dark_accuracy: 0.0617,
            unfairness: 0.2159,
            storage_mb: 2.77,
            latency_raspberry_ms: 122.92,
            latency_odroid_ms: f64::NAN,
        }),
    }
}

/// Builds the full reference model zoo with paper metrics attached.
pub fn reference_models(classes: usize, input_size: usize) -> Vec<ZooEntry> {
    ReferenceModel::ALL
        .iter()
        .map(|&model| ZooEntry {
            model,
            architecture: reference_architecture(model, classes, input_size),
            paper: paper_metrics(model),
        })
        .collect()
}

/// The FaHaNa-Fair architecture reported in the paper's Figure 7, expressed
/// in the block IR (stem Conv 7×7, four MB blocks, two CB blocks, two RB
/// blocks, linear classifier).
pub fn paper_fahana_fair(classes: usize, input_size: usize) -> Architecture {
    Architecture::builder(classes)
        .name("FaHaNa-Fair")
        .stem(64, 7)
        .stem_pooled()
        .input_size(input_size)
        .blocks(vec![
            BlockConfig::new(BlockKind::Mb, 64, 384, 64, 3),
            BlockConfig::new(BlockKind::Mb, 64, 384, 64, 3),
            BlockConfig::new(BlockKind::Mb, 64, 384, 64, 3),
            BlockConfig::new(BlockKind::Mb, 64, 384, 96, 3),
            BlockConfig::new(BlockKind::Cb, 96, 32, 32, 5),
            BlockConfig::new(BlockKind::Cb, 32, 32, 32, 5),
            BlockConfig::new(BlockKind::Rb, 32, 256, 256, 5),
            BlockConfig::new(BlockKind::Rb, 256, 256, 256, 5),
        ])
        .build()
        .expect("static FaHaNa-Fair definition is valid")
}

/// A compact architecture representative of FaHaNa-Small (the paper does not
/// publish its exact block list, only its size of ~0.42 M parameters); used
/// by the benches as the "discovered small" reference point.
pub fn paper_fahana_small(classes: usize, input_size: usize) -> Architecture {
    Architecture::builder(classes)
        .name("FaHaNa-Small")
        .stem(16, 3)
        .input_size(input_size)
        .blocks(vec![
            BlockConfig::new(BlockKind::Mb, 16, 96, 24, 3),
            BlockConfig::new(BlockKind::Mb, 24, 144, 32, 3),
            BlockConfig::new(BlockKind::Mb, 32, 192, 48, 3),
            BlockConfig::new(BlockKind::Cb, 48, 64, 64, 3),
            BlockConfig::new(BlockKind::Cb, 64, 80, 80, 3),
            BlockConfig::new(BlockKind::Rb, 80, 112, 112, 3),
        ])
        .build()
        .expect("static FaHaNa-Small definition is valid")
}

/// Paper metrics for the two discovered FaHaNa networks (Table 3).
pub fn paper_fahana_metrics() -> [(String, PaperMetrics); 2] {
    [
        (
            "FaHaNa-Small".to_string(),
            PaperMetrics {
                params: 422_341,
                accuracy: 0.8128,
                light_accuracy: 0.8146,
                dark_accuracy: 0.6173,
                unfairness: 0.1973,
                storage_mb: 1.61,
                latency_raspberry_ms: 337.30,
                latency_odroid_ms: 736.22,
            },
        ),
        (
            "FaHaNa-Fair".to_string(),
            PaperMetrics {
                params: 5_502_469,
                accuracy: 0.8406,
                light_accuracy: 0.8422,
                dark_accuracy: 0.6667,
                unfairness: 0.1755,
                storage_mb: 20.99,
                latency_raspberry_ms: 606.80,
                latency_odroid_ms: 1833.76,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reference_architectures_validate() {
        for entry in reference_models(5, 64) {
            entry.architecture.validate().unwrap();
            assert!(entry.architecture.param_count() > 0);
            assert_eq!(entry.architecture.classes(), 5);
        }
    }

    #[test]
    fn zoo_has_eleven_models_with_paper_metrics() {
        let zoo = reference_models(5, 64);
        assert_eq!(zoo.len(), 11);
        assert!(zoo.iter().all(|e| e.paper.is_some()));
    }

    #[test]
    fn paper_param_counts_match_table3() {
        assert_eq!(
            paper_metrics(ReferenceModel::MobileNetV2).unwrap().params,
            2_230_277
        );
        assert_eq!(
            paper_metrics(ReferenceModel::ResNet50).unwrap().params,
            23_518_277
        );
        assert_eq!(
            paper_metrics(ReferenceModel::MnasNet05).unwrap().params,
            943_917
        );
    }

    #[test]
    fn ir_param_counts_are_in_the_right_ballpark() {
        // The IR is an approximation; it must land within 2x of the paper's
        // count and, crucially, preserve the size *ordering* between models.
        for entry in reference_models(5, 64) {
            let paper = entry.paper.unwrap().params as f64;
            let computed = entry.architecture.param_count() as f64;
            let ratio = computed / paper;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{}: computed {computed} vs paper {paper} (ratio {ratio:.2})",
                entry.model
            );
        }
    }

    #[test]
    fn size_ordering_matches_paper_within_families() {
        let params = |m: ReferenceModel| reference_architecture(m, 5, 64).param_count();
        assert!(params(ReferenceModel::MnasNet05) < params(ReferenceModel::MnasNet10));
        assert!(
            params(ReferenceModel::MobileNetV3Small) < params(ReferenceModel::MobileNetV3Large)
        );
        assert!(params(ReferenceModel::ResNet18) < params(ReferenceModel::ResNet34));
        assert!(params(ReferenceModel::ResNet34) < params(ReferenceModel::ResNet50));
        assert!(
            params(ReferenceModel::ProxylessNasMobile) < params(ReferenceModel::ProxylessNasGpu)
        );
    }

    #[test]
    fn unfairness_decreases_with_size_within_series_in_paper_data() {
        // the paper's Figure 1(a) observation, checked against the stored data
        let unfair = |m: ReferenceModel| paper_metrics(m).unwrap().unfairness;
        assert!(unfair(ReferenceModel::MnasNet05) > unfair(ReferenceModel::MnasNet10));
        assert!(unfair(ReferenceModel::MobileNetV3Small) > unfair(ReferenceModel::MobileNetV2));
        assert!(unfair(ReferenceModel::ResNet18) > unfair(ReferenceModel::ResNet50));
    }

    #[test]
    fn fahana_fair_matches_figure7_structure() {
        let arch = paper_fahana_fair(5, 64);
        arch.validate().unwrap();
        let kinds: Vec<BlockKind> = arch.blocks().iter().map(|b| b.kind).collect();
        assert_eq!(
            kinds,
            vec![
                BlockKind::Mb,
                BlockKind::Mb,
                BlockKind::Mb,
                BlockKind::Mb,
                BlockKind::Cb,
                BlockKind::Cb,
                BlockKind::Rb,
                BlockKind::Rb
            ]
        );
        assert_eq!(arch.stem().kernel, 7);
    }

    #[test]
    fn fahana_small_is_much_smaller_than_mobilenet_v2() {
        let small = paper_fahana_small(5, 64);
        let mbv2 = mobilenet_v2(5, 64);
        assert!(small.param_count() * 3 < mbv2.param_count());
    }

    #[test]
    fn fahana_paper_metrics_match_table3() {
        let [small, fair] = paper_fahana_metrics();
        assert_eq!(small.1.params, 422_341);
        assert!((small.1.unfairness - 0.1973).abs() < 1e-9);
        assert_eq!(fair.1.params, 5_502_469);
        assert!((fair.1.accuracy - 0.8406).abs() < 1e-9);
    }

    #[test]
    fn zoo_entry_prefers_paper_params() {
        let zoo = reference_models(5, 64);
        let mbv2 = zoo
            .iter()
            .find(|e| e.model == ReferenceModel::MobileNetV2)
            .unwrap();
        assert_eq!(mbv2.param_count(), 2_230_277);
        assert!((mbv2.storage_mb() - 8.51).abs() < 1e-9);
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(ReferenceModel::MnasNet05.label(), "MnasNet 0.5");
        assert_eq!(
            ReferenceModel::ProxylessNasGpu.to_string(),
            "ProxylessNAS(G)"
        );
    }
}
