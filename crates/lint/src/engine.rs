//! The engine: walks the tree, lexes each file, runs pre-passes
//! (attribute ranges, `use` ranges, `#[cfg(test)]` regions, comment-only
//! line classification), feeds the rules, applies waivers, and runs the
//! global lock-order analysis once every file has been seen.

use std::fs;
use std::path::Path;

use crate::config::{Config, FileClass};
use crate::findings::{Finding, Report};
use crate::lexer::{lex, Tok, TokKind};
use crate::rules;
use crate::waiver::{self, Waiver};

/// Per-token flags from the pre-passes.
const F_ATTR: u8 = 1 << 0;
const F_USE: u8 = 1 << 1;
const F_TEST: u8 = 1 << 2;

/// Everything a rule needs to know about one file.
pub struct FileCtx<'a> {
    pub src: &'a str,
    pub file: &'a str,
    pub toks: &'a [Tok],
    /// Indices into `toks` of non-comment tokens, in order.
    pub code: Vec<usize>,
    pub class: FileClass,
    pub config: &'a Config,
    flags: Vec<u8>,
    /// 1-based; true if the line is blank or consists only of comments
    /// and attributes (so a SAFETY comment can "reach" through it).
    passable_line: Vec<bool>,
    /// 1-based; comment text containing `SAFETY:` spans this line.
    safety_text: Vec<Option<String>>,
}

impl FileCtx<'_> {
    pub fn in_attr(&self, tok_idx: usize) -> bool {
        self.flags[tok_idx] & F_ATTR != 0
    }
    pub fn in_use(&self, tok_idx: usize) -> bool {
        self.flags[tok_idx] & F_USE != 0
    }
    pub fn in_test(&self, tok_idx: usize) -> bool {
        self.class == FileClass::Exempt || self.flags[tok_idx] & F_TEST != 0
    }

    /// Token index of the code token after code position `pos`.
    pub fn next_code(&self, pos: usize) -> Option<usize> {
        self.code.get(pos + 1).copied()
    }
    pub fn next_code_n(&self, pos: usize, n: usize) -> Option<usize> {
        self.code.get(pos + n).copied()
    }
    pub fn peek_code(&self, pos: usize, ahead: usize) -> Option<TokKind> {
        self.code.get(pos + ahead).map(|&i| self.toks[i].kind)
    }
    pub fn peek_code_back(&self, pos: usize, back: usize) -> Option<TokKind> {
        pos.checked_sub(back)
            .and_then(|p| self.code.get(p))
            .map(|&i| self.toks[i].kind)
    }

    /// The `SAFETY:` comment adjacent to `line`: on the same line, or
    /// reachable by walking up through comment/attribute/blank lines.
    pub fn adjacent_safety_comment(&self, line: u32) -> Option<String> {
        let line = line as usize;
        if let Some(Some(s)) = self.safety_text.get(line) {
            return Some(s.clone());
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if let Some(Some(s)) = self.safety_text.get(l) {
                return Some(s.clone());
            }
            if !self.passable_line.get(l).copied().unwrap_or(false) {
                return None;
            }
        }
        None
    }
}

/// Builds the context for one file: lex + all pre-passes.
pub fn build_ctx<'a>(
    src: &'a str,
    file: &'a str,
    toks: &'a [Tok],
    config: &'a Config,
) -> FileCtx<'a> {
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let mut flags = vec![0u8; toks.len()];

    mark_attrs_and_tests(src, toks, &code, &mut flags);
    mark_use_ranges(src, toks, &code, &mut flags);
    let (passable_line, safety_text) = classify_lines(src, toks, &flags);

    FileCtx {
        src,
        file,
        toks,
        code,
        class: config.classify(file),
        config,
        flags,
        passable_line,
        safety_text,
    }
}

/// Marks `#[...]` / `#![...]` attribute token ranges, and — when an
/// attribute is `#[cfg(test)]` or `#[test]` — the following item's
/// extent as a test region (next brace-block or `;`).
fn mark_attrs_and_tests(src: &str, toks: &[Tok], code: &[usize], flags: &mut [u8]) {
    let mut pos = 0usize;
    while pos < code.len() {
        let t = toks[code[pos]];
        if t.kind != TokKind::Punct(b'#') {
            pos += 1;
            continue;
        }
        let mut open = pos + 1;
        if open < code.len() && toks[code[open]].kind == TokKind::Punct(b'!') {
            open += 1;
        }
        if open >= code.len() || toks[code[open]].kind != TokKind::Punct(b'[') {
            pos += 1;
            continue;
        }
        // match brackets to the attribute's close
        let mut depth = 0i32;
        let mut j = open;
        let mut is_test_attr = false;
        while j < code.len() {
            let tj = toks[code[j]];
            match tj.kind {
                TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident => {
                    let text = tj.text(src);
                    // #[test], #[cfg(test)], #[cfg(any(test, ...))]
                    if text == "test" {
                        is_test_attr = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let close = j.min(code.len().saturating_sub(1));
        for p in pos..=close {
            flags[code[p]] |= F_ATTR;
        }
        let mut after = close + 1;
        if is_test_attr {
            // skip any further attributes on the same item
            while after < code.len() && toks[code[after]].kind == TokKind::Punct(b'#') {
                let mut k = after + 1;
                if k < code.len() && toks[code[k]].kind == TokKind::Punct(b'!') {
                    k += 1;
                }
                if k < code.len() && toks[code[k]].kind == TokKind::Punct(b'[') {
                    let mut d = 0i32;
                    while k < code.len() {
                        match toks[code[k]].kind {
                            TokKind::Punct(b'[') => d += 1,
                            TokKind::Punct(b']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    for p in after..=k.min(code.len() - 1) {
                        flags[code[p]] |= F_ATTR;
                    }
                    after = k + 1;
                } else {
                    break;
                }
            }
            // item extent: first `{`-matched block, or `;` before one
            let mut k = after;
            let mut brace = 0i32;
            while k < code.len() {
                match toks[code[k]].kind {
                    TokKind::Punct(b'{') => {
                        brace += 1;
                    }
                    TokKind::Punct(b'}') => {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    }
                    TokKind::Punct(b';') if brace == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            for p in after..=k.min(code.len().saturating_sub(1)) {
                flags[code[p]] |= F_TEST;
            }
            pos = close + 1; // rules still see the item; only flags differ
            continue;
        }
        pos = close + 1;
    }
}

/// Marks `use …;` statements so imports don't trip `hash-iter`.
fn mark_use_ranges(src: &str, toks: &[Tok], code: &[usize], flags: &mut [u8]) {
    let mut pos = 0usize;
    while pos < code.len() {
        let t = toks[code[pos]];
        let starts_use = t.kind == TokKind::Ident
            && t.text(src) == "use"
            && (pos == 0
                || matches!(
                    toks[code[pos - 1]].kind,
                    TokKind::Punct(b';')
                        | TokKind::Punct(b'{')
                        | TokKind::Punct(b'}')
                        | TokKind::Punct(b']')
                ));
        if !starts_use {
            pos += 1;
            continue;
        }
        let mut j = pos;
        while j < code.len() && toks[code[j]].kind != TokKind::Punct(b';') {
            j += 1;
        }
        for p in pos..=j.min(code.len() - 1) {
            flags[code[p]] |= F_USE;
        }
        pos = j + 1;
    }
}

/// Per-line classification for SAFETY adjacency: a line is *passable*
/// if blank or made only of comments/attributes; `safety_text[l]` holds
/// the comment text when a comment containing `SAFETY:` spans line `l`.
fn classify_lines(src: &str, toks: &[Tok], flags: &[u8]) -> (Vec<bool>, Vec<Option<String>>) {
    let n_lines = src.lines().count() + 2;
    let mut passable = vec![true; n_lines];
    let mut safety: Vec<Option<String>> = vec![None; n_lines];

    // any non-comment, non-attribute token makes its line(s) impassable
    for (i, t) in toks.iter().enumerate() {
        let is_soft = matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
            || flags[i] & F_ATTR != 0;
        let span_lines = t.text(src).bytes().filter(|&b| b == b'\n').count() as u32;
        if !is_soft {
            for l in t.line..=t.line + span_lines {
                if let Some(p) = passable.get_mut(l as usize) {
                    *p = false;
                }
            }
        }
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            let text = t.text(src);
            if let Some(idx) = text.find("SAFETY:") {
                let snippet: String = text[idx + "SAFETY:".len()..]
                    .trim()
                    .lines()
                    .map(|l| {
                        l.trim()
                            .trim_start_matches("//")
                            .trim_start_matches('*')
                            .trim()
                    })
                    .collect::<Vec<_>>()
                    .join(" ");
                let snippet = if snippet.len() > 240 {
                    let mut cut = 240;
                    while !snippet.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    format!("{}…", &snippet[..cut])
                } else {
                    snippet
                };
                for l in t.line..=t.line + span_lines {
                    if let Some(s) = safety.get_mut(l as usize) {
                        *s = Some(snippet.clone());
                    }
                }
            }
        }
    }
    (passable, safety)
}

/// Lints a set of in-memory sources (path, contents). This is the pure
/// core: `lint_root` feeds it from disk, tests feed it fixtures.
pub fn lint_sources(sources: &[(String, String)], config: &Config) -> Report {
    let mut report = Report::default();
    let mut all_pairs: Vec<rules::locks::PairObs> = Vec::new();
    // (file, waivers) kept alive until after global lock-order analysis
    let mut pending_waivers: Vec<(String, Vec<Waiver>)> = Vec::new();

    for (path, src) in sources {
        report.files_scanned += 1;
        let toks = lex(src);
        let ctx = build_ctx(src, path, &toks, config);
        let mut waivers = waiver::collect_waivers(src, &toks, path, config, &mut report.findings);
        let mut raw: Vec<Finding> = Vec::new();

        // unsafe-audit runs everywhere, including exempt files
        let ua = rules::unsafe_audit::run(&ctx);
        raw.extend(ua.findings);
        report.unsafe_manifest.extend(ua.manifest);
        report.ffi_decls.extend(ua.ffi);

        if ctx.class == FileClass::Source {
            raw.extend(rules::determinism::run(&ctx));
            raw.extend(rules::panics::run(&ctx));
            let lo = rules::locks::run(&ctx);
            raw.extend(lo.findings);
            all_pairs.extend(lo.pairs);
        }

        for f in raw {
            if !waiver::try_waive(&mut waivers, f.rule, f.line) {
                report.findings.push(f);
            }
        }
        pending_waivers.push((path.clone(), waivers));
    }

    // global lock-order analysis, then waiver settlement
    for f in rules::locks::inversion_findings(&all_pairs) {
        let waived = pending_waivers
            .iter_mut()
            .find(|(p, _)| *p == f.file)
            .map(|(_, ws)| waiver::try_waive(ws, f.rule, f.line))
            .unwrap_or(false);
        if !waived {
            report.findings.push(f);
        }
    }
    for (path, ws) in pending_waivers {
        let records = waiver::finish_waivers(ws, &path, &mut report.findings);
        report.waivers.extend(records);
    }

    report.finalize();
    report
}

/// Directories never descended into. `vendor/` carries offline stand-ins
/// for crates.io dependencies — third-party shape, not project code —
/// and `fixtures/` holds the linter's own deliberately-broken inputs.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "fixtures", "node_modules"];

/// Walks `root` for `.rs` files (sorted, deterministic) and lints them.
pub fn lint_root(root: &Path, config: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(lint_sources(&files, config))
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(String, String)>,
) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            out.push((rel, src));
        }
    }
    Ok(())
}
