//! `fahana-lint` CLI.
//!
//! ```text
//! fahana-lint [ROOT] [--json] [--out PATH] [--quiet]
//! ```
//!
//! Lints every `.rs` file under ROOT (default: current directory;
//! `vendor/`, `target/`, fixtures and dot-dirs skipped), prints the
//! deterministic human render (or the JSON report with `--json`), and
//! exits 0 when clean, 1 on findings, 2 on operational failure.

use std::path::PathBuf;
use std::process::ExitCode;

use fahana_lint::{lint_root, Config};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut quiet = false;
    let mut out_path: Option<PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--out" => match argv.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("fahana-lint: --out requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: fahana-lint [ROOT] [--json] [--out PATH] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("fahana-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let report = match lint_root(&root, &Config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fahana-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let rendered = if json {
        report.render_json()
    } else {
        report.render_human()
    };
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("fahana-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if out_path.is_none() || !quiet {
        print!("{rendered}");
    }

    ExitCode::from(report.exit_code() as u8)
}
