//! Rule configuration: which paths get which severity for which rule.
//!
//! Paths are matched as `/`-normalized suffix- or substring-patterns
//! against the repo-relative path, so the config is independent of where
//! the workspace happens to be checked out.

/// How a file is classified for rule purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Production source: every rule runs at full strength.
    Source,
    /// Tests, benches, examples, fixtures: only unsafe-audit rules run
    /// (an undocumented `unsafe` is wrong anywhere), everything else is
    /// off — tests legitimately `unwrap()` and measure wall-clock time.
    Exempt,
}

/// The rule catalog. Rule IDs are what appears in findings, waivers, and
/// the JSON report.
pub const RULE_IDS: &[&str] = &[
    "unsafe-comment",
    "ffi-allowlist",
    "hash-iter",
    "wall-clock",
    "panic",
    "lock-order",
    "lock-blocking",
    "stale-waiver",
    "waiver-syntax",
];

/// Extern "C" declarations the project permits. Everything the reactor's
/// `mod sys` declares today, plus nothing else — growing this list is a
/// deliberate, reviewed act.
pub const FFI_ALLOWLIST: &[&str] = &[
    "epoll_create1",
    "epoll_ctl",
    "epoll_wait",
    "poll",
    "pipe",
    "fcntl",
    "read",
    "write",
    "close",
    "setsockopt",
];

/// Calls considered blocking for the lock-blocking rule. `wait` is
/// deliberately absent (condvar `wait` must hold the lock — that is its
/// contract), as is `join` (`Vec::join(", ")` would false-positive).
pub const BLOCKING_CALLS: &[&str] = &["recv", "read_to_end", "read_to_string", "accept", "sleep"];

/// Modules whose output is a rendered artifact (reports, snapshots,
/// catalogs, HTTP bodies): iterating a `HashMap`/`HashSet` here risks
/// nondeterministic bytes, so `hash-iter` is error-severity.
const RENDER_MODULES: &[&str] = &[
    "crates/runtime/src/report.rs",
    "crates/runtime/src/snapshot.rs",
    "crates/runtime/src/store.rs",
    "crates/runtime/src/plan.rs",
    "crates/runtime/src/shard.rs",
    "crates/runtime/src/telemetry/metrics.rs",
    "crates/runtime/src/serve/cache.rs",
    "crates/archspace/src/render.rs",
];

/// Modules allowed to read wall-clock time (`Instant::now`,
/// `SystemTime::now`): telemetry, benches, and the serve stack's timeout
/// machinery. Everywhere else, time is nondeterminism.
const TIME_ALLOWED: &[&str] = &[
    "crates/runtime/src/telemetry/",
    "crates/bench/",
    "crates/runtime/src/serve/http.rs",
    "crates/runtime/src/serve/reactor.rs",
    "crates/runtime/src/serve/server.rs",
    "crates/runtime/src/serve/obs.rs",
    "crates/runtime/src/bin/fahana_loadgen.rs",
];

/// Modules on the request path: a panic here kills a connection (or the
/// reactor), so `panic` is error-severity instead of warn.
const REQUEST_PATH: &[&str] = &["crates/runtime/src/serve/"];

/// Path fragments that mark a file as `Exempt`.
const EXEMPT_FRAGMENTS: &[&str] = &["/tests/", "/benches/", "/examples/", "/fixtures/"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warn,
}

/// Static configuration; a single instance describes this repository.
#[derive(Debug, Default)]
pub struct Config;

impl Config {
    pub fn classify(&self, rel_path: &str) -> FileClass {
        let path = normalize(rel_path);
        let prefix_exempt = EXEMPT_FRAGMENTS.iter().any(|f| path.starts_with(&f[1..])); // "tests/…" at the lint root
        if prefix_exempt || EXEMPT_FRAGMENTS.iter().any(|f| path.contains(f)) {
            FileClass::Exempt
        } else {
            FileClass::Source
        }
    }

    /// Whether `hash-iter` applies to this file at error severity.
    pub fn is_render_module(&self, rel_path: &str) -> bool {
        let path = normalize(rel_path);
        RENDER_MODULES.iter().any(|m| path.ends_with(m))
    }

    /// Whether wall-clock reads are permitted in this file.
    pub fn time_allowed(&self, rel_path: &str) -> bool {
        let path = normalize(rel_path);
        TIME_ALLOWED.iter().any(|m| {
            if m.ends_with('/') {
                path.contains(m)
            } else {
                path.ends_with(m)
            }
        })
    }

    /// Severity of the `panic` rule for this file.
    pub fn panic_severity(&self, rel_path: &str) -> Severity {
        let path = normalize(rel_path);
        if REQUEST_PATH.iter().any(|m| path.contains(m)) {
            Severity::Error
        } else {
            Severity::Warn
        }
    }

    pub fn is_known_rule(&self, rule: &str) -> bool {
        RULE_IDS.contains(&rule)
    }
}

/// Normalizes a path for matching: forward slashes, leading `./` removed.
fn normalize(path: &str) -> String {
    let mut p = path.replace('\\', "/");
    while let Some(stripped) = p.strip_prefix("./") {
        p = stripped.to_string();
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let c = Config;
        assert_eq!(c.classify("crates/runtime/src/pool.rs"), FileClass::Source);
        assert_eq!(
            c.classify("crates/runtime/tests/determinism.rs"),
            FileClass::Exempt
        );
        assert_eq!(
            c.classify("crates/lint/tests/fixtures/bad_panic.rs"),
            FileClass::Exempt
        );
    }

    #[test]
    fn scopes() {
        let c = Config;
        assert!(c.is_render_module("crates/runtime/src/report.rs"));
        assert!(!c.is_render_module("crates/runtime/src/pool.rs"));
        assert!(c.time_allowed("crates/runtime/src/telemetry/metrics.rs"));
        assert!(c.time_allowed("crates/runtime/src/serve/reactor.rs"));
        assert!(!c.time_allowed("crates/runtime/src/campaign.rs"));
        assert_eq!(
            c.panic_severity("crates/runtime/src/serve/http.rs"),
            Severity::Error
        );
        assert_eq!(
            c.panic_severity("crates/runtime/src/pool.rs"),
            Severity::Warn
        );
    }
}
