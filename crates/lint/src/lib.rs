//! `fahana-lint` — the project's in-repo invariant checker.
//!
//! The compiler cannot see the invariants this reproduction actually
//! rests on: bit-identical artifacts across sharding/caching/reactor
//! backends, fixed-order float reductions, and a hand-written `epoll`
//! FFI layer. This crate enforces them statically, with its own
//! lightweight lexer (no `syn` — the build is offline) and a small rule
//! engine:
//!
//! | rule            | what it enforces                                        |
//! |-----------------|---------------------------------------------------------|
//! | `unsafe-comment`| every `unsafe` needs an adjacent `// SAFETY:` comment   |
//! | `ffi-allowlist` | extern decls restricted to the reviewed syscall list    |
//! | `hash-iter`     | no `HashMap`/`HashSet` in artifact-rendering modules    |
//! | `wall-clock`    | no `Instant::now`/`SystemTime::now` outside telemetry   |
//! | `panic`         | no `unwrap`/`expect`/`panic!` on the request path       |
//! | `lock-order`    | no lock pair acquired in both orders anywhere in tree   |
//! | `lock-blocking` | no blocking call while holding a lock                   |
//! | `stale-waiver`  | waivers that stop matching are errors (list only shrinks)|
//! | `waiver-syntax` | waivers need a known rule and a written reason          |
//!
//! Violations are fatal unless waived inline:
//!
//! ```text
//! // fahana-lint: allow(rule-id) reason the invariant still holds
//! ```
//!
//! Library consumers (the binary, the test suite) use [`lint_sources`]
//! for in-memory fixtures and [`lint_root`] for a directory tree.

pub mod config;
pub mod engine;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod waiver;

pub use config::Config;
pub use engine::{lint_root, lint_sources};
pub use findings::Report;
