//! Inline waiver comments:
//!
//! ```text
//! // fahana-lint: allow(rule-id[, rule-id...]) mandatory reason text
//! ```
//!
//! A waiver covers findings of the named rules on its own line and on the
//! immediately following line (so it can sit above the offending
//! statement). A waiver that no finding consumes is itself an error
//! (`stale-waiver`) — the waiver set can only shrink. A waiver with no
//! reason, an empty rule list, or an unknown rule ID is a
//! `waiver-syntax` error.

use crate::config::Config;
use crate::findings::{Finding, WaiverRecord};
use crate::lexer::{Tok, TokKind};

pub const WAIVER_PREFIX: &str = "fahana-lint:";

/// A parsed waiver, pre-consumption.
#[derive(Debug)]
pub struct Waiver {
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: String,
    pub used: bool,
}

/// Extracts waivers from a file's comment tokens. Syntax problems are
/// reported as findings immediately; well-formed waivers are returned
/// for the engine to consult.
pub fn collect_waivers(
    src: &str,
    toks: &[Tok],
    file: &str,
    config: &Config,
    findings: &mut Vec<Finding>,
) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let text = t.text(src);
        // A waiver must BE the comment, not be mentioned inside one:
        // plain `//` or `/*` (doc comments `///`, `//!`, `/**`, `/*!`
        // are documentation and never waive anything), with the marker
        // as the first word.
        let body = if let Some(rest) = text.strip_prefix("//") {
            if rest.starts_with('/') || rest.starts_with('!') {
                continue;
            }
            rest
        } else if let Some(rest) = text.strip_prefix("/*") {
            if rest.starts_with('*') || rest.starts_with('!') {
                continue;
            }
            rest
        } else {
            continue;
        };
        let Some(rest) = body.trim_start().strip_prefix(WAIVER_PREFIX) else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(after_allow) = rest.strip_prefix("allow") else {
            findings.push(syntax_error(
                file,
                t.line,
                "expected `allow(<rule>[, <rule>]) <reason>` after `fahana-lint:`",
            ));
            continue;
        };
        let after_allow = after_allow.trim_start();
        let Some(open) = after_allow.strip_prefix('(') else {
            findings.push(syntax_error(file, t.line, "missing `(` after `allow`"));
            continue;
        };
        let Some(close) = open.find(')') else {
            findings.push(syntax_error(file, t.line, "unclosed rule list"));
            continue;
        };
        let rules: Vec<String> = open[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut reason = open[close + 1..].trim();
        if let Some(stripped) = reason.strip_suffix("*/") {
            reason = stripped.trim_end();
        }
        if rules.is_empty() {
            findings.push(syntax_error(file, t.line, "empty rule list in waiver"));
            continue;
        }
        if let Some(bad) = rules.iter().find(|r| !config.is_known_rule(r)) {
            findings.push(syntax_error(
                file,
                t.line,
                &format!("unknown rule `{bad}` in waiver"),
            ));
            continue;
        }
        if reason.is_empty() {
            findings.push(syntax_error(
                file,
                t.line,
                "waiver has no reason — every waiver must say why",
            ));
            continue;
        }
        out.push(Waiver {
            line: t.line,
            rules,
            reason: reason.to_string(),
            used: false,
        });
    }
    out
}

/// True (and marks the waiver used) if `rule` at `line` is covered by a
/// waiver on the same or the previous line.
pub fn try_waive(waivers: &mut [Waiver], rule: &str, line: u32) -> bool {
    for w in waivers.iter_mut() {
        if (w.line == line || w.line + 1 == line) && w.rules.iter().any(|r| r == rule) {
            w.used = true;
            return true;
        }
    }
    false
}

/// Converts leftover state into findings (`stale-waiver`) and records.
pub fn finish_waivers(
    waivers: Vec<Waiver>,
    file: &str,
    findings: &mut Vec<Finding>,
) -> Vec<WaiverRecord> {
    let mut records = Vec::new();
    for w in waivers {
        if !w.used {
            findings.push(Finding {
                rule: "stale-waiver",
                severity: crate::config::Severity::Error,
                file: file.to_string(),
                line: w.line,
                message: format!(
                    "waiver for {} no longer matches any finding — remove it",
                    w.rules.join(", ")
                ),
            });
        }
        records.push(WaiverRecord {
            file: file.to_string(),
            line: w.line,
            rules: w.rules,
            reason: w.reason,
            used: w.used,
        });
    }
    records
}

fn syntax_error(file: &str, line: u32, msg: &str) -> Finding {
    Finding {
        rule: "waiver-syntax",
        severity: crate::config::Severity::Error,
        file: file.to_string(),
        line,
        message: msg.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Waiver>, Vec<Finding>) {
        let toks = lex(src);
        let mut findings = Vec::new();
        let waivers = collect_waivers(src, &toks, "t.rs", &Config, &mut findings);
        (waivers, findings)
    }

    #[test]
    fn well_formed_waiver_parses() {
        let (ws, fs) =
            parse("// fahana-lint: allow(panic, hash-iter) startup only, cannot race\nlet x = 1;");
        assert!(fs.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rules, vec!["panic", "hash-iter"]);
        assert_eq!(ws[0].reason, "startup only, cannot race");
    }

    #[test]
    fn missing_reason_is_syntax_error() {
        let (ws, fs) = parse("// fahana-lint: allow(panic)\n");
        assert!(ws.is_empty());
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "waiver-syntax");
    }

    #[test]
    fn unknown_rule_is_syntax_error() {
        let (ws, fs) = parse("// fahana-lint: allow(no-such-rule) because\n");
        assert!(ws.is_empty());
        assert_eq!(fs[0].rule, "waiver-syntax");
        assert!(fs[0].message.contains("no-such-rule"));
    }

    #[test]
    fn waiver_inside_string_is_ignored() {
        let (ws, fs) = parse("let s = \"// fahana-lint: allow(panic) nope\";");
        assert!(ws.is_empty());
        assert!(fs.is_empty());
    }

    #[test]
    fn coverage_is_same_or_next_line() {
        let (mut ws, _) = parse("// fahana-lint: allow(panic) reason here\nlet x = 1;\nlet y = 2;");
        assert!(try_waive(&mut ws, "panic", 1));
        assert!(try_waive(&mut ws, "panic", 2));
        assert!(!try_waive(&mut ws, "panic", 3));
        assert!(!try_waive(&mut ws, "hash-iter", 2));
    }

    #[test]
    fn stale_waiver_becomes_error() {
        let (ws, _) = parse("// fahana-lint: allow(panic) obsolete\n");
        let mut findings = Vec::new();
        let records = finish_waivers(ws, "t.rs", &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "stale-waiver");
        assert!(!records[0].used);
    }

    #[test]
    fn block_comment_waiver_strips_terminator() {
        let (ws, fs) = parse("/* fahana-lint: allow(panic) block form */\nlet x = 1;");
        assert!(fs.is_empty());
        assert_eq!(ws[0].reason, "block form");
    }
}
