//! The rule catalog. Each rule consumes the engine's `FileCtx` (tokens +
//! pre-pass flags) and produces raw findings; the engine applies waivers.

pub mod determinism;
pub mod locks;
pub mod panics;
pub mod unsafe_audit;
