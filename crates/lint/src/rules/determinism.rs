//! Determinism lints.
//!
//! * `hash-iter` — `HashMap`/`HashSet` named in an artifact-rendering
//!   module. Iteration order of the std hash containers is randomized
//!   per process, so any module whose output bytes are compared across
//!   runs (reports, snapshots, catalogs, HTTP bodies) must use
//!   `BTreeMap`/`BTreeSet` or carry a waiver explaining why the
//!   container is never iterated for output.
//! * `wall-clock` — `Instant::now` / `SystemTime::now` outside the
//!   modules allowed to observe time (telemetry, benches, serve
//!   timeouts). Wall-clock reads anywhere else leak scheduling noise
//!   into artifacts.
//!
//! `use` statements are skipped for `hash-iter`: importing a type is not
//! using it, and the import line would otherwise need a second waiver.

use crate::config::Severity;
use crate::engine::FileCtx;
use crate::findings::Finding;
use crate::lexer::TokKind;

pub fn run(ctx: &FileCtx) -> Vec<Finding> {
    let mut findings = Vec::new();
    let render = ctx.config.is_render_module(ctx.file);
    let time_ok = ctx.config.time_allowed(ctx.file);

    for (pos, &i) in ctx.code.iter().enumerate() {
        let t = ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_attr(i) || ctx.in_test(i) {
            continue;
        }
        let text = t.text(ctx.src);

        if render && (text == "HashMap" || text == "HashSet") && !ctx.in_use(i) {
            findings.push(Finding {
                rule: "hash-iter",
                severity: Severity::Error,
                file: ctx.file.to_string(),
                line: t.line,
                message: format!(
                    "`{text}` in an artifact-rendering module — use BTree{suffix} or \
                     waive with the reason it is never iterated for output",
                    suffix = &text[4..]
                ),
            });
        }

        if !time_ok && (text == "Instant" || text == "SystemTime") {
            // match `Instant::now` / `SystemTime::now`
            let colons = matches!(ctx.peek_code(pos, 1), Some(TokKind::Punct(b':')))
                && matches!(ctx.peek_code(pos, 2), Some(TokKind::Punct(b':')));
            let now = ctx
                .next_code_n(pos, 3)
                .map(|n| ctx.toks[n].kind == TokKind::Ident && ctx.toks[n].text(ctx.src) == "now")
                .unwrap_or(false);
            if colons && now {
                findings.push(Finding {
                    rule: "wall-clock",
                    severity: Severity::Error,
                    file: ctx.file.to_string(),
                    line: t.line,
                    message: format!(
                        "`{text}::now` outside telemetry/bench/serve-timeout modules — \
                         wall-clock reads make artifacts scheduling-dependent"
                    ),
                });
            }
        }
    }
    findings
}
