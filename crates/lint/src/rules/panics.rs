//! Panic hygiene, tiered by module.
//!
//! `unwrap()` / `expect(` / `panic!` / `unreachable!` / `todo!` /
//! `unimplemented!` are error-severity on the request path (a panic
//! there kills a connection or the reactor thread) and warn-severity in
//! the rest of the production tree. Test regions and exempt files are
//! untouched — tests asserting with `unwrap` is idiomatic.
//!
//! Matching is exact: `.unwrap(` requires the preceding `.` so that
//! `unwrap_or`, `unwrap_or_else`, `unwrap_or_default` never match
//! (different identifier), and a local function *named* `unwrap` called
//! without a receiver does not match either.

use crate::engine::FileCtx;
use crate::findings::Finding;
use crate::lexer::TokKind;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn run(ctx: &FileCtx) -> Vec<Finding> {
    let severity = ctx.config.panic_severity(ctx.file);
    let mut findings = Vec::new();

    for (pos, &i) in ctx.code.iter().enumerate() {
        let t = ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_attr(i) || ctx.in_test(i) {
            continue;
        }
        let text = t.text(ctx.src);

        let dotted_call = |name: &str| -> bool {
            text == name
                && matches!(ctx.peek_code_back(pos, 1), Some(TokKind::Punct(b'.')))
                && matches!(ctx.peek_code(pos, 1), Some(TokKind::Punct(b'(')))
        };

        if dotted_call("unwrap") || dotted_call("expect") {
            findings.push(Finding {
                rule: "panic",
                severity,
                file: ctx.file.to_string(),
                line: t.line,
                message: format!("`.{text}()` — handle the error or waive with a reason"),
            });
            continue;
        }

        if PANIC_MACROS.contains(&text)
            && matches!(ctx.peek_code(pos, 1), Some(TokKind::Punct(b'!')))
        {
            findings.push(Finding {
                rule: "panic",
                severity,
                file: ctx.file.to_string(),
                line: t.line,
                message: format!("`{text}!` — return an error instead, or waive with a reason"),
            });
        }
    }
    findings
}
