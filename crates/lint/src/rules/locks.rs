//! Lock discipline.
//!
//! Acquisitions are `.lock()` / `.read()` / `.write()` with **empty**
//! argument lists — the empty parens distinguish `Mutex::lock` and the
//! `RwLock` pair from `io::Read::read(&mut buf)` / `io::Write::write`,
//! which always take arguments.
//!
//! For each acquisition we reconstruct the receiver path (e.g.
//! `self.shared.registrations.lock()` → `shared.registrations`) and
//! model the guard's held span:
//!
//! * plain `let`-bound guards live until the enclosing block closes or
//!   an explicit `drop(name)`;
//! * `if let` / `while let` / `match` scrutinee guards live until the
//!   conditional's block(s) close — including `else` chains — which
//!   mirrors Rust 2021 temporary-scope rules;
//! * statement temporaries live until the first `;` back at the
//!   acquisition's brace depth.
//!
//! Two findings come out of the model:
//!
//! * `lock-order` — the ordered pair (A held, B acquired) exists
//!   somewhere in the tree AND the reversed pair (B held, A acquired)
//!   exists anywhere else (same or different file): a potential
//!   inversion deadlock. Flagged at every participating site.
//! * `lock-blocking` — a blocking call (`recv`, `read_to_end`,
//!   `read_to_string`, `accept`, `sleep`) while any guard is held.
//!   Condvar `wait` is deliberately not on the list (its contract *is*
//!   to hold the lock), nor is `join` (`Vec::join(", ")` is string
//!   formatting).

use crate::config::{Severity, BLOCKING_CALLS};
use crate::engine::FileCtx;
use crate::findings::Finding;
use crate::lexer::TokKind;

/// One observation: `second` acquired while `first` was held.
#[derive(Debug, Clone)]
pub struct PairObs {
    pub first: String,
    pub second: String,
    pub file: String,
    pub line: u32,
}

pub struct LockObs {
    pub pairs: Vec<PairObs>,
    /// `lock-blocking` findings (rule `lock-order` is emitted globally
    /// by `inversion_findings` once every file has been scanned).
    pub findings: Vec<Finding>,
}

#[derive(Debug)]
enum HeldUntil {
    /// Enclosing block closes (or `drop(var)`).
    BlockEnd { var: Option<String> },
    /// Conditional scrutinee: the `{}` body (and `else` chain) closes.
    CondEnd { entered: bool },
    /// Statement temporary: next `;` at acquisition depth.
    Semi,
}

#[derive(Debug)]
struct Guard {
    name: String,
    depth: i32,
    until: HeldUntil,
}

pub fn run(ctx: &FileCtx) -> LockObs {
    let mut obs = LockObs {
        pairs: Vec::new(),
        findings: Vec::new(),
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;

    let code = &ctx.code;
    for (pos, &i) in code.iter().enumerate() {
        let t = ctx.toks[i];

        match t.kind {
            TokKind::Punct(b'{') => {
                depth += 1;
                continue;
            }
            TokKind::Punct(b'}') => {
                depth -= 1;
                // end-of-block guard expiry
                guards.retain_mut(|g| {
                    if depth < g.depth {
                        return false;
                    }
                    if depth == g.depth {
                        if let HeldUntil::CondEnd { entered } = &mut g.until {
                            if *entered {
                                // keep only if an `else` continues the chain
                                let else_next = ctx.next_code(pos).map(|n| {
                                    let nt = ctx.toks[n];
                                    nt.kind == TokKind::Ident && nt.text(ctx.src) == "else"
                                });
                                return else_next.unwrap_or(false);
                            }
                        }
                    }
                    true
                });
                continue;
            }
            TokKind::Punct(b';') => {
                guards.retain(|g| !(matches!(g.until, HeldUntil::Semi) && depth == g.depth));
                continue;
            }
            _ => {}
        }

        if t.kind != TokKind::Ident || ctx.in_attr(i) || ctx.in_test(i) {
            continue;
        }
        let text = t.text(ctx.src);

        // mark conditional guards whose body we've entered
        for g in guards.iter_mut() {
            if depth > g.depth {
                if let HeldUntil::CondEnd { entered } = &mut g.until {
                    *entered = true;
                }
            }
        }

        // explicit drop(var)
        if text == "drop" && matches!(ctx.peek_code(pos, 1), Some(TokKind::Punct(b'('))) {
            if let Some(arg) = ctx.next_code_n(pos, 2).map(|n| ctx.toks[n]) {
                if arg.kind == TokKind::Ident {
                    let arg_text = arg.text(ctx.src);
                    guards.retain(|g| {
                        !matches!(&g.until, HeldUntil::BlockEnd { var: Some(v) } if v == arg_text)
                    });
                }
            }
            continue;
        }

        // blocking call while a guard is held: `.recv(` / `::sleep(` …
        if BLOCKING_CALLS.contains(&text)
            && matches!(
                ctx.peek_code_back(pos, 1),
                Some(TokKind::Punct(b'.')) | Some(TokKind::Punct(b':'))
            )
            && matches!(ctx.peek_code(pos, 1), Some(TokKind::Punct(b'(')))
            && !guards.is_empty()
        {
            let held: Vec<&str> = guards.iter().map(|g| g.name.as_str()).collect();
            obs.findings.push(Finding {
                rule: "lock-blocking",
                severity: Severity::Error,
                file: ctx.file.to_string(),
                line: t.line,
                message: format!(
                    "blocking call `{text}` while holding lock(s) {}",
                    held.join(", ")
                ),
            });
            continue;
        }

        // acquisition: `.` lock|read|write `(` `)`
        let is_acq = matches!(text, "lock" | "read" | "write")
            && matches!(ctx.peek_code_back(pos, 1), Some(TokKind::Punct(b'.')))
            && matches!(ctx.peek_code(pos, 1), Some(TokKind::Punct(b'(')))
            && matches!(ctx.peek_code(pos, 2), Some(TokKind::Punct(b')')));
        if !is_acq {
            continue;
        }

        let name = receiver_path(ctx, pos - 1); // pos-1 is the `.`
        let stmt = statement_shape(ctx, pos);

        if let Some(name) = &name {
            for g in &guards {
                if g.name != *name {
                    obs.pairs.push(PairObs {
                        first: g.name.clone(),
                        second: name.clone(),
                        file: ctx.file.to_string(),
                        line: t.line,
                    });
                }
            }
        }

        let until = match stmt {
            StmtShape::Let { var } => HeldUntil::BlockEnd { var },
            StmtShape::Cond => HeldUntil::CondEnd { entered: false },
            StmtShape::Plain => HeldUntil::Semi,
        };
        guards.push(Guard {
            name: name.unwrap_or_else(|| format!("<anon:{}:{}>", ctx.file, t.line)),
            depth,
            until,
        });
    }

    obs
}

enum StmtShape {
    Let { var: Option<String> },
    Cond,
    Plain,
}

/// Classifies the statement an acquisition sits in by walking backward
/// (bounded) to the statement start: `let`-bound, conditional scrutinee
/// (`if let` / `while` / `match`), or a plain statement temporary.
fn statement_shape(ctx: &FileCtx, acq_pos: usize) -> StmtShape {
    let mut saw_let = false;
    let mut saw_cond = false;
    let mut last_ident_before_eq: Option<String> = None;
    let mut seen_eq = false;
    let mut j = acq_pos;
    for _ in 0..24 {
        if j == 0 {
            break;
        }
        j -= 1;
        let t = ctx.toks[ctx.code[j]];
        match t.kind {
            TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}') => break,
            TokKind::Punct(b'=') => seen_eq = true,
            TokKind::Ident => {
                let text = t.text(ctx.src);
                match text {
                    "let" => saw_let = true,
                    "if" | "while" | "match" => saw_cond = true,
                    _ if !seen_eq => {} // right of `=`: part of the expression
                    _ => {
                        if last_ident_before_eq.is_none() && text != "mut" {
                            last_ident_before_eq = Some(text.to_string());
                        }
                    }
                }
            }
            _ => {}
        }
    }
    if saw_cond {
        StmtShape::Cond
    } else if saw_let {
        StmtShape::Let {
            var: last_ident_before_eq,
        }
    } else {
        StmtShape::Plain
    }
}

/// Reconstructs the receiver path left of the `.` at code position
/// `dot_pos`, e.g. `self.shared.registrations` → `shared.registrations`.
/// Skips index groups `[…]` and call parens, treats `::` like `.`, and
/// drops a leading `self`. Returns None for non-path receivers
/// (`(expr).lock()`), which cannot meaningfully pair across sites.
fn receiver_path(ctx: &FileCtx, dot_pos: usize) -> Option<String> {
    let mut segments: Vec<String> = Vec::new();
    let mut j = dot_pos; // code position of the `.`
    loop {
        if j == 0 {
            break;
        }
        j -= 1;
        let t = ctx.toks[ctx.code[j]];
        match t.kind {
            TokKind::Ident => {
                segments.push(t.text(ctx.src).to_string());
                // continue only across `.` or `::`
                if j == 0 {
                    break;
                }
                let prev = ctx.toks[ctx.code[j - 1]];
                match prev.kind {
                    TokKind::Punct(b'.') => {
                        j -= 1; // consume the separator, loop to next segment
                    }
                    TokKind::Punct(b':') => {
                        if j >= 2 && ctx.toks[ctx.code[j - 2]].kind == TokKind::Punct(b':') {
                            j -= 2;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            TokKind::Punct(b']') => {
                let mut depth = 1i32;
                while depth > 0 && j > 0 {
                    j -= 1;
                    match ctx.toks[ctx.code[j]].kind {
                        TokKind::Punct(b']') => depth += 1,
                        TokKind::Punct(b'[') => depth -= 1,
                        _ => {}
                    }
                }
            }
            TokKind::Punct(b')') => {
                let mut depth = 1i32;
                while depth > 0 && j > 0 {
                    j -= 1;
                    match ctx.toks[ctx.code[j]].kind {
                        TokKind::Punct(b')') => depth += 1,
                        TokKind::Punct(b'(') => depth -= 1,
                        _ => {}
                    }
                }
            }
            _ => break,
        }
    }
    segments.reverse();
    if segments.first().map(String::as_str) == Some("self") {
        segments.remove(0);
    }
    if segments.is_empty() {
        None
    } else {
        Some(segments.join("."))
    }
}

/// Global inversion analysis over every pair observation in the tree.
/// Emits one `lock-order` finding per site that participates in a
/// both-orders pair, pointing at one witness of the opposite order.
pub fn inversion_findings(all_pairs: &[PairObs]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for p in all_pairs {
        if let Some(rev) = all_pairs
            .iter()
            .find(|q| q.first == p.second && q.second == p.first)
        {
            findings.push(Finding {
                rule: "lock-order",
                severity: Severity::Error,
                file: p.file.clone(),
                line: p.line,
                message: format!(
                    "lock `{}` acquired while `{}` is held, but the opposite order \
                     exists at {}:{} — potential deadlock",
                    p.second, p.first, rev.file, rev.line
                ),
            });
        }
    }
    findings
}
