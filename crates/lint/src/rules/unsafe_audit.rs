//! unsafe-audit: every `unsafe` block/fn needs an adjacent `// SAFETY:`
//! comment, and extern "C" declarations must be on the FFI allowlist.
//! Both sub-rules run in *every* file class — an undocumented `unsafe`
//! is wrong in a test too — and both feed the JSON report's audit
//! sections (`unsafe_manifest`, `ffi_decls`) even when they pass.

use crate::config::{Severity, FFI_ALLOWLIST};
use crate::engine::FileCtx;
use crate::findings::{FfiDecl, Finding, UnsafeSite};
use crate::lexer::TokKind;

pub struct UnsafeOutput {
    pub findings: Vec<Finding>,
    pub manifest: Vec<UnsafeSite>,
    pub ffi: Vec<FfiDecl>,
}

pub fn run(ctx: &FileCtx) -> UnsafeOutput {
    let mut out = UnsafeOutput {
        findings: Vec::new(),
        manifest: Vec::new(),
        ffi: Vec::new(),
    };
    audit_unsafe_sites(ctx, &mut out);
    audit_extern_blocks(ctx, &mut out);
    out
}

fn audit_unsafe_sites(ctx: &FileCtx, out: &mut UnsafeOutput) {
    for (pos, &i) in ctx.code.iter().enumerate() {
        let t = ctx.toks[i];
        if t.kind != TokKind::Ident || t.text(ctx.src) != "unsafe" || ctx.in_attr(i) {
            continue;
        }
        let kind = match ctx.next_code(pos).map(|n| ctx.toks[n]) {
            Some(n) if n.kind == TokKind::Ident => match n.text(ctx.src) {
                "fn" | "extern" => "fn",
                "impl" | "trait" => "impl/trait",
                _ => "block",
            },
            Some(n) if n.kind == TokKind::Punct(b'{') => "block",
            _ => "block",
        };
        // `unsafe impl Send/Sync` and `unsafe trait` still require a
        // SAFETY comment: they are promises about invariants.
        let safety = ctx.adjacent_safety_comment(t.line);
        if safety.is_none() {
            out.findings.push(Finding {
                rule: "unsafe-comment",
                severity: Severity::Error,
                file: ctx.file.to_string(),
                line: t.line,
                message: format!("`unsafe` {kind} without an adjacent `// SAFETY:` comment"),
            });
        }
        out.manifest.push(UnsafeSite {
            file: ctx.file.to_string(),
            line: t.line,
            kind: kind.to_string(),
            safety,
        });
    }
}

/// Walks `extern "C" { ... }` blocks and records every declared symbol,
/// checking it against the allowlist. `extern "C" fn` *definitions*
/// (with bodies) are not declarations and are skipped.
fn audit_extern_blocks(ctx: &FileCtx, out: &mut UnsafeOutput) {
    let code = &ctx.code;
    let mut pos = 0usize;
    while pos < code.len() {
        let t = ctx.toks[code[pos]];
        let is_extern = t.kind == TokKind::Ident && t.text(ctx.src) == "extern";
        if !is_extern {
            pos += 1;
            continue;
        }
        // extern [ "C" ] { ... }  — an ABI string then a brace block.
        let mut look = pos + 1;
        if look < code.len() && ctx.toks[code[look]].kind == TokKind::Str {
            look += 1;
        }
        if look >= code.len() || ctx.toks[code[look]].kind != TokKind::Punct(b'{') {
            pos += 1; // `extern "C" fn …` definition or `extern crate`
            continue;
        }
        // scan the block body for `fn NAME`
        let mut depth = 0i32;
        let mut j = look;
        while j < code.len() {
            let tj = ctx.toks[code[j]];
            match tj.kind {
                TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident if tj.text(ctx.src) == "fn" => {
                    if let Some(name_tok) = code.get(j + 1).map(|&k| ctx.toks[k]) {
                        if name_tok.kind == TokKind::Ident {
                            let name = name_tok.text(ctx.src).to_string();
                            let allowlisted = FFI_ALLOWLIST.contains(&name.as_str());
                            if !allowlisted {
                                out.findings.push(Finding {
                                    rule: "ffi-allowlist",
                                    severity: Severity::Error,
                                    file: ctx.file.to_string(),
                                    line: name_tok.line,
                                    message: format!(
                                        "extern fn `{name}` is not on the FFI allowlist \
                                         (see crates/lint/src/config.rs)"
                                    ),
                                });
                            }
                            out.ffi.push(FfiDecl {
                                file: ctx.file.to_string(),
                                line: name_tok.line,
                                name,
                                allowlisted,
                            });
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        pos = j.max(pos + 1);
    }
}
