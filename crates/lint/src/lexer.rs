//! A lightweight Rust lexer — comment-, string-, and raw-string-aware.
//!
//! The offline build has no `syn` (see `vendor/README.md`), and the lint
//! rules do not need a real parse tree: every invariant in the catalog is
//! expressible over a token stream with line numbers. What *does* matter
//! is never mistaking prose for code: `"SAFETY:"` inside a string literal
//! must not satisfy the unsafe-audit rule, `unwrap()` inside a nested
//! block comment must not trip panic-hygiene, and a raw string containing
//! `*/` must not terminate anything. The lexer therefore handles, fully:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte/C strings, and raw strings with
//!   any number of `#` guards (`r"…"`, `r#"…"#`, `br##"…"##`, `cr#"…"#`);
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped chars;
//! * identifiers, loosely-lexed numbers, and single-char punctuation.
//!
//! Everything else a real lexer distinguishes (multi-char operators,
//! keywords vs identifiers) is irrelevant to the rules and deliberately
//! not modeled.

/// What a token is. `Punct` carries the single raw byte; multi-character
/// operators arrive as consecutive `Punct` tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `HashMap`, …).
    Ident,
    /// `// …` to end of line (includes doc comments).
    LineComment,
    /// `/* … */`, possibly nested, possibly spanning lines.
    BlockComment,
    /// Any string literal: `"…"`, `b"…"`, `c"…"`, `r#"…"#`, ….
    Str,
    /// A char or byte-char literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime: `'a`, `'_`, `'static`.
    Lifetime,
    /// A number literal, loosely lexed (`0x1f`, `1_000`, `1e-3`, `2.5f32`).
    Num,
    /// One byte of punctuation.
    Punct(u8),
}

/// One token: kind plus its byte range and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    pub kind: TokKind,
    pub lo: usize,
    pub hi: usize,
    pub line: u32,
}

impl Tok {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.lo..self.hi]
    }
}

/// Lexes `src` into tokens. Never panics on malformed input: unterminated
/// literals and comments simply extend to end of file.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let byte = self.src[self.pos];
            match byte {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                byte if byte == b'_' || byte.is_ascii_alphabetic() || byte >= 0x80 => {
                    self.ident_or_prefixed_literal()
                }
                byte => {
                    self.push(TokKind::Punct(byte), self.pos, self.pos + 1, self.line);
                    self.pos += 1;
                }
            }
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, lo: usize, hi: usize, line: u32) {
        self.toks.push(Tok { kind, lo, hi, line });
    }

    fn line_comment(&mut self) {
        let lo = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokKind::LineComment, lo, self.pos, self.line);
    }

    /// Nested block comments: `/* a /* b */ c */` is one token.
    fn block_comment(&mut self) {
        let lo = self.pos;
        let start_line = self.line;
        let mut depth = 0usize;
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.pos += 1;
            }
        }
        self.push(TokKind::BlockComment, lo, self.pos, start_line);
    }

    /// A plain (escaped) string literal starting at the current `"`.
    /// `lo` is where the token began (before any `b`/`c` prefix).
    fn string(&mut self, lo: usize) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2, // skip the escaped byte, whatever it is
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Str, lo, self.pos.min(self.src.len()), start_line);
    }

    /// A raw string starting at the current `#`-or-quote run. `lo` is the
    /// token start (at the `r`/`br`/`cr` prefix).
    fn raw_string(&mut self, lo: usize) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.src[self.pos] == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.src.get(self.pos + 1 + matched) == Some(&b'#') {
                    matched += 1;
                }
                if matched == hashes {
                    self.pos += 1 + hashes;
                    break;
                }
            }
            self.pos += 1;
        }
        self.push(TokKind::Str, lo, self.pos.min(self.src.len()), start_line);
    }

    /// `'a'` vs `'a` vs `'\n'`: a quote followed by an escape is always a
    /// char; a quote followed by an identifier char is a char only when
    /// the very next byte closes it, otherwise a lifetime.
    fn char_or_lifetime(&mut self) {
        let lo = self.pos;
        match self.peek(1) {
            Some(b'\\') => {
                // escaped char literal: skip to the closing quote
                self.pos += 2; // quote + backslash
                self.pos += 1; // the escaped byte
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.pos += 1; // covers \u{…} and \x7f forms
                }
                self.pos = (self.pos + 1).min(self.src.len());
                self.push(TokKind::Char, lo, self.pos, self.line);
            }
            Some(byte) if byte == b'_' || byte.is_ascii_alphanumeric() => {
                if self.peek(2) == Some(b'\'') {
                    self.pos += 3;
                    self.push(TokKind::Char, lo, self.pos, self.line);
                } else {
                    self.pos += 1;
                    while self
                        .peek(0)
                        .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
                    {
                        self.pos += 1;
                    }
                    self.push(TokKind::Lifetime, lo, self.pos, self.line);
                }
            }
            Some(_) => {
                // a non-identifier char literal: ' ', '(', multibyte, …
                self.pos += 1;
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    if self.src[self.pos] == b'\n' {
                        break; // a stray quote, not a literal; don't run away
                    }
                    self.pos += 1;
                }
                self.pos = (self.pos + 1).min(self.src.len());
                self.push(TokKind::Char, lo, self.pos, self.line);
            }
            None => {
                self.push(TokKind::Punct(b'\''), lo, lo + 1, self.line);
                self.pos += 1;
            }
        }
    }

    fn number(&mut self) {
        let lo = self.pos;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x') | Some(b'o') | Some(b'b'))
        {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
            self.push(TokKind::Num, lo, self.pos, self.line);
            return;
        }
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_digit() || b == b'_')
        {
            self.pos += 1;
        }
        // fractional part — but never swallow a `..` range operator
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_digit() || b == b'_')
            {
                self.pos += 1;
            }
        }
        // exponent and/or type suffix (1e-3, 2.5f32, 10usize)
        if matches!(self.peek(0), Some(b'e') | Some(b'E'))
            && self
                .peek(1)
                .is_some_and(|b| b.is_ascii_digit() || b == b'+' || b == b'-')
        {
            self.pos += 2;
        }
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        self.push(TokKind::Num, lo, self.pos, self.line);
    }

    /// An identifier — unless it is one of the literal prefixes (`r`, `b`,
    /// `c`, `br`, `cr`, `rb` is not real Rust) directly attached to a
    /// quote or raw-string guard, in which case the whole literal is one
    /// token.
    fn ident_or_prefixed_literal(&mut self) {
        let lo = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
        {
            self.pos += 1;
        }
        let text = &self.src[lo..self.pos];
        let raw_capable = matches!(text, b"r" | b"br" | b"cr");
        let plain_capable = matches!(text, b"b" | b"c");
        match self.peek(0) {
            Some(b'"') if raw_capable || plain_capable => {
                if raw_capable {
                    self.raw_string(lo);
                } else {
                    self.string(lo);
                }
            }
            Some(b'#') if raw_capable => self.raw_string(lo),
            Some(b'\'') if text == b"b" => {
                // byte-char literal b'x' / b'\n'
                self.char_or_lifetime();
                if let Some(last) = self.toks.last_mut() {
                    last.lo = lo;
                }
            }
            _ => self.push(TokKind::Ident, lo, self.pos, self.line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"let x = "unsafe // not a comment"; // SAFETY: real comment"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unsafe")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::LineComment && t.contains("SAFETY:")));
        // "unsafe" never appears as an identifier
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
    }

    #[test]
    fn raw_strings_with_guards_are_one_token() {
        let src = r####"let s = r#"contains "quotes" and */ and // slashes"#; let y = 1;"####;
        let toks = kinds(src);
        let strings: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strings.len(), 1);
        assert!(strings[0].1.contains("*/"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "y"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still outer */ fn after() {}";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.ends_with("outer */"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "fn"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\n'; }";
        let toks = kinds(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let toks = lex(src);
        let b_tok = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.text(src) == "b")
            .unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "10"));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| matches!(k, TokKind::Punct(b'.')))
                .count(),
            2
        );
    }
}
