//! Findings, the aggregate report, and its two deterministic renders
//! (human text and JSON). The JSON emitter is hand-rolled — the linter is
//! std-only by design and its output schema is small and fixed.

use crate::config::Severity;

/// One rule violation at a location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// One `// fahana-lint: allow(...)` comment, after parsing.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    pub file: String,
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: String,
    pub used: bool,
}

/// One `unsafe` site, documented or not — the audit trail the JSON
/// report carries regardless of pass/fail.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    /// "block", "fn", or "impl/trait" — how the `unsafe` keyword is used.
    pub kind: String,
    /// The SAFETY comment text, if one was found adjacent.
    pub safety: Option<String>,
}

/// One `extern` FFI declaration found in the workspace.
#[derive(Debug, Clone)]
pub struct FfiDecl {
    pub file: String,
    pub line: u32,
    pub name: String,
    pub allowlisted: bool,
}

/// Everything one run produced.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub waivers: Vec<WaiverRecord>,
    pub unsafe_manifest: Vec<UnsafeSite>,
    pub ffi_decls: Vec<FfiDecl>,
}

impl Report {
    /// Sorts every section into its canonical order. Call once, after
    /// all files are processed; both renders assume it.
    pub fn finalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.waivers
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.unsafe_manifest
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.ffi_decls
            .sort_by(|a, b| (&a.file, a.line, &a.name).cmp(&(&b.file, b.line, &b.name)));
    }

    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warning_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    pub fn waived_count(&self) -> usize {
        self.waivers.iter().filter(|w| w.used).count()
    }

    /// Process exit code: 0 clean (warnings allowed), 1 errors, callers
    /// use 2 for operational failures (unreadable tree etc.).
    pub fn exit_code(&self) -> i32 {
        if self.error_count() > 0 {
            1
        } else {
            0
        }
    }

    /// The deterministic human render.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let sev = match f.severity {
                Severity::Error => "error",
                Severity::Warn => "warn",
            };
            out.push_str(&format!(
                "{sev}[{rule}] {file}:{line}: {msg}\n",
                rule = f.rule,
                file = f.file,
                line = f.line,
                msg = f.message
            ));
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "fahana-lint: {files} files, {errors} errors, {warnings} warnings, {waived} waived\n",
            files = self.files_scanned,
            errors = self.error_count(),
            warnings = self.warning_count(),
            waived = self.waived_count(),
        ));
        out
    }

    /// The deterministic JSON render (`fahana-lint/v1` schema).
    pub fn render_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.open_obj();
        j.str_field("schema", "fahana-lint/v1");
        j.num_field("files_scanned", self.files_scanned as u64);

        j.key("summary");
        j.open_obj();
        j.num_field("errors", self.error_count() as u64);
        j.num_field("warnings", self.warning_count() as u64);
        j.num_field("waived", self.waived_count() as u64);
        j.close_obj();

        j.key("findings");
        j.open_arr();
        for f in &self.findings {
            j.open_obj();
            j.str_field("rule", f.rule);
            j.str_field(
                "severity",
                match f.severity {
                    Severity::Error => "error",
                    Severity::Warn => "warn",
                },
            );
            j.str_field("file", &f.file);
            j.num_field("line", f.line as u64);
            j.str_field("message", &f.message);
            j.close_obj();
        }
        j.close_arr();

        j.key("waivers");
        j.open_arr();
        for w in &self.waivers {
            j.open_obj();
            j.str_field("file", &w.file);
            j.num_field("line", w.line as u64);
            j.key("rules");
            j.open_arr();
            for r in &w.rules {
                j.arr_str(r);
            }
            j.close_arr();
            j.str_field("reason", &w.reason);
            j.bool_field("used", w.used);
            j.close_obj();
        }
        j.close_arr();

        j.key("unsafe_manifest");
        j.open_arr();
        for u in &self.unsafe_manifest {
            j.open_obj();
            j.str_field("file", &u.file);
            j.num_field("line", u.line as u64);
            j.str_field("kind", &u.kind);
            match &u.safety {
                Some(s) => j.str_field("safety", s),
                None => j.null_field("safety"),
            }
            j.close_obj();
        }
        j.close_arr();

        j.key("ffi_decls");
        j.open_arr();
        for d in &self.ffi_decls {
            j.open_obj();
            j.str_field("file", &d.file);
            j.num_field("line", d.line as u64);
            j.str_field("name", &d.name);
            j.bool_field("allowlisted", d.allowlisted);
            j.close_obj();
        }
        j.close_arr();

        j.close_obj();
        j.finish()
    }
}

/// Minimal JSON writer: tracks whether a comma is needed at each nesting
/// level; escapes strings per RFC 8259.
struct JsonBuf {
    out: String,
    need_comma: Vec<bool>,
}

impl JsonBuf {
    fn new() -> Self {
        JsonBuf {
            out: String::new(),
            need_comma: vec![false],
        }
    }

    fn comma(&mut self) {
        if let Some(top) = self.need_comma.last_mut() {
            if *top {
                self.out.push(',');
            }
            *top = true;
        }
    }

    fn open_obj(&mut self) {
        self.comma();
        self.out.push('{');
        self.need_comma.push(false);
    }

    fn close_obj(&mut self) {
        self.out.push('}');
        self.need_comma.pop();
    }

    fn open_arr(&mut self) {
        self.comma();
        self.out.push('[');
        self.need_comma.push(false);
    }

    fn close_arr(&mut self) {
        self.out.push(']');
        self.need_comma.pop();
    }

    fn key(&mut self, k: &str) {
        self.comma();
        self.push_escaped(k);
        self.out.push(':');
        // the value that follows must not emit its own comma
        if let Some(top) = self.need_comma.last_mut() {
            *top = false;
        }
    }

    fn str_field(&mut self, k: &str, v: &str) {
        self.key(k);
        self.comma(); // consumes the reset, emits nothing
        self.push_escaped(v);
    }

    fn num_field(&mut self, k: &str, v: u64) {
        self.key(k);
        self.comma();
        self.out.push_str(&v.to_string());
    }

    fn bool_field(&mut self, k: &str, v: bool) {
        self.key(k);
        self.comma();
        self.out.push_str(if v { "true" } else { "false" });
    }

    fn null_field(&mut self, k: &str) {
        self.key(k);
        self.comma();
        self.out.push_str("null");
    }

    fn arr_str(&mut self, v: &str) {
        self.comma();
        self.push_escaped(v);
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = Report {
            files_scanned: 2,
            ..Default::default()
        };
        r.findings.push(Finding {
            rule: "panic",
            severity: Severity::Error,
            file: "b.rs".into(),
            line: 3,
            message: "said \"no\"\nand left".into(),
        });
        r.findings.push(Finding {
            rule: "hash-iter",
            severity: Severity::Warn,
            file: "a.rs".into(),
            line: 9,
            message: "x".into(),
        });
        r.finalize();
        let json = r.render_json();
        assert!(json.starts_with("{\"schema\":\"fahana-lint/v1\""));
        assert!(json.contains("\\\"no\\\"\\nand left"));
        // sorted: a.rs before b.rs
        let a_pos = json.find("a.rs").unwrap();
        let b_pos = json.find("b.rs").unwrap();
        assert!(a_pos < b_pos);
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\"warnings\":1"));
    }

    #[test]
    fn exit_code_follows_errors_not_warnings() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "panic",
            severity: Severity::Warn,
            file: "a.rs".into(),
            line: 1,
            message: "m".into(),
        });
        assert_eq!(r.exit_code(), 0);
        r.findings.push(Finding {
            rule: "panic",
            severity: Severity::Error,
            file: "a.rs".into(),
            line: 2,
            message: "m".into(),
        });
        assert_eq!(r.exit_code(), 1);
    }
}
