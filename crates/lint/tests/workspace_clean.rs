//! Tier-1 gate: `fahana-lint` must exit clean over the real workspace.
//! This is the same invocation CI runs; if it fails here, the tree has
//! an unwaived invariant violation.

use std::path::PathBuf;
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let output = Command::new(env!("CARGO_BIN_EXE_fahana-lint"))
        .arg(&root)
        .arg("--json")
        .output()
        .expect("fahana-lint binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "fahana-lint found errors in the workspace:\n{stdout}"
    );
    assert!(stdout.starts_with("{\"schema\":\"fahana-lint/v1\""));
    assert!(
        stdout.contains("\"errors\":0"),
        "summary should report zero errors:\n{stdout}"
    );
    // every waiver in the tree is consumed (stale ones are errors) and
    // carries a reason (reasonless ones are waiver-syntax errors) — both
    // already enforced by exit status; spot-check the report shape too.
    assert!(
        !stdout.contains("\"used\":false"),
        "report carries a stale waiver:\n{stdout}"
    );
}

#[test]
fn human_render_is_deterministic_across_runs() {
    let root = workspace_root();
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_fahana-lint"))
            .arg(&root)
            .output()
            .expect("fahana-lint binary runs");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
    assert!(first.contains("fahana-lint:"), "summary line present");
}
