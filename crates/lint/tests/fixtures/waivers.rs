// Waiver mechanics: a consumed waiver, a stale one, and two syntax errors.

pub fn waived(input: Option<u32>) -> u32 {
    // fahana-lint: allow(panic) input is validated by the caller contract
    input.unwrap()
}

// fahana-lint: allow(panic) nothing below panics anymore — this is stale
pub fn clean() -> u32 {
    7
}

// fahana-lint: allow(panic)
pub fn missing_reason(input: Option<u32>) -> u32 {
    input.unwrap_or(0)
}

// fahana-lint: allow(not-a-rule) the rule id is unknown
pub fn unknown_rule() -> u32 {
    9
}
