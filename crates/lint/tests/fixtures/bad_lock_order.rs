// Known-bad: the same two mutexes acquired in both orders — the A→B /
// B→A inversion the lock-order rule must fire on.

use std::sync::Mutex;

pub struct Shared {
    pub alpha: Mutex<Vec<u32>>,
    pub beta: Mutex<Vec<u32>>,
}

impl Shared {
    pub fn forward(&self) -> usize {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        a.len() + b.len()
    }

    pub fn backward(&self) -> usize {
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        a.len() + b.len()
    }
}
