// Known-bad determinism: hash containers in a render module and a
// wall-clock read outside the allowed set. The `use` line must NOT be
// flagged — only real occurrences.

use std::collections::HashMap;
use std::time::Instant;

pub fn render(entries: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    for (k, v) in entries {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

pub fn stamp() -> std::time::Instant {
    Instant::now()
}
