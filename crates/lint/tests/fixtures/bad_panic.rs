// Known-bad panic hygiene — plus shapes that must NOT match.

pub fn bad(input: Option<u32>) -> u32 {
    let a = input.unwrap();
    let b = input.expect("present");
    if a + b > 100 {
        panic!("overflow");
    }
    match a {
        0 => unreachable!(),
        n => n,
    }
}

pub fn fine(input: Option<u32>) -> u32 {
    // unwrap_or / unwrap_or_else / unwrap_or_default are different
    // identifiers and must not match
    input.unwrap_or(0) + input.unwrap_or_else(|| 1) + input.unwrap_or_default()
}

pub fn comments_and_strings_do_not_count() -> &'static str {
    // a comment saying foo.unwrap() is not a call
    "panic!(\"in a string\") and x.unwrap() too"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_idiomatic() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
