// Known-bad: a blocking channel receive while a mutex guard is held.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub fn drain(state: &Mutex<Vec<u32>>, rx: &Receiver<u32>) {
    let mut guard = state.lock().unwrap_or_else(|e| e.into_inner());
    while let Ok(v) = rx.recv() {
        guard.push(v);
    }
}

pub fn fine(state: &Mutex<Vec<u32>>, rx: &Receiver<u32>) {
    // guard dropped before blocking: no finding
    {
        let mut guard = state.lock().unwrap_or_else(|e| e.into_inner());
        guard.push(0);
    }
    let _ = rx.recv();
}
