// Known-bad: undocumented unsafe, and "SAFETY:" text that must NOT
// satisfy the rule because it lives in strings, not comments.

pub fn raw_part(slice: &[u8]) -> u8 {
    let msg = "SAFETY: this string is prose, not a comment";
    let _ = msg;
    unsafe { *slice.as_ptr() }
}

pub fn raw_string_decoy(slice: &[u8]) -> u8 {
    let doc = r#"
       // SAFETY: inside a raw string, still prose
    "#;
    let _ = doc;
    unsafe { *slice.as_ptr() }
}

pub unsafe fn undocumented_fn(ptr: *const u8) -> u8 {
    *ptr
}
