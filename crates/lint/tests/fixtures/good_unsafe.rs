// Known-good: every unsafe site carries an adjacent SAFETY comment in
// one of the accepted shapes.

pub fn same_line(slice: &[u8]) -> u8 {
    unsafe { *slice.as_ptr() } // SAFETY: caller guarantees non-empty slice
}

pub fn line_above(slice: &[u8]) -> u8 {
    // SAFETY: slice is non-empty by contract, so the pointer is valid
    unsafe { *slice.as_ptr() }
}

pub fn through_blank_and_attr(slice: &[u8]) -> u8 {
    // SAFETY: reachable through a blank line and an attribute

    #[allow(clippy::let_and_return)]
    let v = unsafe { *slice.as_ptr() };
    v
}

/* SAFETY: block comments count too, even /* nested */ ones */
pub unsafe fn documented_fn(ptr: *const u8) -> u8 {
    *ptr
}

pub fn decoy_then_real(slice: &[u8]) -> u8 {
    let decoy = "unsafe { not code }";
    let _ = decoy;
    // SAFETY: the string above is data; this deref is bounds-guaranteed
    unsafe { *slice.as_ptr() }
}
