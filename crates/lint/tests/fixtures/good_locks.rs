// Known-good lock usage: consistent ordering, statement temporaries,
// explicit drop before re-acquisition, condvar wait (whose contract IS
// holding the lock), and io::Read::read (args — not a lock).

use std::io::Read;
use std::sync::{Condvar, Mutex};

pub struct Queues {
    pub first: Mutex<Vec<u32>>,
    pub second: Mutex<Vec<u32>>,
    pub cv: Condvar,
}

impl Queues {
    pub fn consistent_a(&self) -> usize {
        let f = self.first.lock().unwrap_or_else(|e| e.into_inner());
        let s = self.second.lock().unwrap_or_else(|e| e.into_inner());
        f.len() + s.len()
    }

    pub fn consistent_b(&self) -> usize {
        let f = self.first.lock().unwrap_or_else(|e| e.into_inner());
        let s = self.second.lock().unwrap_or_else(|e| e.into_inner());
        f.len().max(s.len())
    }

    pub fn drop_between(&self) -> usize {
        let f = self.first.lock().unwrap_or_else(|e| e.into_inner());
        let n = f.len();
        drop(f);
        let s = self.second.lock().unwrap_or_else(|e| e.into_inner());
        n + s.len()
    }

    pub fn condvar_wait(&self) {
        let guard = self.first.lock().unwrap_or_else(|e| e.into_inner());
        let _unused = self.cv.wait(guard);
    }
}

pub fn io_read_is_not_a_lock(stream: &mut impl Read) -> Vec<u8> {
    let mut buf = vec![0u8; 16];
    let _ = stream.read(&mut buf);
    buf
}
