// Known-bad: an extern decl that is not on the FFI allowlist.

extern "C" {
    // SAFETY: decl only; callers carry their own obligations
    pub fn gettimeofday(tv: *mut u8, tz: *mut u8) -> i32;
    // SAFETY: decl only
    pub fn poll(fds: *mut u8, nfds: u64, timeout: i32) -> i32;
}
