//! Fixture-driven rule tests: every rule has a known-bad fixture that
//! must fail with the expected rule IDs and a known-good fixture that
//! must pass. Fixture sources live in `tests/fixtures/` (a directory the
//! workspace walk deliberately skips) and are fed through
//! [`fahana_lint::lint_sources`] under synthetic paths, so one fixture
//! can be exercised in different severity tiers.

use fahana_lint::config::Severity;
use fahana_lint::{lint_sources, Config, Report};

fn lint_one(path: &str, src: &str) -> Report {
    lint_sources(&[(path.to_string(), src.to_string())], &Config)
}

fn rules_of(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn undocumented_unsafe_fails_with_unsafe_comment() {
    let report = lint_one(
        "crates/runtime/src/mystery.rs",
        include_str!("fixtures/bad_unsafe.rs"),
    );
    let rules = rules_of(&report);
    assert_eq!(rules.len(), 3, "findings: {:?}", report.findings);
    assert!(rules.iter().all(|r| *r == "unsafe-comment"));
    // all three land in the manifest, none with a SAFETY text
    assert_eq!(report.unsafe_manifest.len(), 3);
    assert!(report.unsafe_manifest.iter().all(|u| u.safety.is_none()));
    // one of them is the `unsafe fn`
    assert!(report.unsafe_manifest.iter().any(|u| u.kind == "fn"));
}

#[test]
fn documented_unsafe_passes_and_fills_the_manifest() {
    let report = lint_one(
        "crates/runtime/src/mystery.rs",
        include_str!("fixtures/good_unsafe.rs"),
    );
    assert!(
        report.findings.is_empty(),
        "unexpected findings: {:?}",
        report.findings
    );
    assert_eq!(report.unsafe_manifest.len(), 5);
    assert!(report.unsafe_manifest.iter().all(|u| u.safety.is_some()));
}

#[test]
fn ffi_allowlist_flags_unknown_decls_only() {
    let report = lint_one(
        "crates/runtime/src/serve/reactor.rs",
        include_str!("fixtures/bad_ffi.rs"),
    );
    let rules = rules_of(&report);
    assert_eq!(
        rules,
        vec!["ffi-allowlist"],
        "findings: {:?}",
        report.findings
    );
    assert!(report.findings[0].message.contains("gettimeofday"));
    assert_eq!(report.ffi_decls.len(), 2);
    let poll = report.ffi_decls.iter().find(|d| d.name == "poll").unwrap();
    assert!(poll.allowlisted);
    let gtod = report
        .ffi_decls
        .iter()
        .find(|d| d.name == "gettimeofday")
        .unwrap();
    assert!(!gtod.allowlisted);
}

#[test]
fn panic_hygiene_is_error_on_request_path_and_warn_elsewhere() {
    let src = include_str!("fixtures/bad_panic.rs");

    let on_request_path = lint_one("crates/runtime/src/serve/http.rs", src);
    let errors: Vec<_> = on_request_path
        .findings
        .iter()
        .filter(|f| f.rule == "panic")
        .collect();
    assert_eq!(errors.len(), 4, "findings: {:?}", on_request_path.findings);
    assert!(errors.iter().all(|f| f.severity == Severity::Error));
    assert_eq!(on_request_path.exit_code(), 1);

    let elsewhere = lint_one("crates/core/src/controller.rs", src);
    let warns: Vec<_> = elsewhere
        .findings
        .iter()
        .filter(|f| f.rule == "panic")
        .collect();
    assert_eq!(warns.len(), 4);
    assert!(warns.iter().all(|f| f.severity == Severity::Warn));
    assert_eq!(elsewhere.exit_code(), 0, "warnings alone must not gate");
}

#[test]
fn unwrap_or_variants_and_test_modules_do_not_match() {
    let report = lint_one(
        "crates/runtime/src/serve/http.rs",
        include_str!("fixtures/bad_panic.rs"),
    );
    // 4 findings from `bad()` only: nothing from `fine()` (unwrap_or
    // family), nothing from the string/comment decoys, nothing from the
    // #[cfg(test)] module's unwrap.
    assert_eq!(report.findings.len(), 4, "findings: {:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.line <= 12));
}

#[test]
fn determinism_rules_flag_render_modules_and_wall_clock() {
    let src = include_str!("fixtures/bad_determinism.rs");

    let in_render_module = lint_one("crates/runtime/src/report.rs", src);
    let rules = rules_of(&in_render_module);
    assert_eq!(
        rules,
        vec!["hash-iter", "wall-clock"],
        "findings: {:?}",
        in_render_module.findings
    );
    // the `use std::collections::HashMap;` import line is not flagged
    let hash = &in_render_module.findings[0];
    assert!(hash.line > 6, "import line was flagged: {hash:?}");

    // outside a render module the HashMap is fine; the clock still isn't
    let elsewhere = lint_one("crates/runtime/src/pool.rs", src);
    assert_eq!(rules_of(&elsewhere), vec!["wall-clock"]);

    // in a telemetry module the clock is fine too
    let telemetry = lint_one("crates/runtime/src/telemetry/clock.rs", src);
    assert!(telemetry.findings.is_empty());
}

#[test]
fn lock_order_fires_on_a_b_b_a_inversion() {
    let report = lint_one(
        "crates/runtime/src/state.rs",
        include_str!("fixtures/bad_lock_order.rs"),
    );
    let inversions: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .collect();
    assert!(
        inversions.len() >= 2,
        "both sites of the inversion should be flagged: {:?}",
        report.findings
    );
    assert!(inversions
        .iter()
        .all(|f| f.message.contains("alpha") && f.message.contains("beta")));
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn lock_order_sees_inversions_across_files() {
    let forward = r#"
use std::sync::Mutex;
pub fn f(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap_or_else(|e| e.into_inner());
    let gb = b.lock().unwrap_or_else(|e| e.into_inner());
    *ga + *gb
}
"#;
    let backward = r#"
use std::sync::Mutex;
pub fn g(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let gb = b.lock().unwrap_or_else(|e| e.into_inner());
    let ga = a.lock().unwrap_or_else(|e| e.into_inner());
    *ga + *gb
}
"#;
    let report = lint_sources(
        &[
            ("crates/x/src/fwd.rs".to_string(), forward.to_string()),
            ("crates/x/src/bwd.rs".to_string(), backward.to_string()),
        ],
        &Config,
    );
    let files: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .map(|f| f.file.as_str())
        .collect();
    assert!(
        files.contains(&"crates/x/src/fwd.rs"),
        "{:?}",
        report.findings
    );
    assert!(
        files.contains(&"crates/x/src/bwd.rs"),
        "{:?}",
        report.findings
    );
}

#[test]
fn blocking_call_under_lock_is_flagged_scoped_release_is_not() {
    let report = lint_one(
        "crates/runtime/src/state.rs",
        include_str!("fixtures/bad_lock_blocking.rs"),
    );
    let rules = rules_of(&report);
    assert_eq!(
        rules,
        vec!["lock-blocking"],
        "findings: {:?}",
        report.findings
    );
    assert!(report.findings[0].message.contains("recv"));
}

#[test]
fn clean_lock_usage_passes() {
    let report = lint_one(
        "crates/runtime/src/state.rs",
        include_str!("fixtures/good_locks.rs"),
    );
    assert!(
        report.findings.is_empty(),
        "unexpected findings: {:?}",
        report.findings
    );
}

#[test]
fn waiver_lifecycle_consumed_stale_and_malformed() {
    let report = lint_one(
        "crates/core/src/waived.rs",
        include_str!("fixtures/waivers.rs"),
    );
    let rules = rules_of(&report);
    // the consumed waiver suppresses its `panic` warn; the stale one and
    // the two malformed ones surface as errors
    assert!(!rules.contains(&"panic"), "findings: {:?}", report.findings);
    assert_eq!(rules.iter().filter(|r| **r == "stale-waiver").count(), 1);
    assert_eq!(rules.iter().filter(|r| **r == "waiver-syntax").count(), 2);
    let used = report.waivers.iter().filter(|w| w.used).count();
    assert_eq!(used, 1);
    assert_eq!(report.waived_count(), 1);
}

#[test]
fn reports_render_deterministically() {
    let sources = vec![
        (
            "crates/runtime/src/serve/http.rs".to_string(),
            include_str!("fixtures/bad_panic.rs").to_string(),
        ),
        (
            "crates/runtime/src/report.rs".to_string(),
            include_str!("fixtures/bad_determinism.rs").to_string(),
        ),
    ];
    let a = lint_sources(&sources, &Config);
    let b = lint_sources(&sources, &Config);
    assert_eq!(a.render_human(), b.render_human());
    assert_eq!(a.render_json(), b.render_json());
    // JSON carries the schema marker and the summary block
    assert!(a
        .render_json()
        .starts_with("{\"schema\":\"fahana-lint/v1\""));
    assert!(a.render_json().contains("\"summary\""));
}
