//! Parameter-free activation layers.

use ftensor::{Scratch, Tensor};

use crate::layer::Layer;
use crate::{NeuralError, Result};

macro_rules! activation_layer {
    ($(#[$doc:meta])* $name:ident, $label:literal, $fwd:expr, $grad:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            input_cache: Option<Tensor>,
        }

        impl $name {
            /// Creates the activation layer.
            pub fn new() -> Self {
                Self { input_cache: None }
            }
        }

        impl Layer for $name {
            fn name(&self) -> &'static str {
                $label
            }

            fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
                self.input_cache = Some(input.clone());
                let fwd: fn(f32) -> f32 = $fwd;
                Ok(input.map(fwd))
            }

            fn forward_scratch(
                &mut self,
                input: &Tensor,
                train: bool,
                scratch: &mut Scratch,
            ) -> Result<Tensor> {
                let fwd: fn(f32) -> f32 = $fwd;
                let mut out = scratch.take_tensor(input.dims());
                input.map_into(out.as_mut_slice(), fwd)?;
                if train {
                    self.input_cache = Some(input.clone());
                }
                Ok(out)
            }

            fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
                let input = self.input_cache.as_ref().ok_or_else(|| {
                    NeuralError::MissingForwardCache {
                        layer: $label.into(),
                    }
                })?;
                let grad_fn: fn(f32) -> f32 = $grad;
                let local = input.map(grad_fn);
                Ok(grad_output.mul(&local)?)
            }
        }
    };
}

activation_layer!(
    /// Rectified linear unit: `max(0, x)`.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), neural::NeuralError> {
    /// use ftensor::Tensor;
    /// use neural::{Layer, Relu};
    /// let mut relu = Relu::new();
    /// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2])?, false)?;
    /// assert_eq!(y.as_slice(), &[0.0, 2.0]);
    /// # Ok(())
    /// # }
    /// ```
    Relu,
    "relu",
    |v| v.max(0.0),
    |v| if v > 0.0 { 1.0 } else { 0.0 }
);

activation_layer!(
    /// ReLU6 activation used inside MobileNetV2-style inverted bottlenecks.
    Relu6,
    "relu6",
    |v| v.clamp(0.0, 6.0),
    |v| if v > 0.0 && v < 6.0 { 1.0 } else { 0.0 }
);

activation_layer!(
    /// Logistic sigmoid activation (used by the LSTM controller gates).
    Sigmoid,
    "sigmoid",
    |v| 1.0 / (1.0 + (-v).exp()),
    |v| {
        let s = 1.0 / (1.0 + (-v).exp());
        s * (1.0 - s)
    }
);

activation_layer!(
    /// Hyperbolic tangent activation.
    Tanh,
    "tanh",
    |v| v.tanh(),
    |v| 1.0 - v.tanh() * v.tanh()
);

#[cfg(test)]
mod tests {
    use super::*;
    use ftensor::{Initializer, SeededRng};

    fn finite_difference<L: Layer>(layer: &mut L, input: &Tensor) {
        let eps = 1e-3f32;
        let out = layer.forward(input, true).unwrap();
        let grad_in = layer.backward(&Tensor::ones(out.dims())).unwrap();
        for idx in 0..input.len() {
            let x = input.as_slice()[idx];
            // skip points near the kinks of piecewise-linear activations
            if x.abs() < 0.05 || (x - 6.0).abs() < 0.05 {
                continue;
            }
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (layer.forward(&plus, true).unwrap().sum()
                - layer.forward(&minus, true).unwrap().sum())
                / (2.0 * eps);
            assert!(
                (numeric - grad_in.as_slice()[idx]).abs() < 1e-2,
                "gradient mismatch at {idx}: numeric={numeric} analytic={}",
                grad_in.as_slice()[idx]
            );
        }
    }

    #[test]
    fn relu_gradient_matches() {
        let mut rng = SeededRng::new(0);
        let x = Initializer::XavierUniform
            .create(&mut rng, &[2, 6], 6, 6)
            .scale(3.0);
        finite_difference(&mut Relu::new(), &x);
    }

    #[test]
    fn relu6_gradient_matches() {
        let mut rng = SeededRng::new(1);
        let x = Initializer::XavierUniform
            .create(&mut rng, &[2, 6], 6, 6)
            .scale(8.0);
        finite_difference(&mut Relu6::new(), &x);
    }

    #[test]
    fn sigmoid_gradient_matches() {
        let mut rng = SeededRng::new(2);
        let x = Initializer::XavierUniform
            .create(&mut rng, &[2, 6], 6, 6)
            .scale(2.0);
        finite_difference(&mut Sigmoid::new(), &x);
    }

    #[test]
    fn tanh_gradient_matches() {
        let mut rng = SeededRng::new(3);
        let x = Initializer::XavierUniform
            .create(&mut rng, &[2, 6], 6, 6)
            .scale(2.0);
        finite_difference(&mut Tanh::new(), &x);
    }

    #[test]
    fn activations_have_no_parameters() {
        assert_eq!(Relu::new().param_count(), 0);
        assert_eq!(Relu6::new().param_count(), 0);
        assert_eq!(Sigmoid::new().param_count(), 0);
        assert_eq!(Tanh::new().param_count(), 0);
    }

    #[test]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::ones(&[1, 1])).is_err());
    }

    #[test]
    fn relu6_saturates_above_six() {
        let mut layer = Relu6::new();
        let x = Tensor::from_vec(vec![-2.0, 3.0, 9.0], &[1, 3]).unwrap();
        let y = layer.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 3.0, 6.0]);
        let g = layer.backward(&Tensor::ones(&[1, 3])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0]);
    }
}
