//! Losses and classification metrics.

use ftensor::Tensor;

use crate::{NeuralError, Result};

/// Output of a loss computation: the scalar loss plus the gradient with
/// respect to the logits, ready to feed into `Layer::backward`.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits.
    pub grad: Tensor,
}

/// Softmax cross-entropy over a batch of logits.
///
/// `logits` has shape `(batch, classes)`; `labels` holds one class index per
/// batch row. The returned gradient is `(softmax(logits) − one_hot) / batch`,
/// i.e. already averaged, so callers can pass it straight to `backward`.
///
/// # Errors
///
/// Returns [`NeuralError::LabelMismatch`] if the label count differs from the
/// batch size or any label is out of range.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), neural::NeuralError> {
/// use ftensor::Tensor;
/// use neural::softmax_cross_entropy;
///
/// let logits = Tensor::from_vec(vec![5.0, 0.0, 0.0, 5.0], &[2, 2])?;
/// let out = softmax_cross_entropy(&logits, &[0, 1])?;
/// assert!(out.loss < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    let (batch, classes) = logits.shape().as_matrix()?;
    if labels.len() != batch {
        return Err(NeuralError::LabelMismatch {
            predictions: batch,
            labels: labels.len(),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(NeuralError::LabelMismatch {
            predictions: classes,
            labels: bad,
        });
    }
    let probs = logits.softmax()?;
    let p = probs.as_slice();
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let g = grad.as_mut_slice();
    for (row, &label) in labels.iter().enumerate() {
        let prob = p[row * classes + label].max(1e-12);
        loss -= prob.ln();
        g[row * classes + label] -= 1.0;
    }
    let scale = 1.0 / batch.max(1) as f32;
    Ok(LossOutput {
        loss: loss * scale,
        grad: grad.scale(scale),
    })
}

/// Fraction of rows whose argmax matches the label.
///
/// # Errors
///
/// Returns [`NeuralError::LabelMismatch`] if the label count differs from the
/// batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let (batch, _) = logits.shape().as_matrix()?;
    if labels.len() != batch {
        return Err(NeuralError::LabelMismatch {
            predictions: batch,
            labels: labels.len(),
        });
    }
    if batch == 0 {
        return Ok(0.0);
    }
    let flat = logits.reshape(&[batch, logits.len() / batch])?;
    let predictions = flat.argmax_rows()?;
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    Ok(correct as f32 / batch as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0], &[1, 3]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(out.loss < 0.01);
    }

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor::zeros(&[1, 4]);
        let out = softmax_cross_entropy(&logits, &[2]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_points_away_from_wrong_class() {
        let logits = Tensor::zeros(&[1, 2]);
        let out = softmax_cross_entropy(&logits, &[0]).unwrap();
        // gradient for the true class is negative, the other positive
        assert!(out.grad.as_slice()[0] < 0.0);
        assert!(out.grad.as_slice()[1] > 0.0);
        // gradients sum to ~0 per row
        assert!(out.grad.sum().abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.0, -0.5], &[2, 3]).unwrap();
        let labels = [2usize, 0usize];
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut plus = logits.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[idx] -= eps;
            let lp = softmax_cross_entropy(&plus, &labels).unwrap().loss;
            let lm = softmax_cross_entropy(&minus, &labels).unwrap().loss;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - out.grad.as_slice()[idx]).abs() < 1e-3,
                "gradient mismatch at {idx}"
            );
        }
    }

    #[test]
    fn rejects_label_count_mismatch_and_out_of_range() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.2, 0.8], &[3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 0]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_rejects_mismatched_labels() {
        let logits = Tensor::zeros(&[2, 2]);
        assert!(accuracy(&logits, &[0]).is_err());
    }
}
