//! Fully connected (linear) layer.

use ftensor::{kernels, Initializer, Scratch, SeededRng, Tensor};

use crate::layer::{Layer, ParamSet, TrainableFlag};
use crate::{NeuralError, Result};

/// A fully connected layer computing `y = x·W + b` over a batch.
///
/// Input shape is `(batch, in_features)`; output is `(batch, out_features)`.
/// The classifier head of every child network, the embeddings of the NAS
/// controller and the proxy networks of the trained evaluator are all built
/// from `Dense`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), neural::NeuralError> {
/// use ftensor::{SeededRng, Tensor};
/// use neural::{Dense, Layer};
///
/// let mut rng = SeededRng::new(1);
/// let mut layer = Dense::new(3, 2, &mut rng);
/// let y = layer.forward(&Tensor::ones(&[4, 3]), false)?;
/// assert_eq!(y.dims(), &[4, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    in_features: usize,
    out_features: usize,
    input_cache: Option<Tensor>,
    trainable: TrainableFlag,
}

impl Dense {
    /// Creates a new layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeededRng) -> Self {
        let weight = Initializer::XavierUniform.create(
            rng,
            &[in_features, out_features],
            in_features,
            out_features,
        );
        Dense {
            weight,
            bias: Tensor::zeros(&[out_features]),
            weight_grad: Tensor::zeros(&[in_features, out_features]),
            bias_grad: Tensor::zeros(&[out_features]),
            in_features,
            out_features,
            input_cache: None,
            trainable: TrainableFlag::new(),
        }
    }

    /// Creates a layer from explicit weight and bias tensors.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidConfig`] if the shapes are inconsistent.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Result<Self> {
        let (in_features, out_features) = match weight.dims() {
            [i, o] => (*i, *o),
            _ => {
                return Err(NeuralError::InvalidConfig(
                    "dense weight must be rank-2".into(),
                ))
            }
        };
        if bias.len() != out_features {
            return Err(NeuralError::InvalidConfig(format!(
                "bias length {} does not match out_features {}",
                bias.len(),
                out_features
            )));
        }
        Ok(Dense {
            weight_grad: Tensor::zeros(&[in_features, out_features]),
            bias_grad: Tensor::zeros(&[out_features]),
            weight,
            bias,
            in_features,
            out_features,
            input_cache: None,
            trainable: TrainableFlag::new(),
        })
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Read-only access to the weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Read-only access to the bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let (_, cols) = input.shape().as_matrix()?;
        if cols != self.in_features {
            return Err(NeuralError::BadInputShape {
                layer: "dense".into(),
                expected: format!("(batch, {})", self.in_features),
                actual: input.dims().to_vec(),
            });
        }
        let flat = input.reshape(&[input.len() / self.in_features, self.in_features])?;
        let out = flat.matmul(&self.weight)?.add_row_broadcast(&self.bias)?;
        self.input_cache = Some(flat);
        Ok(out)
    }

    fn forward_scratch(
        &mut self,
        input: &Tensor,
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let (_, cols) = input.shape().as_matrix()?;
        if cols != self.in_features {
            return Err(NeuralError::BadInputShape {
                layer: "dense".into(),
                expected: format!("(batch, {})", self.in_features),
                actual: input.dims().to_vec(),
            });
        }
        let rows = input.len() / self.in_features;
        let mut out = scratch.take_tensor(&[rows, self.out_features]);
        kernels::matmul_into(
            input.as_slice(),
            self.weight.as_slice(),
            out.as_mut_slice(),
            rows,
            self.in_features,
            self.out_features,
        );
        Tensor::add_row_broadcast_in_place(
            out.as_mut_slice(),
            &self.bias,
            rows,
            self.out_features,
        )?;
        if train {
            self.input_cache = Some(input.reshape(&[rows, self.in_features])?);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .input_cache
            .as_ref()
            .ok_or_else(|| NeuralError::MissingForwardCache {
                layer: "dense".into(),
            })?;
        // dW = xᵀ · dY, db = column-sum(dY), dX = dY · Wᵀ
        let grad_w = input.transpose()?.matmul(grad_output)?;
        self.weight_grad.add_assign(&grad_w)?;
        let grad_b = grad_output.sum_axis(0)?;
        self.bias_grad.add_assign(&grad_b)?;
        let grad_input = grad_output.matmul(&self.weight.transpose()?)?;
        Ok(grad_input)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamSet<'_>)) {
        if self.trainable.enabled() {
            visitor(ParamSet {
                name: "weight",
                value: &mut self.weight,
                grad: &mut self.weight_grad,
            });
            visitor(ParamSet {
                name: "bias",
                value: &mut self.bias,
                grad: &mut self.bias_grad,
            });
        }
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn set_trainable(&mut self, trainable: bool) {
        self.trainable.set(trainable);
    }

    fn is_trainable(&self) -> bool {
        self.trainable.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_difference_check(layer: &mut Dense, input: &Tensor) {
        // loss = sum(forward(x)); analytic gradient vs central differences.
        let eps = 1e-2f32;
        let out = layer.forward(input, true).unwrap();
        let grad_out = Tensor::ones(out.dims());
        layer.zero_grad();
        let grad_in = layer.backward(&grad_out).unwrap();

        // check dL/dx for a few elements
        for idx in [0usize, input.len() / 2, input.len() - 1] {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let f_plus = layer.forward(&plus, true).unwrap().sum();
            let f_minus = layer.forward(&minus, true).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grad_in.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "input grad mismatch at {idx}: numeric={numeric} analytic={analytic}"
            );
        }

        // check dL/dW for a few elements
        layer.zero_grad();
        layer.forward(input, true).unwrap();
        layer.backward(&grad_out).unwrap();
        let analytic_w = layer.weight_grad.clone();
        for idx in [0usize, analytic_w.len() - 1] {
            let original = layer.weight.as_slice()[idx];
            layer.weight.as_mut_slice()[idx] = original + eps;
            let f_plus = layer.forward(input, true).unwrap().sum();
            layer.weight.as_mut_slice()[idx] = original - eps;
            let f_minus = layer.forward(input, true).unwrap().sum();
            layer.weight.as_mut_slice()[idx] = original;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic_w.as_slice()[idx]).abs() < 1e-2,
                "weight grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn forward_shape_and_bias() {
        let weight = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let bias = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let mut layer = Dense::from_parts(weight, bias).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = layer.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[4.5, 4.5]);
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut rng = SeededRng::new(0);
        let mut layer = Dense::new(4, 2, &mut rng);
        assert!(layer.forward(&Tensor::ones(&[2, 3]), false).is_err());
    }

    #[test]
    fn from_parts_validates_shapes() {
        assert!(Dense::from_parts(Tensor::zeros(&[3]), Tensor::zeros(&[3])).is_err());
        assert!(Dense::from_parts(Tensor::zeros(&[3, 2]), Tensor::zeros(&[3])).is_err());
        assert!(Dense::from_parts(Tensor::zeros(&[3, 2]), Tensor::zeros(&[2])).is_ok());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeededRng::new(42);
        let mut layer = Dense::new(5, 3, &mut rng);
        let input = Initializer::XavierUniform.create(&mut rng, &[4, 5], 5, 3);
        finite_difference_check(&mut layer, &input);
    }

    #[test]
    fn param_count_matches_dimensions() {
        let mut rng = SeededRng::new(1);
        let layer = Dense::new(10, 7, &mut rng);
        assert_eq!(layer.param_count(), 10 * 7 + 7);
    }

    #[test]
    fn freezing_hides_params_from_visitor() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::new(4, 4, &mut rng);
        assert_eq!(layer.trainable_param_count(), 20);
        layer.set_trainable(false);
        assert_eq!(layer.trainable_param_count(), 0);
        assert!(!layer.is_trainable());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::new(4, 4, &mut rng);
        assert!(layer.backward(&Tensor::ones(&[1, 4])).is_err());
    }

    #[test]
    fn gradient_accumulates_until_zeroed() {
        let mut rng = SeededRng::new(2);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        layer.forward(&x, true).unwrap();
        layer.backward(&Tensor::ones(&[1, 2])).unwrap();
        let first = layer.bias_grad.clone();
        layer.forward(&x, true).unwrap();
        layer.backward(&Tensor::ones(&[1, 2])).unwrap();
        assert_eq!(layer.bias_grad.as_slice()[0], first.as_slice()[0] * 2.0);
        layer.zero_grad();
        assert_eq!(layer.bias_grad.sum(), 0.0);
    }
}
