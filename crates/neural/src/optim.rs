//! Gradient-descent optimizers.

use ftensor::Tensor;

use crate::layer::Layer;

/// An optimizer updates the trainable parameters of a [`Layer`] tree using
/// the gradients accumulated by the most recent backward pass.
///
/// The per-parameter state (momentum, Adam moments) is keyed by visit order,
/// which is stable for a fixed network structure. Freezing layers mid-run is
/// supported: the optimizer re-associates state lazily by parameter size.
pub trait Optimizer {
    /// Applies one update step to every trainable parameter of `layer` and
    /// clears the gradients.
    fn step(&mut self, layer: &mut dyn Layer);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and optional weight
/// decay — the paper trains all competitor networks with SGD-style schedules
/// (learning rate 0.1 decayed by 0.9 every 20 steps).
#[derive(Debug)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(learning_rate: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            learning_rate,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Multiplies the learning rate by `factor` (learning-rate decay).
    pub fn decay(&mut self, factor: f32) {
        self.learning_rate *= factor;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, layer: &mut dyn Layer) {
        let mut index = 0usize;
        let lr = self.learning_rate;
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let velocity = &mut self.velocity;
        layer.visit_params(&mut |param| {
            if velocity.len() <= index {
                velocity.push(Tensor::zeros(param.value.dims()));
            }
            if velocity[index].dims() != param.value.dims() {
                velocity[index] = Tensor::zeros(param.value.dims());
            }
            let vel = velocity[index].as_mut_slice();
            let values = param.value.as_mut_slice();
            let grads = param.grad.as_mut_slice();
            for ((v, w), g) in vel.iter_mut().zip(values.iter_mut()).zip(grads.iter()) {
                let grad = g + weight_decay * *w;
                *v = momentum * *v + grad;
                *w -= lr * *v;
            }
            index += 1;
        });
        layer.zero_grad();
    }

    fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.learning_rate = lr;
    }
}

/// Adam optimizer, used for the RNN controller updates where per-parameter
/// adaptive steps make REINFORCE markedly more stable.
#[derive(Debug)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step_count: u64,
    first_moment: Vec<Tensor>,
    second_moment: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the usual `(0.9, 0.999)` betas.
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step_count: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, layer: &mut dyn Layer) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let lr = self.learning_rate;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
        let bias1 = 1.0 - b1.powf(t);
        let bias2 = 1.0 - b2.powf(t);
        let mut index = 0usize;
        let m = &mut self.first_moment;
        let v = &mut self.second_moment;
        layer.visit_params(&mut |param| {
            if m.len() <= index {
                m.push(Tensor::zeros(param.value.dims()));
                v.push(Tensor::zeros(param.value.dims()));
            }
            if m[index].dims() != param.value.dims() {
                m[index] = Tensor::zeros(param.value.dims());
                v[index] = Tensor::zeros(param.value.dims());
            }
            let ms = m[index].as_mut_slice();
            let vs = v[index].as_mut_slice();
            let values = param.value.as_mut_slice();
            let grads = param.grad.as_slice();
            for i in 0..values.len() {
                let g = grads[i];
                ms[i] = b1 * ms[i] + (1.0 - b1) * g;
                vs[i] = b2 * vs[i] + (1.0 - b2) * g * g;
                let m_hat = ms[i] / bias1;
                let v_hat = vs[i] / bias2;
                values[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            index += 1;
        });
        layer.zero_grad();
    }

    fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.learning_rate = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use crate::loss::softmax_cross_entropy;
    use crate::sequential::Sequential;
    use ftensor::{SeededRng, Tensor};

    fn toy_problem() -> (Tensor, Vec<usize>) {
        // four linearly separable points in 2-D
        let x =
            Tensor::from_vec(vec![1.0, 1.0, 1.0, 0.8, -1.0, -1.0, -0.8, -1.0], &[4, 2]).unwrap();
        (x, vec![0, 0, 1, 1])
    }

    fn train_with<O: Optimizer>(mut opt: O, epochs: usize) -> f32 {
        let mut rng = SeededRng::new(0);
        let mut net = Sequential::new();
        net.push(Box::new(Dense::new(2, 8, &mut rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Dense::new(8, 2, &mut rng)));
        let (x, labels) = toy_problem();
        let mut final_loss = f32::MAX;
        for _ in 0..epochs {
            let logits = net.forward(&x, true).unwrap();
            let out = softmax_cross_entropy(&logits, &labels).unwrap();
            net.backward(&out.grad).unwrap();
            opt.step(&mut net);
            final_loss = out.loss;
        }
        final_loss
    }

    #[test]
    fn sgd_reduces_loss_on_toy_problem() {
        let loss = train_with(Sgd::new(0.5, 0.9, 0.0), 60);
        assert!(loss < 0.1, "SGD final loss {loss}");
    }

    #[test]
    fn adam_reduces_loss_on_toy_problem() {
        let loss = train_with(Adam::new(0.05), 60);
        assert!(loss < 0.1, "Adam final loss {loss}");
    }

    #[test]
    fn sgd_skips_frozen_layers() {
        let mut rng = SeededRng::new(1);
        let mut net = Sequential::new();
        net.push(Box::new(Dense::new(2, 2, &mut rng)));
        net.push(Box::new(Dense::new(2, 2, &mut rng)));
        net.freeze_prefix(1);
        let snapshot: Vec<f32> = {
            let mut values = Vec::new();
            net.visit_params(&mut |p| values.extend_from_slice(p.value.as_slice()));
            values
        };
        // one training step
        let (x, labels) = toy_problem();
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let logits = net.forward(&x, true).unwrap();
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        net.backward(&out.grad).unwrap();
        opt.step(&mut net);
        // trainable params changed, and count matches only the unfrozen layer
        let mut after = Vec::new();
        net.visit_params(&mut |p| after.extend_from_slice(p.value.as_slice()));
        assert_eq!(after.len(), snapshot.len());
        assert_ne!(after, snapshot);
        assert_eq!(net.trainable_param_count(), 2 * 2 + 2);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let weight = Tensor::ones(&[2, 2]);
        let bias = Tensor::zeros(&[2]);
        let mut layer = Dense::from_parts(weight, bias).unwrap();
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        // no forward/backward: gradients are zero, only decay applies
        opt.step(&mut layer);
        assert!(layer.weight().as_slice().iter().all(|&w| w < 1.0));
    }

    #[test]
    fn learning_rate_accessors() {
        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        sgd.decay(0.9);
        assert!((sgd.learning_rate() - 0.09).abs() < 1e-6);
        sgd.set_learning_rate(0.5);
        assert_eq!(sgd.learning_rate(), 0.5);
        let mut adam = Adam::new(0.01);
        adam.set_learning_rate(0.002);
        assert_eq!(adam.learning_rate(), 0.002);
    }
}
