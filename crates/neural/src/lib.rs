//! `neural` — the neural-network substrate of the FaHaNa reproduction.
//!
//! The paper trains convolutional child networks (MobileNetV2/ResNet-style
//! blocks) on a dermatology dataset and drives the search with an LSTM
//! controller updated by REINFORCE. This crate provides everything those two
//! code paths need, implemented from scratch on top of [`ftensor`]:
//!
//! * trainable layers with manual backpropagation — [`Dense`], [`Conv2d`],
//!   [`DepthwiseConv2d`], [`ChannelNorm`], activations, pooling;
//! * containers — [`Sequential`] and residual wrappers — with parameter
//!   freezing (the producer's freezing method needs to mark header layers as
//!   non-trainable);
//! * the [`LstmCell`] used by the NAS controller, with full
//!   backpropagation-through-time support;
//! * losses ([`softmax_cross_entropy`]) and optimizers ([`Sgd`], [`Adam`]);
//! * a small supervised [`Trainer`] used by the trained evaluator.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), neural::NeuralError> {
//! use ftensor::{SeededRng, Tensor};
//! use neural::{Dense, Layer, Relu, Sequential};
//!
//! let mut rng = SeededRng::new(0);
//! let mut net = Sequential::new();
//! net.push(Box::new(Dense::new(4, 8, &mut rng)));
//! net.push(Box::new(Relu::new()));
//! net.push(Box::new(Dense::new(8, 2, &mut rng)));
//!
//! let x = Tensor::zeros(&[3, 4]);
//! let y = net.forward(&x, false)?;
//! assert_eq!(y.dims(), &[3, 2]);
//! # Ok(())
//! # }
//! ```

pub mod activation;
pub mod conv;
pub mod dense;
pub mod error;
pub mod layer;
pub mod loss;
pub mod lstm;
pub mod norm;
pub mod optim;
pub mod pool;
pub mod sequential;
pub mod train;

pub use activation::{Relu, Relu6, Sigmoid, Tanh};
pub use conv::{Conv2d, DepthwiseConv2d};
pub use dense::Dense;
pub use error::NeuralError;
pub use layer::{Layer, ParamSet};
pub use loss::{accuracy, softmax_cross_entropy, LossOutput};
pub use lstm::{LstmCell, LstmState};
pub use norm::ChannelNorm;
pub use optim::{Adam, Optimizer, Sgd};
pub use pool::{Flatten, GlobalAvgPool};
pub use sequential::{Residual, Sequential};
pub use train::{TrainConfig, TrainReport, Trainer};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NeuralError>;
