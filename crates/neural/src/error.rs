//! Error type for the neural substrate.

use std::error::Error;
use std::fmt;

use ftensor::TensorError;

/// Error returned by layer, loss, optimizer and training operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NeuralError {
    /// A tensor-level operation failed (shape mismatch, bad index, …).
    Tensor(TensorError),
    /// A layer received an input whose shape it cannot consume.
    BadInputShape {
        /// Name of the layer reporting the problem.
        layer: String,
        /// Human-readable description of what was expected.
        expected: String,
        /// The shape that was actually supplied.
        actual: Vec<usize>,
    },
    /// `backward` was called before `forward` populated the layer cache.
    MissingForwardCache {
        /// Name of the layer reporting the problem.
        layer: String,
    },
    /// A configuration value was invalid (zero dimension, bad kernel, …).
    InvalidConfig(String),
    /// Labels and predictions disagree in length, or a label is out of range.
    LabelMismatch {
        /// Number of predictions.
        predictions: usize,
        /// Number of labels.
        labels: usize,
    },
}

impl fmt::Display for NeuralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuralError::Tensor(e) => write!(f, "tensor error: {e}"),
            NeuralError::BadInputShape {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer} expected input {expected}, got shape {actual:?}"
            ),
            NeuralError::MissingForwardCache { layer } => {
                write!(f, "layer {layer} backward called before forward")
            }
            NeuralError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NeuralError::LabelMismatch {
                predictions,
                labels,
            } => write!(
                f,
                "prediction count {predictions} does not match label count {labels}"
            ),
        }
    }
}

impl Error for NeuralError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NeuralError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NeuralError {
    fn from(err: TensorError) -> Self {
        NeuralError::Tensor(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_error_converts() {
        let t = TensorError::InvalidArgument("x".into());
        let n: NeuralError = t.clone().into();
        assert_eq!(n, NeuralError::Tensor(t));
    }

    #[test]
    fn display_mentions_layer_name() {
        let e = NeuralError::MissingForwardCache {
            layer: "dense".into(),
        };
        assert!(e.to_string().contains("dense"));
    }

    #[test]
    fn source_exposes_tensor_error() {
        let e = NeuralError::Tensor(TensorError::InvalidArgument("y".into()));
        assert!(e.source().is_some());
        let e2 = NeuralError::InvalidConfig("z".into());
        assert!(e2.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeuralError>();
    }
}
