//! Channel normalisation (a BatchNorm-style layer without running statistics
//! momentum schedules, sufficient for the small proxy networks used here).

use ftensor::{Scratch, Tensor};

use crate::layer::{Layer, ParamSet, TrainableFlag};
use crate::{NeuralError, Result};

/// Per-channel affine normalisation for NCHW tensors.
///
/// At training time activations are normalised with the per-channel batch
/// mean/variance and running statistics are updated; at inference the running
/// statistics are used. The learnable per-channel `gamma`/`beta` mirror
/// BatchNorm's affine parameters, which is what the block parameter counting
/// in [`archspace`](https://docs.rs/archspace) assumes.
#[derive(Debug)]
pub struct ChannelNorm {
    gamma: Tensor,
    beta: Tensor,
    gamma_grad: Tensor,
    beta_grad: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    channels: usize,
    cache: Option<NormCache>,
    trainable: TrainableFlag,
}

#[derive(Debug)]
struct NormCache {
    normalised: Tensor,
    std_per_channel: Vec<f32>,
    input_dims: Vec<usize>,
}

impl ChannelNorm {
    /// Creates a normalisation layer over `channels` feature channels.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidConfig`] if `channels` is zero.
    pub fn new(channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(NeuralError::InvalidConfig(
                "channel norm requires at least one channel".into(),
            ));
        }
        Ok(ChannelNorm {
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            gamma_grad: Tensor::zeros(&[channels]),
            beta_grad: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
            trainable: TrainableFlag::new(),
        })
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize)> {
        match input.dims() {
            [n, c, h, w] if *c == self.channels => Ok((*n, h * w)),
            [n, c] if *c == self.channels => Ok((*n, 1)),
            dims => Err(NeuralError::BadInputShape {
                layer: "channel_norm".into(),
                expected: format!(
                    "(batch, {}, h, w) or (batch, {})",
                    self.channels, self.channels
                ),
                actual: dims.to_vec(),
            }),
        }
    }
}

impl Layer for ChannelNorm {
    fn name(&self) -> &'static str {
        "channel_norm"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let (n, spatial) = self.check_input(input)?;
        let c = self.channels;
        let x = input.as_slice();
        let mut out = vec![0.0f32; x.len()];
        let mut normalised = vec![0.0f32; x.len()];
        let mut stds = vec![0.0f32; c];
        for ch in 0..c {
            // gather statistics over the batch and spatial dims of channel ch
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                let mut count = 0usize;
                for b in 0..n {
                    for s in 0..spatial {
                        sum += x[(b * c + ch) * spatial + s] as f64;
                        count += 1;
                    }
                }
                let mean = (sum / count.max(1) as f64) as f32;
                let mut var_sum = 0.0f64;
                for b in 0..n {
                    for s in 0..spatial {
                        let d = x[(b * c + ch) * spatial + s] - mean;
                        var_sum += (d * d) as f64;
                    }
                }
                let var = (var_sum / count.max(1) as f64) as f32;
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let std = (var + self.eps).sqrt();
            stds[ch] = std;
            let g = self.gamma.as_slice()[ch];
            let be = self.beta.as_slice()[ch];
            for b in 0..n {
                for s in 0..spatial {
                    let idx = (b * c + ch) * spatial + s;
                    let xn = (x[idx] - mean) / std;
                    normalised[idx] = xn;
                    out[idx] = g * xn + be;
                }
            }
        }
        self.cache = Some(NormCache {
            normalised: Tensor::from_vec(normalised, input.dims())?,
            std_per_channel: stds,
            input_dims: input.dims().to_vec(),
        });
        Ok(Tensor::from_vec(out, input.dims())?)
    }

    fn forward_scratch(
        &mut self,
        input: &Tensor,
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        if train {
            // Training needs the backward cache and updates running
            // statistics — keep the allocating path.
            return self.forward(input, true);
        }
        let (n, spatial) = self.check_input(input)?;
        let c = self.channels;
        let x = input.as_slice();
        let mut buf = scratch.take_uninit(x.len());
        for ch in 0..c {
            let mean = self.running_mean[ch];
            let std = (self.running_var[ch] + self.eps).sqrt();
            let g = self.gamma.as_slice()[ch];
            let be = self.beta.as_slice()[ch];
            for b in 0..n {
                for s in 0..spatial {
                    let idx = (b * c + ch) * spatial + s;
                    buf[idx] = g * ((x[idx] - mean) / std) + be;
                }
            }
        }
        Ok(Tensor::from_vec(buf, input.dims())?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| NeuralError::MissingForwardCache {
                layer: "channel_norm".into(),
            })?;
        if grad_output.dims() != cache.input_dims.as_slice() {
            return Err(NeuralError::BadInputShape {
                layer: "channel_norm-backward".into(),
                expected: format!("{:?}", cache.input_dims),
                actual: grad_output.dims().to_vec(),
            });
        }
        let (n, spatial) = self.check_input(grad_output)?;
        let c = self.channels;
        let go = grad_output.as_slice();
        let xn = cache.normalised.as_slice();
        let mut grad_input = vec![0.0f32; go.len()];
        for ch in 0..c {
            let g = self.gamma.as_slice()[ch];
            let std = cache.std_per_channel[ch];
            let mut dgamma = 0.0f32;
            let mut dbeta = 0.0f32;
            for b in 0..n {
                for s in 0..spatial {
                    let idx = (b * c + ch) * spatial + s;
                    dgamma += go[idx] * xn[idx];
                    dbeta += go[idx];
                    // simplified gradient treating batch statistics as constants;
                    // adequate for the small proxy networks trained here.
                    grad_input[idx] = go[idx] * g / std;
                }
            }
            self.gamma_grad.as_mut_slice()[ch] += dgamma;
            self.beta_grad.as_mut_slice()[ch] += dbeta;
        }
        Ok(Tensor::from_vec(grad_input, &cache.input_dims)?)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamSet<'_>)) {
        if self.trainable.enabled() {
            visitor(ParamSet {
                name: "gamma",
                value: &mut self.gamma,
                grad: &mut self.gamma_grad,
            });
            visitor(ParamSet {
                name: "beta",
                value: &mut self.beta,
                grad: &mut self.beta_grad,
            });
        }
    }

    fn param_count(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }

    fn set_trainable(&mut self, trainable: bool) {
        self.trainable.set(trainable);
    }

    fn is_trainable(&self) -> bool {
        self.trainable.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftensor::SeededRng;

    #[test]
    fn rejects_zero_channels() {
        assert!(ChannelNorm::new(0).is_err());
    }

    #[test]
    fn training_forward_normalises_each_channel() {
        let mut norm = ChannelNorm::new(2).unwrap();
        let mut rng = SeededRng::new(0);
        let data: Vec<f32> = (0..2 * 2 * 4 * 4).map(|_| rng.normal(5.0, 3.0)).collect();
        let x = Tensor::from_vec(data, &[2, 2, 4, 4]).unwrap();
        let y = norm.forward(&x, true).unwrap();
        // each channel of the output should be ~zero-mean, ~unit-variance
        for ch in 0..2 {
            let mut vals = Vec::new();
            for b in 0..2 {
                for s in 0..16 {
                    vals.push(y.as_slice()[(b * 2 + ch) * 16 + s]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn inference_uses_running_statistics() {
        let mut norm = ChannelNorm::new(1).unwrap();
        let x = Tensor::from_vec(vec![10.0, 12.0, 8.0, 10.0], &[1, 1, 2, 2]).unwrap();
        // run several training passes so the running stats move toward the data
        for _ in 0..50 {
            norm.forward(&x, true).unwrap();
        }
        let y = norm.forward(&x, false).unwrap();
        // with running stats close to the batch stats, output mean ≈ 0
        assert!(y.mean().abs() < 0.5);
    }

    #[test]
    fn backward_scales_by_gamma_over_std() {
        let mut norm = ChannelNorm::new(1).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        norm.forward(&x, true).unwrap();
        let g = norm.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert!(g.is_finite());
        assert!(norm.beta_grad.as_slice()[0] == 4.0);
    }

    #[test]
    fn accepts_rank2_feature_input() {
        let mut norm = ChannelNorm::new(3).unwrap();
        let x = Tensor::ones(&[4, 3]);
        let y = norm.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[4, 3]);
    }

    #[test]
    fn param_count_is_two_per_channel() {
        let norm = ChannelNorm::new(8).unwrap();
        assert_eq!(norm.param_count(), 16);
    }

    #[test]
    fn freezing_hides_params() {
        let mut norm = ChannelNorm::new(4).unwrap();
        norm.set_trainable(false);
        assert_eq!(norm.trainable_param_count(), 0);
    }

    #[test]
    fn backward_requires_forward() {
        let mut norm = ChannelNorm::new(1).unwrap();
        assert!(norm.backward(&Tensor::ones(&[1, 1, 1, 1])).is_err());
    }
}
