//! LSTM cell with backpropagation through time, used by the NAS controller.

use ftensor::{Initializer, SeededRng, Tensor};

use crate::layer::{Layer, ParamSet, TrainableFlag};
use crate::{NeuralError, Result};

/// Hidden and cell state carried between LSTM steps.
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Hidden state, shape `(batch, hidden)`.
    pub h: Tensor,
    /// Cell state, shape `(batch, hidden)`.
    pub c: Tensor,
}

impl LstmState {
    /// A zero state for the given batch size and hidden width.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        LstmState {
            h: Tensor::zeros(&[batch, hidden]),
            c: Tensor::zeros(&[batch, hidden]),
        }
    }
}

#[derive(Debug, Clone)]
struct StepCache {
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    i: Tensor,
    f: Tensor,
    g: Tensor,
    o: Tensor,
    c_new: Tensor,
}

/// A single-layer LSTM cell.
///
/// The FaHaNa controller (paper Section 3.2 ➀) is an RNN that emits one
/// architecture decision per step and is updated with the Monte-Carlo policy
/// gradient of Eq. 2. That update needs gradients of the log-probabilities
/// with respect to the recurrent parameters across the whole episode, so the
/// cell records per-step caches in [`LstmCell::step`] and replays them in
/// [`LstmCell::backward_through_time`].
///
/// Gate layout in the packed weight matrices is `[input, forget, cell, output]`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), neural::NeuralError> {
/// use ftensor::{SeededRng, Tensor};
/// use neural::{LstmCell, LstmState};
///
/// let mut rng = SeededRng::new(0);
/// let mut cell = LstmCell::new(8, 16, &mut rng)?;
/// let state = LstmState::zeros(1, 16);
/// let next = cell.step(&Tensor::zeros(&[1, 8]), &state)?;
/// assert_eq!(next.h.dims(), &[1, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LstmCell {
    weight_x: Tensor,
    weight_h: Tensor,
    bias: Tensor,
    weight_x_grad: Tensor,
    weight_h_grad: Tensor,
    bias_grad: Tensor,
    input_size: usize,
    hidden_size: usize,
    caches: Vec<StepCache>,
    trainable: TrainableFlag,
}

impl LstmCell {
    /// Creates a cell with small-uniform initialised weights and a forget
    /// gate bias of 1 (the usual trick to keep memory open early in
    /// training).
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidConfig`] if either size is zero.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut SeededRng) -> Result<Self> {
        if input_size == 0 || hidden_size == 0 {
            return Err(NeuralError::InvalidConfig(
                "lstm sizes must be non-zero".into(),
            ));
        }
        let weight_x = Initializer::SmallUniform.create(
            rng,
            &[input_size, 4 * hidden_size],
            input_size,
            hidden_size,
        );
        let weight_h = Initializer::SmallUniform.create(
            rng,
            &[hidden_size, 4 * hidden_size],
            hidden_size,
            hidden_size,
        );
        let mut bias = Tensor::zeros(&[4 * hidden_size]);
        for idx in hidden_size..2 * hidden_size {
            bias.as_mut_slice()[idx] = 1.0;
        }
        Ok(LstmCell {
            weight_x_grad: Tensor::zeros(weight_x.dims()),
            weight_h_grad: Tensor::zeros(weight_h.dims()),
            bias_grad: Tensor::zeros(bias.dims()),
            weight_x,
            weight_h,
            bias,
            input_size,
            hidden_size,
            caches: Vec::new(),
            trainable: TrainableFlag::new(),
        })
    }

    /// The hidden width of the cell.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// The input width of the cell.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Number of recorded steps since the last [`LstmCell::clear_cache`].
    pub fn recorded_steps(&self) -> usize {
        self.caches.len()
    }

    /// Discards the recorded step caches (call at the start of each episode).
    pub fn clear_cache(&mut self) {
        self.caches.clear();
    }

    /// Runs one LSTM step and records the cache needed for BPTT.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` is not `(batch, input_size)` or the state
    /// widths do not match the cell.
    pub fn step(&mut self, x: &Tensor, state: &LstmState) -> Result<LstmState> {
        let (batch, in_features) = x.shape().as_matrix()?;
        if in_features != self.input_size {
            return Err(NeuralError::BadInputShape {
                layer: "lstm".into(),
                expected: format!("(batch, {})", self.input_size),
                actual: x.dims().to_vec(),
            });
        }
        if state.h.dims() != [batch, self.hidden_size]
            || state.c.dims() != [batch, self.hidden_size]
        {
            return Err(NeuralError::BadInputShape {
                layer: "lstm-state".into(),
                expected: format!("({batch}, {})", self.hidden_size),
                actual: state.h.dims().to_vec(),
            });
        }
        let gates = x
            .matmul(&self.weight_x)?
            .add(&state.h.matmul(&self.weight_h)?)?
            .add_row_broadcast(&self.bias)?;
        let h = self.hidden_size;
        let gate_slice = gates.as_slice();
        let mut i = vec![0.0f32; batch * h];
        let mut f = vec![0.0f32; batch * h];
        let mut g = vec![0.0f32; batch * h];
        let mut o = vec![0.0f32; batch * h];
        for b in 0..batch {
            for j in 0..h {
                let row = &gate_slice[b * 4 * h..(b + 1) * 4 * h];
                i[b * h + j] = sigmoid(row[j]);
                f[b * h + j] = sigmoid(row[h + j]);
                g[b * h + j] = row[2 * h + j].tanh();
                o[b * h + j] = sigmoid(row[3 * h + j]);
            }
        }
        let i = Tensor::from_vec(i, &[batch, h])?;
        let f = Tensor::from_vec(f, &[batch, h])?;
        let g = Tensor::from_vec(g, &[batch, h])?;
        let o = Tensor::from_vec(o, &[batch, h])?;
        let c_new = f.mul(&state.c)?.add(&i.mul(&g)?)?;
        let h_new = o.mul(&c_new.tanh())?;
        self.caches.push(StepCache {
            x: x.clone(),
            h_prev: state.h.clone(),
            c_prev: state.c.clone(),
            i,
            f,
            g,
            o,
            c_new: c_new.clone(),
        });
        Ok(LstmState { h: h_new, c: c_new })
    }

    /// Backpropagates through every recorded step.
    ///
    /// `grad_h` supplies `dL/dh_t` for each recorded step, in step order
    /// (entries may be zero tensors for steps without a direct loss
    /// contribution). Parameter gradients are accumulated into the cell;
    /// the returned vector holds `dL/dx_t` per step.
    ///
    /// # Errors
    ///
    /// Returns an error if `grad_h.len()` differs from the number of
    /// recorded steps or shapes are inconsistent.
    pub fn backward_through_time(&mut self, grad_h: &[Tensor]) -> Result<Vec<Tensor>> {
        if grad_h.len() != self.caches.len() {
            return Err(NeuralError::InvalidConfig(format!(
                "got {} hidden gradients for {} recorded steps",
                grad_h.len(),
                self.caches.len()
            )));
        }
        if self.caches.is_empty() {
            return Ok(Vec::new());
        }
        let h = self.hidden_size;
        let batch = self.caches[0].x.dims()[0];
        let mut grad_inputs = vec![Tensor::zeros(&[batch, self.input_size]); self.caches.len()];
        let mut d_h_next = Tensor::zeros(&[batch, h]);
        let mut d_c_next = Tensor::zeros(&[batch, h]);
        for t in (0..self.caches.len()).rev() {
            let cache = self.caches[t].clone();
            let dh_total = grad_h[t].add(&d_h_next)?;
            let tanh_c = cache.c_new.tanh();
            // dL/do and dL/dc
            let d_o = dh_total.mul(&tanh_c)?;
            let one_minus_tanh2 = tanh_c.map(|v| 1.0 - v * v);
            let d_c = dh_total
                .mul(&cache.o)?
                .mul(&one_minus_tanh2)?
                .add(&d_c_next)?;
            let d_i = d_c.mul(&cache.g)?;
            let d_g = d_c.mul(&cache.i)?;
            let d_f = d_c.mul(&cache.c_prev)?;
            d_c_next = d_c.mul(&cache.f)?;
            // pre-activation gradients
            let d_gi = d_i.mul(&cache.i.map(|v| v * (1.0 - v)).reshape(cache.i.dims())?)?;
            let d_gf = d_f.mul(&cache.f.map(|v| v * (1.0 - v)))?;
            let d_gg = d_g.mul(&cache.g.map(|v| 1.0 - v * v))?;
            let d_go = d_o.mul(&cache.o.map(|v| v * (1.0 - v)))?;
            // pack into (batch, 4h)
            let mut packed = vec![0.0f32; batch * 4 * h];
            for b in 0..batch {
                for j in 0..h {
                    packed[b * 4 * h + j] = d_gi.as_slice()[b * h + j];
                    packed[b * 4 * h + h + j] = d_gf.as_slice()[b * h + j];
                    packed[b * 4 * h + 2 * h + j] = d_gg.as_slice()[b * h + j];
                    packed[b * 4 * h + 3 * h + j] = d_go.as_slice()[b * h + j];
                }
            }
            let d_gates = Tensor::from_vec(packed, &[batch, 4 * h])?;
            // parameter gradients
            self.weight_x_grad
                .add_assign(&cache.x.transpose()?.matmul(&d_gates)?)?;
            self.weight_h_grad
                .add_assign(&cache.h_prev.transpose()?.matmul(&d_gates)?)?;
            self.bias_grad.add_assign(&d_gates.sum_axis(0)?)?;
            // input and previous-hidden gradients
            grad_inputs[t] = d_gates.matmul(&self.weight_x.transpose()?)?;
            d_h_next = d_gates.matmul(&self.weight_h.transpose()?)?;
        }
        Ok(grad_inputs)
    }
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

impl Layer for LstmCell {
    fn name(&self) -> &'static str {
        "lstm"
    }

    /// Runs a single step from a zero state; provided so the cell can be
    /// driven by generic [`Layer`] tooling (optimizers, counting).
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let (batch, _) = input.shape().as_matrix()?;
        let state = LstmState::zeros(batch, self.hidden_size);
        Ok(self.step(input, &state)?.h)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.caches.is_empty() {
            return Err(NeuralError::MissingForwardCache {
                layer: "lstm".into(),
            });
        }
        let mut grads = vec![Tensor::zeros(grad_output.dims()); self.caches.len()];
        let last = grads.len() - 1;
        grads[last] = grad_output.clone();
        let inputs = self.backward_through_time(&grads)?;
        Ok(inputs.into_iter().last().unwrap_or_default())
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamSet<'_>)) {
        if self.trainable.enabled() {
            visitor(ParamSet {
                name: "weight_x",
                value: &mut self.weight_x,
                grad: &mut self.weight_x_grad,
            });
            visitor(ParamSet {
                name: "weight_h",
                value: &mut self.weight_h,
                grad: &mut self.weight_h_grad,
            });
            visitor(ParamSet {
                name: "bias",
                value: &mut self.bias,
                grad: &mut self.bias_grad,
            });
        }
    }

    fn param_count(&self) -> usize {
        self.weight_x.len() + self.weight_h.len() + self.bias.len()
    }

    fn set_trainable(&mut self, trainable: bool) {
        self.trainable.set(trainable);
    }

    fn is_trainable(&self) -> bool {
        self.trainable.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_sizes() {
        let mut rng = SeededRng::new(0);
        assert!(LstmCell::new(0, 4, &mut rng).is_err());
        assert!(LstmCell::new(4, 0, &mut rng).is_err());
        assert!(LstmCell::new(4, 4, &mut rng).is_ok());
    }

    #[test]
    fn step_produces_bounded_hidden_state() {
        let mut rng = SeededRng::new(1);
        let mut cell = LstmCell::new(3, 5, &mut rng).unwrap();
        let mut state = LstmState::zeros(2, 5);
        for _ in 0..10 {
            let x = Initializer::HeNormal.create(&mut rng, &[2, 3], 3, 5);
            state = cell.step(&x, &state).unwrap();
            // h = o * tanh(c) is bounded by |tanh| <= 1
            assert!(state.h.as_slice().iter().all(|v| v.abs() <= 1.0));
            assert!(state.h.is_finite());
        }
        assert_eq!(cell.recorded_steps(), 10);
        cell.clear_cache();
        assert_eq!(cell.recorded_steps(), 0);
    }

    #[test]
    fn step_rejects_mismatched_shapes() {
        let mut rng = SeededRng::new(2);
        let mut cell = LstmCell::new(3, 5, &mut rng).unwrap();
        let state = LstmState::zeros(1, 5);
        assert!(cell.step(&Tensor::zeros(&[1, 4]), &state).is_err());
        let bad_state = LstmState::zeros(1, 4);
        assert!(cell.step(&Tensor::zeros(&[1, 3]), &bad_state).is_err());
    }

    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut rng = SeededRng::new(3);
        let mut cell = LstmCell::new(2, 3, &mut rng).unwrap();
        let steps = 3usize;
        let inputs: Vec<Tensor> = (0..steps)
            .map(|_| Initializer::HeNormal.create(&mut rng, &[1, 2], 2, 3))
            .collect();

        // loss = sum over steps of sum(h_t)
        let run_loss = |cell: &mut LstmCell, inputs: &[Tensor]| -> f32 {
            cell.clear_cache();
            let mut state = LstmState::zeros(1, 3);
            let mut loss = 0.0;
            for x in inputs {
                state = cell.step(x, &state).unwrap();
                loss += state.h.sum();
            }
            loss
        };

        // analytic gradients
        run_loss(&mut cell, &inputs);
        cell.zero_grad();
        let grad_h: Vec<Tensor> = (0..steps).map(|_| Tensor::ones(&[1, 3])).collect();
        cell.backward_through_time(&grad_h).unwrap();
        let analytic_wx = cell.weight_x_grad.clone();
        let analytic_bias = cell.bias_grad.clone();

        let eps = 1e-2f32;
        for idx in [0usize, analytic_wx.len() / 2, analytic_wx.len() - 1] {
            let original = cell.weight_x.as_slice()[idx];
            cell.weight_x.as_mut_slice()[idx] = original + eps;
            let lp = run_loss(&mut cell, &inputs);
            cell.weight_x.as_mut_slice()[idx] = original - eps;
            let lm = run_loss(&mut cell, &inputs);
            cell.weight_x.as_mut_slice()[idx] = original;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic_wx.as_slice()[idx]).abs() < 3e-2,
                "weight_x grad mismatch at {idx}: numeric={numeric} analytic={}",
                analytic_wx.as_slice()[idx]
            );
        }
        for idx in [0usize, analytic_bias.len() - 1] {
            let original = cell.bias.as_slice()[idx];
            cell.bias.as_mut_slice()[idx] = original + eps;
            let lp = run_loss(&mut cell, &inputs);
            cell.bias.as_mut_slice()[idx] = original - eps;
            let lm = run_loss(&mut cell, &inputs);
            cell.bias.as_mut_slice()[idx] = original;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic_bias.as_slice()[idx]).abs() < 3e-2,
                "bias grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn bptt_rejects_wrong_gradient_count() {
        let mut rng = SeededRng::new(4);
        let mut cell = LstmCell::new(2, 2, &mut rng).unwrap();
        let state = LstmState::zeros(1, 2);
        cell.step(&Tensor::zeros(&[1, 2]), &state).unwrap();
        assert!(cell.backward_through_time(&[]).is_err());
    }

    #[test]
    fn param_count_matches_packed_layout() {
        let mut rng = SeededRng::new(5);
        let cell = LstmCell::new(4, 8, &mut rng).unwrap();
        assert_eq!(cell.param_count(), 4 * 32 + 8 * 32 + 32);
    }

    #[test]
    fn forget_bias_starts_at_one() {
        let mut rng = SeededRng::new(6);
        let cell = LstmCell::new(2, 4, &mut rng).unwrap();
        let bias = cell.bias.as_slice();
        // the forget-gate block of the bias vector is indices 4..8
        for &b in &bias[4..8] {
            assert_eq!(b, 1.0);
        }
    }

    #[test]
    fn layer_trait_forward_backward_round_trip() {
        let mut rng = SeededRng::new(7);
        let mut cell = LstmCell::new(3, 4, &mut rng).unwrap();
        let x = Tensor::ones(&[2, 3]);
        let h = cell.forward(&x, true).unwrap();
        assert_eq!(h.dims(), &[2, 4]);
        let gx = cell.backward(&Tensor::ones(&[2, 4])).unwrap();
        assert_eq!(gx.dims(), &[2, 3]);
    }
}
