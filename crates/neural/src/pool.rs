//! Pooling and shape-adapter layers.

use ftensor::{Scratch, Tensor};

use crate::layer::Layer;
use crate::{NeuralError, Result};

/// Global average pooling: `(batch, c, h, w)` → `(batch, c)`.
///
/// Every child network lowered from the search space ends with a
/// `GlobalAvgPool` followed by the linear classifier, matching MobileNetV2
/// and the FaHaNa-Net structure in the paper's Figure 7.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { input_dims: None }
    }

    /// Per-channel spatial mean into a borrowed `(n * c)` buffer; writes
    /// every element.
    fn pool_into(x: &[f32], out: &mut [f32], n: usize, c: usize, spatial: usize) {
        for b in 0..n {
            for ch in 0..c {
                let start = (b * c + ch) * spatial;
                out[b * c + ch] = x[start..start + spatial].iter().sum::<f32>() / spatial as f32;
            }
        }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let (n, c, h, w) = match input.dims() {
            [n, c, h, w] => (*n, *c, *h, *w),
            dims => {
                return Err(NeuralError::BadInputShape {
                    layer: "global_avg_pool".into(),
                    expected: "(batch, c, h, w)".into(),
                    actual: dims.to_vec(),
                })
            }
        };
        let spatial = (h * w).max(1);
        let x = input.as_slice();
        let mut out = vec![0.0f32; n * c];
        Self::pool_into(x, &mut out, n, c, spatial);
        self.input_dims = Some(input.dims().to_vec());
        Ok(Tensor::from_vec(out, &[n, c])?)
    }

    fn forward_scratch(
        &mut self,
        input: &Tensor,
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let (n, c, h, w) = match input.dims() {
            [n, c, h, w] => (*n, *c, *h, *w),
            dims => {
                return Err(NeuralError::BadInputShape {
                    layer: "global_avg_pool".into(),
                    expected: "(batch, c, h, w)".into(),
                    actual: dims.to_vec(),
                })
            }
        };
        let spatial = (h * w).max(1);
        let mut buf = scratch.take_uninit(n * c);
        Self::pool_into(input.as_slice(), &mut buf, n, c, spatial);
        if train {
            self.input_dims = Some(input.dims().to_vec());
        }
        Ok(Tensor::from_vec(buf, &[n, c])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or_else(|| NeuralError::MissingForwardCache {
                layer: "global_avg_pool".into(),
            })?;
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if grad_output.dims() != [n, c] {
            return Err(NeuralError::BadInputShape {
                layer: "global_avg_pool-backward".into(),
                expected: format!("({n}, {c})"),
                actual: grad_output.dims().to_vec(),
            });
        }
        let spatial = (h * w).max(1);
        let go = grad_output.as_slice();
        let mut grad_in = vec![0.0f32; n * c * spatial];
        for b in 0..n {
            for ch in 0..c {
                let g = go[b * c + ch] / spatial as f32;
                let start = (b * c + ch) * spatial;
                for v in &mut grad_in[start..start + spatial] {
                    *v = g;
                }
            }
        }
        Ok(Tensor::from_vec(grad_in, dims)?)
    }
}

/// Flattens `(batch, …)` into `(batch, features)`.
#[derive(Debug, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates the flatten layer.
    pub fn new() -> Self {
        Flatten { input_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let dims = input.dims();
        if dims.is_empty() {
            return Err(NeuralError::BadInputShape {
                layer: "flatten".into(),
                expected: "rank >= 1".into(),
                actual: dims.to_vec(),
            });
        }
        let batch = dims[0];
        let features = input.len() / batch.max(1);
        self.input_dims = Some(dims.to_vec());
        Ok(input.reshape(&[batch, features])?)
    }

    fn forward_scratch(
        &mut self,
        input: &Tensor,
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let dims = input.dims();
        if dims.is_empty() {
            return Err(NeuralError::BadInputShape {
                layer: "flatten".into(),
                expected: "rank >= 1".into(),
                actual: dims.to_vec(),
            });
        }
        let batch = dims[0];
        let features = input.len() / batch.max(1);
        let mut buf = scratch.take_uninit(input.len());
        buf.copy_from_slice(input.as_slice());
        if train {
            self.input_dims = Some(dims.to_vec());
        }
        Ok(Tensor::from_vec(buf, &[batch, features])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or_else(|| NeuralError::MissingForwardCache {
                layer: "flatten".into(),
            })?;
        Ok(grad_output.reshape(dims)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_avg_pool_averages_each_channel() {
        let mut pool = GlobalAvgPool::new();
        let x =
            Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 2, 2]).unwrap();
        let y = pool.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[4.0, 2.0]);
    }

    #[test]
    fn global_avg_pool_backward_spreads_gradient() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        pool.forward(&x, false).unwrap();
        let g = pool
            .backward(&Tensor::from_vec(vec![4.0], &[1, 1]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_avg_pool_rejects_rank2() {
        let mut pool = GlobalAvgPool::new();
        assert!(pool.forward(&Tensor::zeros(&[2, 3]), false).is_err());
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut flat = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = flat.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 48]);
        let g = flat.backward(&Tensor::ones(&[2, 48])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn pool_backward_requires_forward() {
        let mut pool = GlobalAvgPool::new();
        assert!(pool.backward(&Tensor::ones(&[1, 1])).is_err());
        let mut flat = Flatten::new();
        assert!(flat.backward(&Tensor::ones(&[1, 1])).is_err());
    }

    #[test]
    fn pooling_layers_have_no_parameters() {
        assert_eq!(GlobalAvgPool::new().param_count(), 0);
        assert_eq!(Flatten::new().param_count(), 0);
    }
}
