//! A small supervised training loop used by the trained evaluator.

use ftensor::{SeededRng, Tensor};

use crate::layer::Layer;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::optim::{Optimizer, Sgd};
use crate::sequential::Sequential;
use crate::{NeuralError, Result};

/// Hyperparameters of a training run.
///
/// Defaults mirror the paper's schedule in spirit (learning rate 0.1 decayed
/// by 0.9 on a fixed step interval, batch size 32), scaled down to the proxy
/// networks this reproduction trains.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// Multiplicative decay applied every `decay_every` epochs.
    pub lr_decay: f32,
    /// Epoch interval between decays.
    pub decay_every: usize,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Seed controlling shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            learning_rate: 0.1,
            lr_decay: 0.9,
            decay_every: 20,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss of the final epoch.
    pub final_loss: f32,
    /// Training accuracy after the final epoch.
    pub train_accuracy: f32,
    /// Loss recorded at the end of every epoch.
    pub loss_history: Vec<f32>,
    /// Number of optimizer steps performed.
    pub steps: usize,
}

/// Trains a [`Sequential`] classifier on an in-memory dataset.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), neural::NeuralError> {
/// use ftensor::{SeededRng, Tensor};
/// use neural::{Dense, Relu, Sequential, TrainConfig, Trainer};
///
/// let mut rng = SeededRng::new(0);
/// let mut net = Sequential::new();
/// net.push(Box::new(Dense::new(2, 8, &mut rng)));
/// net.push(Box::new(Relu::new()));
/// net.push(Box::new(Dense::new(8, 2, &mut rng)));
///
/// let x = Tensor::from_vec(vec![1.0, 1.0, -1.0, -1.0], &[2, 2])?;
/// let trainer = Trainer::new(TrainConfig { epochs: 5, ..TrainConfig::default() });
/// let report = trainer.fit(&mut net, &x, &[0, 1])?;
/// assert_eq!(report.loss_history.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Fits `net` to `(features, labels)` and reports the trajectory.
    ///
    /// `features` must be rank-2 `(samples, feature_dim)` or rank-4 NCHW with
    /// the first dimension being the sample count.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes disagree with the labels or a layer
    /// rejects the input.
    pub fn fit(
        &self,
        net: &mut Sequential,
        features: &Tensor,
        labels: &[usize],
    ) -> Result<TrainReport> {
        let samples = *features.dims().first().unwrap_or(&0);
        if samples != labels.len() || samples == 0 {
            return Err(NeuralError::LabelMismatch {
                predictions: samples,
                labels: labels.len(),
            });
        }
        let row_len = features.len() / samples;
        let mut optimizer = Sgd::new(
            self.config.learning_rate,
            self.config.momentum,
            self.config.weight_decay,
        );
        let mut rng = SeededRng::new(self.config.seed);
        let mut order: Vec<usize> = (0..samples).collect();
        let mut loss_history = Vec::with_capacity(self.config.epochs);
        let mut steps = 0usize;
        for epoch in 0..self.config.epochs {
            // Fisher–Yates shuffle
            for i in (1..order.len()).rev() {
                let j = rng.below(i + 1);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                let (batch_x, batch_labels) = gather_batch(features, labels, chunk, row_len)?;
                let logits = net.forward(&batch_x, true)?;
                let out = softmax_cross_entropy(&logits, &batch_labels)?;
                net.backward(&out.grad)?;
                optimizer.step(net);
                epoch_loss += out.loss;
                batches += 1;
                steps += 1;
            }
            loss_history.push(epoch_loss / batches.max(1) as f32);
            if self.config.decay_every > 0 && (epoch + 1) % self.config.decay_every == 0 {
                optimizer.decay(self.config.lr_decay);
            }
        }
        let logits = net.forward(features, false)?;
        let train_accuracy = accuracy(&logits, labels)?;
        Ok(TrainReport {
            final_loss: loss_history.last().copied().unwrap_or(f32::MAX),
            train_accuracy,
            loss_history,
            steps,
        })
    }

    /// Evaluates `net` on a held-out set and returns the accuracy.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes disagree with the labels.
    pub fn evaluate(
        &self,
        net: &mut Sequential,
        features: &Tensor,
        labels: &[usize],
    ) -> Result<f32> {
        let logits = net.forward(features, false)?;
        accuracy(&logits, labels)
    }
}

fn gather_batch(
    features: &Tensor,
    labels: &[usize],
    indices: &[usize],
    row_len: usize,
) -> Result<(Tensor, Vec<usize>)> {
    let mut data = Vec::with_capacity(indices.len() * row_len);
    let mut batch_labels = Vec::with_capacity(indices.len());
    let src = features.as_slice();
    for &idx in indices {
        data.extend_from_slice(&src[idx * row_len..(idx + 1) * row_len]);
        batch_labels.push(labels[idx]);
    }
    let mut dims = features.dims().to_vec();
    dims[0] = indices.len();
    Ok((Tensor::from_vec(data, &dims)?, batch_labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;

    fn two_blob_dataset(n_per_class: usize, rng: &mut SeededRng) -> (Tensor, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2usize {
            let center = if class == 0 { 2.0 } else { -2.0 };
            for _ in 0..n_per_class {
                data.push(rng.normal(center, 0.5));
                data.push(rng.normal(center, 0.5));
                labels.push(class);
            }
        }
        (
            Tensor::from_vec(data, &[2 * n_per_class, 2]).unwrap(),
            labels,
        )
    }

    #[test]
    fn trainer_learns_separable_blobs() {
        let mut rng = SeededRng::new(0);
        let (x, labels) = two_blob_dataset(32, &mut rng);
        let mut net = Sequential::new();
        net.push(Box::new(Dense::new(2, 16, &mut rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Dense::new(16, 2, &mut rng)));
        let trainer = Trainer::new(TrainConfig {
            epochs: 15,
            batch_size: 16,
            learning_rate: 0.05,
            seed: 1,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut net, &x, &labels).unwrap();
        assert!(
            report.train_accuracy > 0.95,
            "accuracy {}",
            report.train_accuracy
        );
        assert!(report.final_loss < report.loss_history[0]);
        assert_eq!(report.loss_history.len(), 15);
        assert!(report.steps >= 15);
    }

    #[test]
    fn fit_rejects_label_mismatch() {
        let mut rng = SeededRng::new(1);
        let mut net = Sequential::new();
        net.push(Box::new(Dense::new(2, 2, &mut rng)));
        let trainer = Trainer::new(TrainConfig::default());
        let x = Tensor::zeros(&[4, 2]);
        assert!(trainer.fit(&mut net, &x, &[0, 1]).is_err());
        assert!(trainer.fit(&mut net, &Tensor::zeros(&[0, 2]), &[]).is_err());
    }

    #[test]
    fn evaluate_returns_accuracy() {
        let mut rng = SeededRng::new(2);
        let (x, labels) = two_blob_dataset(16, &mut rng);
        let mut net = Sequential::new();
        net.push(Box::new(Dense::new(2, 2, &mut rng)));
        let trainer = Trainer::new(TrainConfig {
            epochs: 10,
            learning_rate: 0.1,
            ..TrainConfig::default()
        });
        trainer.fit(&mut net, &x, &labels).unwrap();
        let acc = trainer.evaluate(&mut net, &x, &labels).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn default_config_matches_paper_style_schedule() {
        let cfg = TrainConfig::default();
        assert_eq!(cfg.batch_size, 32);
        assert!((cfg.learning_rate - 0.1).abs() < 1e-6);
        assert!((cfg.lr_decay - 0.9).abs() < 1e-6);
        assert_eq!(cfg.decay_every, 20);
    }

    #[test]
    fn frozen_prefix_still_trains_remaining_layers() {
        let mut rng = SeededRng::new(3);
        let (x, labels) = two_blob_dataset(16, &mut rng);
        let mut net = Sequential::new();
        net.push(Box::new(Dense::new(2, 8, &mut rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Dense::new(8, 2, &mut rng)));
        net.freeze_prefix(2);
        let trainer = Trainer::new(TrainConfig {
            epochs: 10,
            learning_rate: 0.1,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut net, &x, &labels).unwrap();
        // even with the frozen header the classifier head learns something
        assert!(report.train_accuracy > 0.6);
    }
}
