//! The [`Layer`] trait and parameter bookkeeping shared by all layers.

use ftensor::{Scratch, Tensor};

use crate::Result;

/// A named parameter tensor paired with its gradient accumulator.
///
/// Layers expose their parameters through [`Layer::visit_params`] so that
/// optimizers can update them and the trainer can count them, without the
/// optimizer knowing anything about layer internals.
#[derive(Debug)]
pub struct ParamSet<'a> {
    /// Stable name of the parameter within its layer (e.g. `"weight"`).
    pub name: &'a str,
    /// The parameter values, updated in place by optimizers.
    pub value: &'a mut Tensor,
    /// The gradient accumulated by the most recent backward pass.
    pub grad: &'a mut Tensor,
}

/// A differentiable network component.
///
/// Layers own their parameters, gradients and the forward-pass cache needed
/// by `backward`. The contract is:
///
/// 1. `forward` must be called before `backward`;
/// 2. `backward` receives `dL/d(output)` and returns `dL/d(input)` while
///    accumulating parameter gradients internally;
/// 3. `visit_params` yields parameters only when the layer is trainable, so
///    frozen (header) layers are invisible to the optimizer — this is how the
///    producer's freezing method reduces trainable parameters.
pub trait Layer: std::fmt::Debug + Send {
    /// Human-readable layer kind, used in error messages and summaries.
    fn name(&self) -> &'static str;

    /// Runs the layer on a batch, caching whatever `backward` will need.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor>;

    /// Runs the layer on a batch, drawing output and intermediate buffers
    /// from a [`Scratch`] arena instead of allocating.
    ///
    /// The returned tensor's backing buffer came from (and should be
    /// returned to) `scratch`, so repeated passes over same-shaped inputs
    /// perform zero steady-state heap allocation. With `train == false` the
    /// backward cache is *not* populated — this is the inference-only
    /// evaluation hot path. Results are bit-identical to [`Layer::forward`].
    ///
    /// The default implementation falls back to [`Layer::forward`], so
    /// layers without a scratch-aware path stay correct (they merely keep
    /// allocating); every layer on the evaluation hot path overrides it.
    ///
    /// # Errors
    ///
    /// Same as [`Layer::forward`].
    fn forward_scratch(
        &mut self,
        input: &Tensor,
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let _ = scratch;
        self.forward(input, train)
    }

    /// Propagates the loss gradient through the layer.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NeuralError::MissingForwardCache`] if called before
    /// `forward`, or a shape error if `grad_output` is malformed.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Visits every trainable parameter of the layer.
    ///
    /// The default implementation visits nothing (parameter-free layers).
    fn visit_params(&mut self, _visitor: &mut dyn FnMut(ParamSet<'_>)) {}

    /// Total number of parameters the layer owns (independent of freezing).
    fn param_count(&self) -> usize {
        0
    }

    /// Number of parameters currently visible to optimizers.
    fn trainable_param_count(&mut self) -> usize {
        let mut n = 0usize;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.grad.fill_zero());
    }

    /// Marks the layer as trainable or frozen. Frozen layers keep their
    /// parameters but stop exposing them through [`Layer::visit_params`].
    fn set_trainable(&mut self, _trainable: bool) {}

    /// Whether the layer currently exposes parameters for training.
    fn is_trainable(&self) -> bool {
        true
    }
}

/// Helper used by layers with a `trainable` flag to implement
/// [`Layer::visit_params`] uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainableFlag {
    trainable: bool,
}

impl TrainableFlag {
    /// A new, trainable flag.
    pub fn new() -> Self {
        TrainableFlag { trainable: true }
    }

    /// Returns whether parameters should currently be exposed.
    pub fn enabled(&self) -> bool {
        self.trainable
    }

    /// Sets the flag.
    pub fn set(&mut self, trainable: bool) {
        self.trainable = trainable;
    }
}

impl Default for TrainableFlag {
    fn default() -> Self {
        TrainableFlag::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal layer used to exercise the default trait methods.
    #[derive(Debug)]
    struct Bias {
        value: Tensor,
        grad: Tensor,
        flag: TrainableFlag,
        cache: bool,
    }

    impl Bias {
        fn new(n: usize) -> Self {
            Bias {
                value: Tensor::zeros(&[n]),
                grad: Tensor::zeros(&[n]),
                flag: TrainableFlag::new(),
                cache: false,
            }
        }
    }

    impl Layer for Bias {
        fn name(&self) -> &'static str {
            "bias"
        }

        fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
            self.cache = true;
            Ok(input.add_row_broadcast(&self.value)?)
        }

        fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
            if !self.cache {
                return Err(crate::NeuralError::MissingForwardCache {
                    layer: "bias".into(),
                });
            }
            let col_sum = grad_output.sum_axis(0)?;
            self.grad.add_assign(&col_sum)?;
            Ok(grad_output.clone())
        }

        fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamSet<'_>)) {
            if self.flag.enabled() {
                visitor(ParamSet {
                    name: "bias",
                    value: &mut self.value,
                    grad: &mut self.grad,
                });
            }
        }

        fn param_count(&self) -> usize {
            self.value.len()
        }

        fn set_trainable(&mut self, trainable: bool) {
            self.flag.set(trainable);
        }

        fn is_trainable(&self) -> bool {
            self.flag.enabled()
        }
    }

    #[test]
    fn trainable_param_count_respects_freezing() {
        let mut layer = Bias::new(4);
        assert_eq!(layer.param_count(), 4);
        assert_eq!(layer.trainable_param_count(), 4);
        layer.set_trainable(false);
        assert_eq!(layer.trainable_param_count(), 0);
        assert_eq!(layer.param_count(), 4, "raw count unaffected by freezing");
    }

    #[test]
    fn zero_grad_clears_accumulated_gradient() {
        let mut layer = Bias::new(2);
        let x = Tensor::ones(&[3, 2]);
        let y = layer.forward(&x, true).unwrap();
        layer.backward(&Tensor::ones(&[3, 2])).unwrap();
        assert_eq!(layer.grad.as_slice(), &[3.0, 3.0]);
        layer.zero_grad();
        assert_eq!(layer.grad.as_slice(), &[0.0, 0.0]);
        assert_eq!(y.dims(), &[3, 2]);
    }

    #[test]
    fn backward_before_forward_is_an_error() {
        let mut layer = Bias::new(2);
        assert!(layer.backward(&Tensor::ones(&[1, 2])).is_err());
    }

    #[test]
    fn trainable_flag_defaults_to_enabled() {
        assert!(TrainableFlag::default().enabled());
    }
}
