//! Layer containers: [`Sequential`] stacks and [`Residual`] wrappers.

use ftensor::{kernels, Scratch, Tensor};

use crate::layer::{Layer, ParamSet};
use crate::{NeuralError, Result};

/// A stack of layers applied in order.
///
/// `Sequential` is itself a [`Layer`], so stacks nest (a residual block holds
/// a `Sequential` body). It also exposes the hooks the rest of the framework
/// needs:
///
/// * [`Sequential::forward_collect`] returns every intermediate activation —
///   the feature-variation analysis behind the paper's Figure 3 and the
///   freezing producer both use it;
/// * [`Sequential::freeze_prefix`] marks the first `n` layers as
///   non-trainable, implementing the frozen header.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), neural::NeuralError> {
/// use ftensor::{SeededRng, Tensor};
/// use neural::{Dense, Layer, Relu, Sequential};
///
/// let mut rng = SeededRng::new(0);
/// let mut net = Sequential::new();
/// net.push(Box::new(Dense::new(4, 16, &mut rng)));
/// net.push(Box::new(Relu::new()));
/// net.push(Box::new(Dense::new(16, 3, &mut rng)));
/// assert_eq!(net.len(), 3);
///
/// let out = net.forward(&Tensor::ones(&[2, 4]), false)?;
/// assert_eq!(out.dims(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the stack.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the stack.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the stack holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Names of the layers, in order (useful for summaries and debugging).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Runs a forward pass, returning the activation after every layer.
    ///
    /// The result has one entry per layer; entry `i` is the output of layer
    /// `i`. Used by the freezing producer to compare per-layer feature maps
    /// between demographic groups.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error encountered.
    pub fn forward_collect(&mut self, input: &Tensor, train: bool) -> Result<Vec<Tensor>> {
        let mut activations = Vec::with_capacity(self.layers.len());
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward(&current, train)?;
            activations.push(current.clone());
        }
        Ok(activations)
    }

    /// Freezes the first `n` layers (clamped to the stack length), so they
    /// stop exposing parameters to optimizers.
    pub fn freeze_prefix(&mut self, n: usize) {
        for layer in self.layers.iter_mut().take(n) {
            layer.set_trainable(false);
        }
    }

    /// Unfreezes every layer.
    pub fn unfreeze_all(&mut self) {
        for layer in &mut self.layers {
            layer.set_trainable(true);
        }
    }

    /// Number of layers currently frozen.
    pub fn frozen_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| !l.is_trainable()).count()
    }
}

impl Layer for Sequential {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward(&current, train)?;
        }
        Ok(current)
    }

    fn forward_scratch(
        &mut self,
        input: &Tensor,
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        // Intermediates are recycled as soon as the next layer has consumed
        // them, so a whole pass holds at most two scratch tensors at once.
        let mut current: Option<Tensor> = None;
        for layer in &mut self.layers {
            let next = layer.forward_scratch(current.as_ref().unwrap_or(input), train, scratch)?;
            if let Some(prev) = current.take() {
                scratch.release_tensor(prev);
            }
            current = Some(next);
        }
        match current {
            Some(out) => Ok(out),
            None => Ok(input.clone()),
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut grad = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(grad)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamSet<'_>)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    fn set_trainable(&mut self, trainable: bool) {
        for layer in &mut self.layers {
            layer.set_trainable(trainable);
        }
    }

    fn is_trainable(&self) -> bool {
        self.layers.iter().any(|l| l.is_trainable())
    }
}

/// A residual wrapper computing `y = body(x) + x`.
///
/// This is the skip connection used by RB (ResNet) and stride-1 MB blocks.
/// The wrapped body must preserve the input shape; a shape mismatch is
/// reported as an error rather than silently dropping the skip.
#[derive(Debug)]
pub struct Residual {
    body: Sequential,
}

impl Residual {
    /// Wraps a body in a skip connection.
    pub fn new(body: Sequential) -> Self {
        Residual { body }
    }

    /// Read access to the wrapped body.
    pub fn body(&self) -> &Sequential {
        &self.body
    }
}

impl Layer for Residual {
    fn name(&self) -> &'static str {
        "residual"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let out = self.body.forward(input, train)?;
        if out.dims() != input.dims() {
            return Err(NeuralError::BadInputShape {
                layer: "residual".into(),
                expected: format!("body output matching input {:?}", input.dims()),
                actual: out.dims().to_vec(),
            });
        }
        Ok(out.add(input)?)
    }

    fn forward_scratch(
        &mut self,
        input: &Tensor,
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let mut out = self.body.forward_scratch(input, train, scratch)?;
        if out.dims() != input.dims() {
            let dims = out.dims().to_vec();
            scratch.release_tensor(out);
            return Err(NeuralError::BadInputShape {
                layer: "residual".into(),
                expected: format!("body output matching input {:?}", input.dims()),
                actual: dims,
            });
        }
        kernels::zip_into_inplace(out.as_mut_slice(), input.as_slice(), |a, b| a + b);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let grad_body = self.body.backward(grad_output)?;
        Ok(grad_body.add(grad_output)?)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamSet<'_>)) {
        self.body.visit_params(visitor);
    }

    fn param_count(&self) -> usize {
        self.body.param_count()
    }

    fn zero_grad(&mut self) {
        self.body.zero_grad();
    }

    fn set_trainable(&mut self, trainable: bool) {
        self.body.set_trainable(trainable);
    }

    fn is_trainable(&self) -> bool {
        self.body.is_trainable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use ftensor::SeededRng;

    fn small_net(rng: &mut SeededRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Box::new(Dense::new(4, 8, rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Dense::new(8, 2, rng)));
        net
    }

    #[test]
    fn forward_chains_layers() {
        let mut rng = SeededRng::new(0);
        let mut net = small_net(&mut rng);
        let y = net.forward(&Tensor::ones(&[3, 4]), false).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(net.layer_names(), vec!["dense", "relu", "dense"]);
    }

    #[test]
    fn forward_collect_returns_every_activation() {
        let mut rng = SeededRng::new(1);
        let mut net = small_net(&mut rng);
        let acts = net.forward_collect(&Tensor::ones(&[2, 4]), false).unwrap();
        assert_eq!(acts.len(), 3);
        assert_eq!(acts[0].dims(), &[2, 8]);
        assert_eq!(acts[2].dims(), &[2, 2]);
    }

    #[test]
    fn backward_propagates_through_stack() {
        let mut rng = SeededRng::new(2);
        let mut net = small_net(&mut rng);
        let y = net.forward(&Tensor::ones(&[2, 4]), true).unwrap();
        let g = net.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), &[2, 4]);
    }

    #[test]
    fn freeze_prefix_reduces_trainable_params() {
        let mut rng = SeededRng::new(3);
        let mut net = small_net(&mut rng);
        let full = net.trainable_param_count();
        net.freeze_prefix(1);
        let frozen = net.trainable_param_count();
        assert_eq!(full - frozen, 4 * 8 + 8);
        assert_eq!(net.frozen_layer_count(), 1);
        net.unfreeze_all();
        assert_eq!(net.trainable_param_count(), full);
    }

    #[test]
    fn freeze_prefix_clamps_to_length() {
        let mut rng = SeededRng::new(4);
        let mut net = small_net(&mut rng);
        net.freeze_prefix(100);
        assert_eq!(net.trainable_param_count(), 0);
        // parameter-free layers (Relu) ignore freezing; both Dense layers are frozen
        assert_eq!(net.frozen_layer_count(), 2);
    }

    #[test]
    fn residual_adds_skip_connection() {
        let mut body = Sequential::new();
        // identity body: a Dense initialised to the identity matrix
        let weight = Tensor::eye(3);
        let bias = Tensor::zeros(&[3]);
        body.push(Box::new(Dense::from_parts(weight, bias).unwrap()));
        let mut res = Residual::new(body);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = res.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn residual_rejects_shape_changing_body() {
        let mut rng = SeededRng::new(5);
        let mut body = Sequential::new();
        body.push(Box::new(Dense::new(3, 4, &mut rng)));
        let mut res = Residual::new(body);
        assert!(res.forward(&Tensor::ones(&[1, 3]), false).is_err());
    }

    #[test]
    fn residual_backward_includes_identity_path() {
        let mut body = Sequential::new();
        body.push(Box::new(
            Dense::from_parts(Tensor::eye(2), Tensor::zeros(&[2])).unwrap(),
        ));
        let mut res = Residual::new(body);
        res.forward(&Tensor::ones(&[1, 2]), true).unwrap();
        let g = res.backward(&Tensor::ones(&[1, 2])).unwrap();
        // gradient = body-path (identity) + skip-path = 2
        assert_eq!(g.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn forward_scratch_is_bit_identical_and_allocation_free() {
        let mut rng = SeededRng::new(7);
        let mut net = small_net(&mut rng);
        let x =
            Tensor::from_vec((0..12).map(|v| v as f32 * 0.25 - 1.0).collect(), &[3, 4]).unwrap();
        let plain = net.forward(&x, false).unwrap();
        let mut scratch = ftensor::Scratch::new();
        for pass in 0..4 {
            let warm = scratch.allocations();
            let out = net.forward_scratch(&x, false, &mut scratch).unwrap();
            assert_eq!(out.dims(), plain.dims());
            for (a, b) in out.as_slice().iter().zip(plain.as_slice().iter()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "scratch pass diverged at pass {pass}"
                );
            }
            scratch.release_tensor(out);
            if pass > 0 {
                assert_eq!(
                    scratch.allocations(),
                    warm,
                    "steady-state forward_scratch must not allocate"
                );
            }
        }
    }

    #[test]
    fn residual_forward_scratch_matches_forward() {
        let mut body = Sequential::new();
        body.push(Box::new(
            Dense::from_parts(Tensor::eye(3), Tensor::zeros(&[3])).unwrap(),
        ));
        let mut res = Residual::new(body);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let plain = res.forward(&x, false).unwrap();
        let mut scratch = ftensor::Scratch::new();
        let out = res.forward_scratch(&x, false, &mut scratch).unwrap();
        assert_eq!(out.as_slice(), plain.as_slice());
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = SeededRng::new(6);
        let net = small_net(&mut rng);
        assert_eq!(net.param_count(), (4 * 8 + 8) + (8 * 2 + 2));
    }
}
