//! 2-D convolution layers (standard and depthwise), NCHW layout.

use ftensor::{Initializer, Scratch, SeededRng, Tensor};

use crate::layer::{Layer, ParamSet, TrainableFlag};
use crate::{NeuralError, Result};

/// Computes the spatial output extent of a convolution.
fn conv_out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    (input + 2 * padding).saturating_sub(kernel) / stride + 1
}

/// Standard 2-D convolution over NCHW tensors.
///
/// Weight layout is `(out_channels, in_channels, k, k)`. The layer backs the
/// CB (plain convolution) search-space block and the stems/classifier paths
/// of the lowered child networks.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), neural::NeuralError> {
/// use ftensor::{SeededRng, Tensor};
/// use neural::{Conv2d, Layer};
///
/// let mut rng = SeededRng::new(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng)?;
/// let y = conv.forward(&Tensor::zeros(&[2, 3, 8, 8]), false)?;
/// assert_eq!(y.dims(), &[2, 8, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    input_cache: Option<Tensor>,
    trainable: TrainableFlag,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidConfig`] if any dimension or the stride
    /// is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeededRng,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(NeuralError::InvalidConfig(
                "conv dimensions and stride must be non-zero".into(),
            ));
        }
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weight = Initializer::HeNormal.create(
            rng,
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            fan_out,
        );
        Ok(Conv2d {
            weight,
            bias: Tensor::zeros(&[out_channels]),
            weight_grad: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            bias_grad: Tensor::zeros(&[out_channels]),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            input_cache: None,
            trainable: TrainableFlag::new(),
        })
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize)> {
        match input.dims() {
            [n, c, h, w] if *c == self.in_channels => Ok((*n, *h, *w)),
            dims => Err(NeuralError::BadInputShape {
                layer: "conv2d".into(),
                expected: format!("(batch, {}, h, w)", self.in_channels),
                actual: dims.to_vec(),
            }),
        }
    }

    /// Direct convolution into a borrowed output buffer; writes every
    /// element, so the buffer need not be zeroed.
    fn run_forward(&self, x: &[f32], o: &mut [f32], n: usize, h: usize, w: usize) {
        let (oh, ow) = (
            conv_out_dim(h, self.kernel, self.stride, self.padding),
            conv_out_dim(w, self.kernel, self.stride, self.padding),
        );
        let wgt = self.weight.as_slice();
        let b = self.bias.as_slice();
        let (ic, k, s, p) = (self.in_channels, self.kernel, self.stride, self.padding);
        for bi in 0..n {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b[oc];
                        for ci in 0..ic {
                            for ky in 0..k {
                                let iy = (oy * s + ky) as isize - p as isize;
                                if iy < 0 || iy as usize >= h {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = (ox * s + kx) as isize - p as isize;
                                    if ix < 0 || ix as usize >= w {
                                        continue;
                                    }
                                    let xi = ((bi * ic + ci) * h + iy as usize) * w + ix as usize;
                                    let wi = ((oc * ic + ci) * k + ky) * k + kx;
                                    acc += x[xi] * wgt[wi];
                                }
                            }
                        }
                        o[((bi * self.out_channels + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let (n, h, w) = self.check_input(input)?;
        let (oh, ow) = (
            conv_out_dim(h, self.kernel, self.stride, self.padding),
            conv_out_dim(w, self.kernel, self.stride, self.padding),
        );
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        self.run_forward(input.as_slice(), out.as_mut_slice(), n, h, w);
        self.input_cache = Some(input.clone());
        Ok(out)
    }

    fn forward_scratch(
        &mut self,
        input: &Tensor,
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let (n, h, w) = self.check_input(input)?;
        let (oh, ow) = (
            conv_out_dim(h, self.kernel, self.stride, self.padding),
            conv_out_dim(w, self.kernel, self.stride, self.padding),
        );
        let len = n * self.out_channels * oh * ow;
        let mut buf = scratch.take_uninit(len);
        self.run_forward(input.as_slice(), &mut buf, n, h, w);
        if train {
            self.input_cache = Some(input.clone());
        }
        Ok(Tensor::from_vec(buf, &[n, self.out_channels, oh, ow])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .input_cache
            .as_ref()
            .ok_or_else(|| NeuralError::MissingForwardCache {
                layer: "conv2d".into(),
            })?
            .clone();
        let (n, h, w) = self.check_input(&input)?;
        let (oh, ow) = (
            conv_out_dim(h, self.kernel, self.stride, self.padding),
            conv_out_dim(w, self.kernel, self.stride, self.padding),
        );
        if grad_output.dims() != [n, self.out_channels, oh, ow] {
            return Err(NeuralError::BadInputShape {
                layer: "conv2d-backward".into(),
                expected: format!("({n}, {}, {oh}, {ow})", self.out_channels),
                actual: grad_output.dims().to_vec(),
            });
        }
        let mut grad_input = Tensor::zeros(input.dims());
        let x = input.as_slice();
        let wgt = self.weight.as_slice();
        let go = grad_output.as_slice();
        let gi = grad_input.as_mut_slice();
        let gw = self.weight_grad.as_mut_slice();
        let gb = self.bias_grad.as_mut_slice();
        let (ic, k, s, p) = (self.in_channels, self.kernel, self.stride, self.padding);
        for bi in 0..n {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[((bi * self.out_channels + oc) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb[oc] += g;
                        for ci in 0..ic {
                            for ky in 0..k {
                                let iy = (oy * s + ky) as isize - p as isize;
                                if iy < 0 || iy as usize >= h {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = (ox * s + kx) as isize - p as isize;
                                    if ix < 0 || ix as usize >= w {
                                        continue;
                                    }
                                    let xi = ((bi * ic + ci) * h + iy as usize) * w + ix as usize;
                                    let wi = ((oc * ic + ci) * k + ky) * k + kx;
                                    gw[wi] += g * x[xi];
                                    gi[xi] += g * wgt[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_input)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamSet<'_>)) {
        if self.trainable.enabled() {
            visitor(ParamSet {
                name: "weight",
                value: &mut self.weight,
                grad: &mut self.weight_grad,
            });
            visitor(ParamSet {
                name: "bias",
                value: &mut self.bias,
                grad: &mut self.bias_grad,
            });
        }
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn set_trainable(&mut self, trainable: bool) {
        self.trainable.set(trainable);
    }

    fn is_trainable(&self) -> bool {
        self.trainable.enabled()
    }
}

/// Depthwise 2-D convolution: every input channel is convolved with its own
/// `k × k` filter (channel multiplier 1), as used by the MB/DB blocks of
/// MobileNetV2 and the paper's search space.
///
/// Weight layout is `(channels, k, k)`.
#[derive(Debug)]
pub struct DepthwiseConv2d {
    weight: Tensor,
    bias: Tensor,
    weight_grad: Tensor,
    bias_grad: Tensor,
    channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    input_cache: Option<Tensor>,
    trainable: TrainableFlag,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidConfig`] if `channels`, `kernel` or
    /// `stride` is zero.
    pub fn new(
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeededRng,
    ) -> Result<Self> {
        if channels == 0 || kernel == 0 || stride == 0 {
            return Err(NeuralError::InvalidConfig(
                "depthwise conv dimensions and stride must be non-zero".into(),
            ));
        }
        let fan = kernel * kernel;
        let weight = Initializer::HeNormal.create(rng, &[channels, kernel, kernel], fan, fan);
        Ok(DepthwiseConv2d {
            weight,
            bias: Tensor::zeros(&[channels]),
            weight_grad: Tensor::zeros(&[channels, kernel, kernel]),
            bias_grad: Tensor::zeros(&[channels]),
            channels,
            kernel,
            stride,
            padding,
            input_cache: None,
            trainable: TrainableFlag::new(),
        })
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize)> {
        match input.dims() {
            [n, c, h, w] if *c == self.channels => Ok((*n, *h, *w)),
            dims => Err(NeuralError::BadInputShape {
                layer: "dwconv2d".into(),
                expected: format!("(batch, {}, h, w)", self.channels),
                actual: dims.to_vec(),
            }),
        }
    }

    /// Direct depthwise convolution into a borrowed output buffer; writes
    /// every element, so the buffer need not be zeroed.
    fn run_forward(&self, x: &[f32], o: &mut [f32], n: usize, h: usize, w: usize) {
        let (oh, ow) = (
            conv_out_dim(h, self.kernel, self.stride, self.padding),
            conv_out_dim(w, self.kernel, self.stride, self.padding),
        );
        let wgt = self.weight.as_slice();
        let b = self.bias.as_slice();
        let (k, s, p) = (self.kernel, self.stride, self.padding);
        for bi in 0..n {
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b[c];
                        for ky in 0..k {
                            let iy = (oy * s + ky) as isize - p as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * s + kx) as isize - p as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let xi =
                                    ((bi * self.channels + c) * h + iy as usize) * w + ix as usize;
                                let wi = (c * k + ky) * k + kx;
                                acc += x[xi] * wgt[wi];
                            }
                        }
                        o[((bi * self.channels + c) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
    }
}

impl Layer for DepthwiseConv2d {
    fn name(&self) -> &'static str {
        "dwconv2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let (n, h, w) = self.check_input(input)?;
        let (oh, ow) = (
            conv_out_dim(h, self.kernel, self.stride, self.padding),
            conv_out_dim(w, self.kernel, self.stride, self.padding),
        );
        let mut out = Tensor::zeros(&[n, self.channels, oh, ow]);
        self.run_forward(input.as_slice(), out.as_mut_slice(), n, h, w);
        self.input_cache = Some(input.clone());
        Ok(out)
    }

    fn forward_scratch(
        &mut self,
        input: &Tensor,
        train: bool,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let (n, h, w) = self.check_input(input)?;
        let (oh, ow) = (
            conv_out_dim(h, self.kernel, self.stride, self.padding),
            conv_out_dim(w, self.kernel, self.stride, self.padding),
        );
        let len = n * self.channels * oh * ow;
        let mut buf = scratch.take_uninit(len);
        self.run_forward(input.as_slice(), &mut buf, n, h, w);
        if train {
            self.input_cache = Some(input.clone());
        }
        Ok(Tensor::from_vec(buf, &[n, self.channels, oh, ow])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .input_cache
            .as_ref()
            .ok_or_else(|| NeuralError::MissingForwardCache {
                layer: "dwconv2d".into(),
            })?
            .clone();
        let (n, h, w) = self.check_input(&input)?;
        let (oh, ow) = (
            conv_out_dim(h, self.kernel, self.stride, self.padding),
            conv_out_dim(w, self.kernel, self.stride, self.padding),
        );
        if grad_output.dims() != [n, self.channels, oh, ow] {
            return Err(NeuralError::BadInputShape {
                layer: "dwconv2d-backward".into(),
                expected: format!("({n}, {}, {oh}, {ow})", self.channels),
                actual: grad_output.dims().to_vec(),
            });
        }
        let mut grad_input = Tensor::zeros(input.dims());
        let x = input.as_slice();
        let wgt = self.weight.as_slice();
        let go = grad_output.as_slice();
        let gi = grad_input.as_mut_slice();
        let gw = self.weight_grad.as_mut_slice();
        let gb = self.bias_grad.as_mut_slice();
        let (k, s, p) = (self.kernel, self.stride, self.padding);
        for bi in 0..n {
            for c in 0..self.channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[((bi * self.channels + c) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb[c] += g;
                        for ky in 0..k {
                            let iy = (oy * s + ky) as isize - p as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * s + kx) as isize - p as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let xi =
                                    ((bi * self.channels + c) * h + iy as usize) * w + ix as usize;
                                let wi = (c * k + ky) * k + kx;
                                gw[wi] += g * x[xi];
                                gi[xi] += g * wgt[wi];
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_input)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(ParamSet<'_>)) {
        if self.trainable.enabled() {
            visitor(ParamSet {
                name: "weight",
                value: &mut self.weight,
                grad: &mut self.weight_grad,
            });
            visitor(ParamSet {
                name: "bias",
                value: &mut self.bias,
                grad: &mut self.bias_grad,
            });
        }
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn set_trainable(&mut self, trainable: bool) {
        self.trainable.set(trainable);
    }

    fn is_trainable(&self) -> bool {
        self.trainable.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_follow_conv_arithmetic() {
        assert_eq!(conv_out_dim(8, 3, 1, 1), 8);
        assert_eq!(conv_out_dim(8, 3, 2, 1), 4);
        assert_eq!(conv_out_dim(7, 3, 2, 1), 4);
        assert_eq!(conv_out_dim(8, 1, 1, 0), 8);
    }

    #[test]
    fn conv_identity_kernel_preserves_input() {
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng).unwrap();
        // force weight to 1.0 so the layer is the identity
        conv.weight = Tensor::ones(&[1, 1, 1, 1]);
        conv.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_stride_two_halves_spatial_dims() {
        let mut rng = SeededRng::new(1);
        let mut conv = Conv2d::new(3, 4, 3, 2, 1, &mut rng).unwrap();
        let y = conv.forward(&Tensor::zeros(&[2, 3, 8, 8]), false).unwrap();
        assert_eq!(y.dims(), &[2, 4, 4, 4]);
    }

    #[test]
    fn conv_rejects_wrong_channel_count() {
        let mut rng = SeededRng::new(2);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng).unwrap();
        assert!(conv.forward(&Tensor::zeros(&[1, 2, 8, 8]), false).is_err());
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = SeededRng::new(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng).unwrap();
        let x = Initializer::HeNormal.create(&mut rng, &[1, 2, 5, 5], 18, 27);
        let out = conv.forward(&x, true).unwrap();
        conv.zero_grad();
        let grad_in = conv.backward(&Tensor::ones(out.dims())).unwrap();
        let analytic_w = conv.weight_grad.clone();
        let eps = 1e-2f32;
        // input gradient spot checks
        for idx in [0usize, 12, x.len() - 1] {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (conv.forward(&plus, true).unwrap().sum()
                - conv.forward(&minus, true).unwrap().sum())
                / (2.0 * eps);
            assert!(
                (numeric - grad_in.as_slice()[idx]).abs() < 2e-2,
                "input grad mismatch at {idx}"
            );
        }
        // weight gradient spot checks
        for idx in [0usize, analytic_w.len() / 2, analytic_w.len() - 1] {
            let original = conv.weight.as_slice()[idx];
            conv.weight.as_mut_slice()[idx] = original + eps;
            let f_plus = conv.forward(&x, true).unwrap().sum();
            conv.weight.as_mut_slice()[idx] = original - eps;
            let f_minus = conv.forward(&x, true).unwrap().sum();
            conv.weight.as_mut_slice()[idx] = original;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic_w.as_slice()[idx]).abs() < 2e-2,
                "weight grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn depthwise_preserves_channel_count() {
        let mut rng = SeededRng::new(4);
        let mut dw = DepthwiseConv2d::new(6, 3, 1, 1, &mut rng).unwrap();
        let y = dw.forward(&Tensor::zeros(&[1, 6, 8, 8]), false).unwrap();
        assert_eq!(y.dims(), &[1, 6, 8, 8]);
    }

    #[test]
    fn depthwise_gradients_match_finite_differences() {
        let mut rng = SeededRng::new(5);
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, &mut rng).unwrap();
        let x = Initializer::HeNormal.create(&mut rng, &[1, 2, 4, 4], 9, 9);
        let out = dw.forward(&x, true).unwrap();
        dw.zero_grad();
        let grad_in = dw.backward(&Tensor::ones(out.dims())).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, x.len() / 2, x.len() - 1] {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (dw.forward(&plus, true).unwrap().sum()
                - dw.forward(&minus, true).unwrap().sum())
                / (2.0 * eps);
            assert!(
                (numeric - grad_in.as_slice()[idx]).abs() < 2e-2,
                "depthwise input grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn depthwise_channel_isolation() {
        // Zeroing one input channel must not change outputs of other channels.
        let mut rng = SeededRng::new(6);
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, &mut rng).unwrap();
        let mut x = Initializer::HeNormal.create(&mut rng, &[1, 2, 4, 4], 9, 9);
        let base = dw.forward(&x, false).unwrap();
        for v in x.as_mut_slice()[0..16].iter_mut() {
            *v = 0.0;
        }
        let altered = dw.forward(&x, false).unwrap();
        // channel 1 (second half) must be identical
        assert_eq!(&base.as_slice()[16..], &altered.as_slice()[16..]);
    }

    #[test]
    fn constructors_reject_zero_dims() {
        let mut rng = SeededRng::new(7);
        assert!(Conv2d::new(0, 1, 3, 1, 1, &mut rng).is_err());
        assert!(Conv2d::new(1, 1, 3, 0, 1, &mut rng).is_err());
        assert!(DepthwiseConv2d::new(0, 3, 1, 1, &mut rng).is_err());
    }

    #[test]
    fn param_counts() {
        let mut rng = SeededRng::new(8);
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng).unwrap();
        assert_eq!(conv.param_count(), 8 * 3 * 3 * 3 + 8);
        let dw = DepthwiseConv2d::new(8, 5, 1, 2, &mut rng).unwrap();
        assert_eq!(dw.param_count(), 8 * 5 * 5 + 8);
    }

    #[test]
    fn freezing_hides_conv_params() {
        let mut rng = SeededRng::new(9);
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, &mut rng).unwrap();
        assert!(conv.trainable_param_count() > 0);
        conv.set_trainable(false);
        assert_eq!(conv.trainable_param_count(), 0);
    }
}
