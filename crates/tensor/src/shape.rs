//! Shape bookkeeping for dense row-major tensors.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::Result;

/// The extents of a dense, row-major tensor.
///
/// A [`Shape`] is a thin wrapper around a `Vec<usize>` that knows how to
/// compute volumes, strides and flat offsets. It is used pervasively by
/// [`Tensor`](crate::Tensor).
///
/// # Example
///
/// ```
/// use ftensor::Shape;
///
/// let shape = Shape::new(&[2, 3, 4]);
/// assert_eq!(shape.volume(), 24);
/// assert_eq!(shape.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The extents of each dimension.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The extent of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::InvalidAxis {
                axis,
                rank: self.rank(),
            })
    }

    /// Total number of elements a tensor of this shape holds.
    ///
    /// A rank-0 shape has volume 1.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for axis in (0..self.rank().saturating_sub(1)).rev() {
            strides[axis] = strides[axis + 1] * self.dims[axis + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the index rank differs from
    /// the shape rank, or [`TensorError::IndexOutOfBounds`] if any component
    /// exceeds its extent.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                expected: self.rank(),
                actual: index.len(),
            });
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, bound: d });
            }
            flat += i * strides[axis];
        }
        Ok(flat)
    }

    /// Returns `true` if both shapes have identical extents.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }

    /// Interprets this shape as a matrix, returning `(rows, cols)`.
    ///
    /// Rank-1 shapes are treated as a single row; higher ranks collapse all
    /// leading dimensions into the row count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 shapes.
    pub fn as_matrix(&self) -> Result<(usize, usize)> {
        match self.rank() {
            0 => Err(TensorError::RankMismatch {
                expected: 2,
                actual: 0,
            }),
            1 => Ok((1, self.dims[0])),
            _ => {
                let cols = *self.dims.last().expect("non-empty dims");
                let rows = self.volume() / cols.max(1);
                Ok((rows, cols))
            }
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn volume_of_scalar_is_one() {
        assert_eq!(Shape::scalar().volume(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_walks_row_major_order() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[0, 2]).unwrap(), 2);
        assert_eq!(s.offset(&[1, 0]).unwrap(), 3);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 5);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn offset_rejects_wrong_rank() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(
            s.offset(&[1]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn as_matrix_collapses_leading_dims() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.as_matrix().unwrap(), (6, 4));
        let v = Shape::new(&[5]);
        assert_eq!(v.as_matrix().unwrap(), (1, 5));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2×3)");
    }

    proptest! {
        #[test]
        fn prop_volume_equals_product(dims in proptest::collection::vec(1usize..6, 0..4)) {
            let shape = Shape::new(&dims);
            prop_assert_eq!(shape.volume(), dims.iter().product::<usize>());
        }

        #[test]
        fn prop_offsets_are_unique_and_in_range(dims in proptest::collection::vec(1usize..5, 1..4)) {
            let shape = Shape::new(&dims);
            let mut seen = std::collections::HashSet::new();
            let mut index = vec![0usize; dims.len()];
            loop {
                let off = shape.offset(&index).unwrap();
                prop_assert!(off < shape.volume());
                prop_assert!(seen.insert(off));
                // increment the odometer
                let mut axis = dims.len();
                loop {
                    if axis == 0 { break; }
                    axis -= 1;
                    index[axis] += 1;
                    if index[axis] < dims[axis] { break; }
                    index[axis] = 0;
                    if axis == 0 {
                        // overflowed the most significant digit: done
                        prop_assert_eq!(seen.len(), shape.volume());
                        return Ok(());
                    }
                }
                if index.iter().all(|&i| i == 0) { break; }
            }
            prop_assert_eq!(seen.len(), shape.volume());
        }
    }
}
