//! Descriptive statistics helpers used by evaluators and reports.

use crate::tensor::Tensor;

/// Summary statistics over a set of scalar observations.
///
/// Used by the evaluator and benchmark harness to report accuracy /
/// unfairness distributions across seeds or episodes.
///
/// # Example
///
/// ```
/// use ftensor::stats::Summary;
///
/// let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std_dev: f32,
    /// Smallest observation.
    pub min: f32,
    /// Largest observation.
    pub max: f32,
}

impl Summary {
    /// Computes summary statistics from a slice of observations.
    ///
    /// Returns a zeroed summary when the slice is empty.
    pub fn from_values(values: &[f32]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f32>() / count as f32;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / count as f32;
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: values.iter().copied().fold(f32::INFINITY, f32::min),
            max: values.iter().copied().fold(f32::NEG_INFINITY, f32::max),
        }
    }
}

/// Mean L2 distance between corresponding rows of two matrices.
///
/// This is the primitive behind the paper's Figure 3 feature-variation
/// analysis: for a layer's feature maps from the majority group and the
/// minority group, the variation is the norm of the difference between the
/// group-mean feature vectors.
///
/// Returns `None` if shapes differ or either tensor is not rank-2.
pub fn mean_row_l2_distance(a: &Tensor, b: &Tensor) -> Option<f32> {
    let (ra, ca) = a.shape().as_matrix().ok()?;
    let (rb, cb) = b.shape().as_matrix().ok()?;
    if ca != cb || ra == 0 || rb == 0 {
        return None;
    }
    let mean_a = a.mean_axis(0).ok()?;
    let mean_b = b.mean_axis(0).ok()?;
    let diff = mean_a.sub(&mean_b).ok()?;
    Some(diff.l2_norm())
}

/// Pearson correlation coefficient between two equally sized samples.
///
/// Returns `None` when fewer than two points are supplied or either sample
/// has zero variance.
pub fn pearson(xs: &[f32], ys: &[f32]) -> Option<f32> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f32;
    let mx = xs.iter().sum::<f32>() / n;
    let my = ys.iter().sum::<f32>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx <= f32::EPSILON || vy <= f32::EPSILON {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_slice_is_zeroed() {
        let s = Summary::from_values(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_basic_statistics() {
        let s = Summary::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-6);
        assert!((s.std_dev - 2.0).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn row_distance_zero_for_identical_groups() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 1.0, 2.0], &[2, 2]).unwrap();
        let d = mean_row_l2_distance(&a, &a).unwrap();
        assert!(d.abs() < 1e-6);
    }

    #[test]
    fn row_distance_detects_shift() {
        let a = Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 3.0, 4.0], &[2, 2]).unwrap();
        let d = mean_row_l2_distance(&a, &b).unwrap();
        assert!((d - 5.0).abs() < 1e-5);
    }

    #[test]
    fn row_distance_rejects_mismatched_columns() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(mean_row_l2_distance(&a, &b).is_none());
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-6);
        let neg = [-2.0, -4.0, -6.0, -8.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_rejects_degenerate_input() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }
}
