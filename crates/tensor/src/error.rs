//! Error type shared by all tensor operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor operations.
///
/// Every public operation in this crate that can fail returns a
/// [`TensorError`] rather than panicking, so that higher layers (the
/// trainer, the NAS evaluator) can turn malformed architectures into
/// rejected candidates instead of crashes.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The number of elements supplied does not match the requested shape.
    LengthMismatch {
        /// Number of elements provided by the caller.
        provided: usize,
        /// Number of elements implied by the requested shape.
        expected: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// Columns of the left-hand matrix.
        left_cols: usize,
        /// Rows of the right-hand matrix.
        right_rows: usize,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Rank expected by the operation.
        expected: usize,
        /// Rank of the tensor that was supplied.
        actual: usize,
    },
    /// An index was outside the bounds of the tensor.
    IndexOutOfBounds {
        /// The offending flat or per-axis index.
        index: usize,
        /// The bound that was exceeded.
        bound: usize,
    },
    /// An axis argument referred to a dimension the tensor does not have.
    InvalidAxis {
        /// The requested axis.
        axis: usize,
        /// The rank of the tensor.
        rank: usize,
    },
    /// A parameter was outside its valid range (e.g. zero-sized dimension).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { provided, expected } => write!(
                f,
                "data length {provided} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matrix product inner dimensions differ: {left_cols} vs {right_rows}"
            ),
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected a rank-{expected} tensor, got rank {actual}")
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} is out of bounds for size {bound}")
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} is invalid for a rank-{rank} tensor")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch_mentions_both_sizes() {
        let err = TensorError::LengthMismatch {
            provided: 3,
            expected: 4,
        };
        let text = err.to_string();
        assert!(text.contains('3'));
        assert!(text.contains('4'));
    }

    #[test]
    fn display_shape_mismatch_mentions_shapes() {
        let err = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![4],
        };
        let text = err.to_string();
        assert!(text.contains("[2, 3]"));
        assert!(text.contains("[4]"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn error_implements_std_error() {
        let err: Box<dyn Error> = Box::new(TensorError::InvalidArgument("x".into()));
        assert!(err.source().is_none());
    }
}
