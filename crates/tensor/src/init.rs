//! Seeded random number generation and weight initialisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// A deterministic random number generator used across the workspace.
///
/// Every stochastic component in the reproduction (dataset synthesis, weight
/// initialisation, controller sampling, surrogate noise) draws from a
/// [`SeededRng`], so a fixed seed reproduces a full experiment bit-for-bit.
///
/// # Example
///
/// ```
/// use ftensor::SeededRng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        if (hi - lo).abs() < f32::EPSILON {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        // Box–Muller transform; u1 is kept away from 0 to avoid ln(0).
        let u1: f32 = self.inner.gen_range(1e-7f32..1.0);
        let u2: f32 = self.inner.gen_range(0.0f32..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        mean + std * z
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below requires n > 0");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Samples an index from an (unnormalised) non-negative weight vector.
    ///
    /// Falls back to the last index on numerical underflow so the caller
    /// always receives a valid index.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn sample_weighted(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "sample_weighted requires weights");
        let total: f32 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 {
            return self.below(weights.len());
        }
        let mut target = self.uniform(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Derives an independent generator for a sub-component, so parallel
    /// components do not share a stream.
    pub fn fork(&mut self, label: u64) -> SeededRng {
        let seed = self.inner.gen::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(seed)
    }
}

/// Weight-initialisation schemes for neural layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Initializer {
    /// All zeros (used for biases).
    Zeros,
    /// Uniform in `[-bound, bound]` with `bound = sqrt(6 / (fan_in + fan_out))`.
    #[default]
    XavierUniform,
    /// Normal with `std = sqrt(2 / fan_in)` (He initialisation for ReLU nets).
    HeNormal,
    /// Uniform in `[-0.08, 0.08]` — the classic small-range LSTM init.
    SmallUniform,
}

impl Initializer {
    /// Creates an initialised tensor with the given dims and fan sizes.
    pub fn create(
        &self,
        rng: &mut SeededRng,
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
    ) -> Tensor {
        let volume: usize = dims.iter().product();
        let data: Vec<f32> = match self {
            Initializer::Zeros => vec![0.0; volume],
            Initializer::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                (0..volume).map(|_| rng.uniform(-bound, bound)).collect()
            }
            Initializer::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                (0..volume).map(|_| rng.normal(0.0, std)).collect()
            }
            Initializer::SmallUniform => (0..volume).map(|_| rng.uniform(-0.08, 0.08)).collect(),
        };
        Tensor::from_vec(data, dims).expect("volume matches dims by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let xs: Vec<f32> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let ys: Vec<f32> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = SeededRng::new(11);
        let samples: Vec<f32> = (0..4000).map(|_| rng.normal(2.0, 0.5)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / samples.len() as f32;
        let var: f32 =
            samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / samples.len() as f32;
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 0.25).abs() < 0.05, "variance was {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SeededRng::new(3);
        for _ in 0..100 {
            assert!(rng.below(5) < 5);
        }
    }

    #[test]
    fn sample_weighted_prefers_heavy_index() {
        let mut rng = SeededRng::new(5);
        let weights = [0.01, 0.01, 10.0];
        let mut counts = [0usize; 3];
        for _ in 0..200 {
            counts[rng.sample_weighted(&weights)] += 1;
        }
        assert!(counts[2] > 150);
    }

    #[test]
    fn sample_weighted_handles_all_zero() {
        let mut rng = SeededRng::new(5);
        let idx = rng.sample_weighted(&[0.0, 0.0, 0.0]);
        assert!(idx < 3);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SeededRng::new(9);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }

    #[test]
    fn initializers_have_expected_scale() {
        let mut rng = SeededRng::new(13);
        let zeros = Initializer::Zeros.create(&mut rng, &[4, 4], 4, 4);
        assert!(zeros.as_slice().iter().all(|&v| v == 0.0));

        let xavier = Initializer::XavierUniform.create(&mut rng, &[64, 64], 64, 64);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(xavier.as_slice().iter().all(|&v| v.abs() <= bound + 1e-6));

        let he = Initializer::HeNormal.create(&mut rng, &[256, 4], 256, 4);
        let std = he.as_slice().iter().map(|v| v * v).sum::<f32>() / he.len() as f32;
        assert!((std.sqrt() - (2.0 / 256.0f32).sqrt()).abs() < 0.02);

        let small = Initializer::SmallUniform.create(&mut rng, &[8, 8], 8, 8);
        assert!(small.as_slice().iter().all(|&v| v.abs() <= 0.08));
    }
}
