//! Reusable scratch buffers for the evaluation hot path.
//!
//! Candidate evaluation runs the same network shapes over and over; the
//! [`Scratch`] arena recycles the backing `Vec<f32>` of every intermediate
//! so steady-state evaluation performs **zero heap allocation**: the first
//! episode warms the pool, every later episode draws from it. Buffers are
//! keyed by *length* (not shape), since a `Vec<f32>` of the right length can
//! back any tensor of that volume.
//!
//! The arena is deliberately not thread-safe — each worker thread (or
//! episode) owns its own `Scratch`, which is what keeps it free of locks and
//! keeps buffer hand-out order deterministic. The [`Scratch::allocations`] /
//! [`Scratch::reuses`] counters make the zero-steady-state-allocation claim
//! testable (see `scratch_steady_state_reuses_everything` below and the
//! campaign counters exported through the runtime's `MetricsRegistry`).

use crate::tensor::Tensor;
use std::collections::HashMap;

/// A pool of recycled `f32` buffers keyed by length.
#[derive(Debug, Default)]
pub struct Scratch {
    pools: HashMap<usize, Vec<Vec<f32>>>,
    allocations: u64,
    reuses: u64,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a zeroed buffer of exactly `len` elements, recycling a
    /// pooled one when available.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match self.pools.get_mut(&len).and_then(Vec::pop) {
            Some(mut buf) => {
                self.reuses += 1;
                buf.iter_mut().for_each(|v| *v = 0.0);
                buf
            }
            None => {
                self.allocations += 1;
                vec![0.0f32; len]
            }
        }
    }

    /// Hands out a buffer of `len` elements without zeroing it. The caller
    /// must overwrite every element before reading.
    pub fn take_uninit(&mut self, len: usize) -> Vec<f32> {
        match self.pools.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => {
                self.reuses += 1;
                buf
            }
            None => {
                self.allocations += 1;
                vec![0.0f32; len]
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn release(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        self.pools.entry(buf.len()).or_default().push(buf);
    }

    /// Hands out a zeroed tensor of the given shape backed by a pooled
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `dims` describe a zero-volume shape the tensor type
    /// rejects; all hot-path call sites use validated layer shapes.
    pub fn take_tensor(&mut self, dims: &[usize]) -> Tensor {
        let len = dims.iter().product::<usize>();
        let buf = self.take(len);
        Tensor::from_vec(buf, dims).expect("scratch buffer length matches requested dims")
    }

    /// Recycles a tensor's backing buffer into the pool.
    pub fn release_tensor(&mut self, t: Tensor) {
        self.release(t.into_vec());
    }

    /// Number of fresh heap allocations this arena has performed.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of hand-outs served from the pool without allocating.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Drops every pooled buffer (counters are retained).
    pub fn clear(&mut self) {
        self.pools.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_release_recycles_buffer() {
        let mut s = Scratch::new();
        let a = s.take(16);
        assert_eq!(s.allocations(), 1);
        s.release(a);
        let b = s.take(16);
        assert_eq!(s.allocations(), 1, "second take must come from the pool");
        assert_eq!(s.reuses(), 1);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scratch_steady_state_reuses_everything() {
        // Simulate episodes: after the first warms the pool, no episode
        // allocates. This is the shape of the zero-steady-state-allocation
        // assertion used by the evaluator tests.
        let mut s = Scratch::new();
        let shapes: [&[usize]; 3] = [&[4, 8], &[8], &[4, 3]];
        for episode in 0..5 {
            let baseline = s.allocations();
            let tensors: Vec<Tensor> = shapes.iter().map(|d| s.take_tensor(d)).collect();
            for t in tensors {
                s.release_tensor(t);
            }
            if episode > 0 {
                assert_eq!(s.allocations(), baseline, "steady state must not allocate");
            }
        }
        assert_eq!(s.allocations(), shapes.len() as u64);
        assert_eq!(s.reuses(), 4 * shapes.len() as u64);
    }

    #[test]
    fn take_tensor_zeroes_recycled_data() {
        let mut s = Scratch::new();
        let mut t = s.take_tensor(&[2, 2]);
        t.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        s.release_tensor(t);
        let again = s.take_tensor(&[2, 2]);
        assert!(again.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn distinct_lengths_pool_independently() {
        let mut s = Scratch::new();
        let a = s.take(8);
        let b = s.take(4);
        s.release(a);
        s.release(b);
        let _ = s.take(8);
        let _ = s.take(4);
        assert_eq!(s.allocations(), 2);
        assert_eq!(s.reuses(), 2);
    }
}
