//! Neural-network oriented elementwise and reduction operators.

use crate::error::TensorError;
use crate::kernels;
use crate::tensor::Tensor;
use crate::Result;

impl Tensor {
    /// Rectified linear unit, `max(0, x)` elementwise.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// ReLU6, `min(max(0, x), 6)` elementwise — the activation used by
    /// MobileNetV2-style blocks.
    pub fn relu6(&self) -> Tensor {
        self.map(|v| v.clamp(0.0, 6.0))
    }

    /// Logistic sigmoid elementwise.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// Hyperbolic tangent elementwise.
    pub fn tanh(&self) -> Tensor {
        self.map(|v| v.tanh())
    }

    /// Numerically stable softmax over the last axis.
    ///
    /// For a rank-1 tensor this is the usual softmax; for rank-2 the softmax
    /// is applied independently to every row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 tensors.
    pub fn softmax(&self) -> Result<Tensor> {
        let (rows, cols) = self.shape().as_matrix()?;
        if cols == 0 {
            return Err(TensorError::InvalidArgument(
                "softmax requires a non-empty last axis".into(),
            ));
        }
        let mut out = vec![0.0f32; self.len()];
        kernels::softmax_into(self.as_slice(), &mut out, rows, cols);
        Tensor::from_vec(out, self.dims())
    }

    /// Softmax over the last axis written into a borrowed output slice of
    /// the same volume — the allocation-free form of [`Tensor::softmax`].
    ///
    /// # Errors
    ///
    /// Same as [`Tensor::softmax`], plus [`TensorError::LengthMismatch`] if
    /// `out` has a different volume.
    pub fn softmax_into(&self, out: &mut [f32]) -> Result<()> {
        let (rows, cols) = self.shape().as_matrix()?;
        if cols == 0 {
            return Err(TensorError::InvalidArgument(
                "softmax requires a non-empty last axis".into(),
            ));
        }
        if out.len() != self.len() {
            return Err(TensorError::LengthMismatch {
                provided: out.len(),
                expected: self.len(),
            });
        }
        kernels::softmax_into(self.as_slice(), out, rows, cols);
        Ok(())
    }

    /// Natural logarithm applied elementwise, with values clamped away from
    /// zero to keep the result finite.
    pub fn ln_clamped(&self) -> Tensor {
        self.map(|v| v.max(1e-12).ln())
    }

    /// Sums a rank-2 tensor along `axis` (0 = down columns, 1 = across rows).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank-2 or
    /// [`TensorError::InvalidAxis`] for axes other than 0/1.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        let (rows, cols) = match self.dims() {
            [r, c] => (*r, *c),
            dims => {
                return Err(TensorError::RankMismatch {
                    expected: 2,
                    actual: dims.len(),
                })
            }
        };
        let src = self.as_slice();
        match axis {
            0 => {
                let mut out = vec![0.0f32; cols];
                kernels::sum_axis0_into(src, &mut out, rows, cols);
                Tensor::from_vec(out, &[cols])
            }
            1 => {
                let mut out = vec![0.0f32; rows];
                kernels::sum_axis1_into(src, &mut out, rows, cols);
                Tensor::from_vec(out, &[rows])
            }
            _ => Err(TensorError::InvalidAxis { axis, rank: 2 }),
        }
    }

    /// Mean of a rank-2 tensor along `axis`.
    ///
    /// # Errors
    ///
    /// Same as [`Tensor::sum_axis`].
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        let (rows, cols) = match self.dims() {
            [r, c] => (*r, *c),
            dims => {
                return Err(TensorError::RankMismatch {
                    expected: 2,
                    actual: dims.len(),
                })
            }
        };
        let divisor = match axis {
            0 => rows as f32,
            1 => cols as f32,
            _ => return Err(TensorError::InvalidAxis { axis, rank: 2 }),
        };
        Ok(self.sum_axis(axis)?.scale(1.0 / divisor.max(1.0)))
    }

    /// Per-row argmax of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank-2.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        let mut out = Vec::new();
        self.argmax_rows_into(&mut out)?;
        Ok(out)
    }

    /// Per-row argmax appended into a caller-owned buffer (cleared first) —
    /// the allocation-free form of [`Tensor::argmax_rows`], which reuses the
    /// buffer's capacity across episodes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank-2.
    pub fn argmax_rows_into(&self, out: &mut Vec<usize>) -> Result<()> {
        let (rows, cols) = match self.dims() {
            [r, c] => (*r, *c),
            dims => {
                return Err(TensorError::RankMismatch {
                    expected: 2,
                    actual: dims.len(),
                })
            }
        };
        let src = self.as_slice();
        out.clear();
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for (c, &v) in row.iter().enumerate() {
                if v > best_v {
                    best = c;
                    best_v = v;
                }
            }
            out.push(best);
        }
        Ok(())
    }

    /// Clips every element into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (programmer error, mirrors `f32::clamp`).
    pub fn clip(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clip requires lo <= hi");
        self.map(|v| v.clamp(lo, hi))
    }

    /// Adds a rank-1 bias vector to every row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if ranks or sizes do not agree.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        let (rows, cols) = match self.dims() {
            [r, c] => (*r, *c),
            dims => {
                return Err(TensorError::RankMismatch {
                    expected: 2,
                    actual: dims.len(),
                })
            }
        };
        if bias.len() != cols {
            return Err(TensorError::LengthMismatch {
                provided: bias.len(),
                expected: cols,
            });
        }
        let mut out = self.as_slice().to_vec();
        Self::broadcast_rows(&mut out, bias.as_slice(), rows, cols);
        Tensor::from_vec(out, &[rows, cols])
    }

    /// Adds a rank-1 bias vector to every row of a borrowed `(rows × cols)`
    /// buffer in place — the allocation-free form of
    /// [`Tensor::add_row_broadcast`], applied after a
    /// [`Tensor::matmul_into`] on the hot path.
    ///
    /// # Errors
    ///
    /// Returns an error if `bias.len() != cols` or the buffer volume is not
    /// `rows * cols`.
    pub fn add_row_broadcast_in_place(
        out: &mut [f32],
        bias: &Tensor,
        rows: usize,
        cols: usize,
    ) -> Result<()> {
        if bias.len() != cols {
            return Err(TensorError::LengthMismatch {
                provided: bias.len(),
                expected: cols,
            });
        }
        if out.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                provided: out.len(),
                expected: rows * cols,
            });
        }
        Self::broadcast_rows(out, bias.as_slice(), rows, cols);
        Ok(())
    }

    fn broadcast_rows(out: &mut [f32], bias: &[f32], rows: usize, cols: usize) {
        for r in 0..rows {
            let row = &mut out[r * cols..(r + 1) * cols];
            kernels::zip_into_inplace(row, bias, |a, b| a + b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_zeroes_negatives() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(t.relu().as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu6_saturates() {
        let t = Tensor::from_vec(vec![-1.0, 3.0, 9.0], &[3]).unwrap();
        assert_eq!(t.relu6().as_slice(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_monotone() {
        let t = Tensor::from_vec(vec![-10.0, 0.0, 10.0], &[3]).unwrap();
        let s = t.sigmoid();
        assert!(s.as_slice()[0] < 0.01);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(s.as_slice()[2] > 0.99);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]).unwrap();
        let s = t.softmax().unwrap();
        let row0: f32 = s.as_slice()[0..3].iter().sum();
        let row1: f32 = s.as_slice()[3..6].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-5);
        assert!((row1 - 1.0).abs() < 1e-5);
        // uniform logits give uniform probabilities
        assert!((s.as_slice()[3] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[2]).unwrap();
        let s = t.softmax().unwrap();
        assert!(s.is_finite());
        assert!(s.as_slice()[1] > s.as_slice()[0]);
    }

    #[test]
    fn sum_axis_directions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_axis(0).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis(1).unwrap().as_slice(), &[6.0, 15.0]);
        assert!(t.sum_axis(2).is_err());
    }

    #[test]
    fn mean_axis_divides_by_extent() {
        let t = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[2, 2]).unwrap();
        assert_eq!(t.mean_axis(0).unwrap().as_slice(), &[4.0, 6.0]);
        assert_eq!(t.mean_axis(1).unwrap().as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 0.1, 0.3], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 2]);
    }

    #[test]
    fn add_row_broadcast_adds_bias() {
        let t = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let r = t.add_row_broadcast(&b).unwrap();
        assert_eq!(r.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn add_row_broadcast_in_place_matches_owned() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![0.5, -0.5, 1.0], &[3]).unwrap();
        let mut buf = t.as_slice().to_vec();
        Tensor::add_row_broadcast_in_place(&mut buf, &b, 2, 3).unwrap();
        assert_eq!(&buf, t.add_row_broadcast(&b).unwrap().as_slice());
        assert!(Tensor::add_row_broadcast_in_place(&mut buf, &b, 2, 2).is_err());
    }

    #[test]
    fn softmax_into_matches_owned() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]).unwrap();
        let mut out = vec![0.0f32; 6];
        t.softmax_into(&mut out).unwrap();
        for (a, b) in out.iter().zip(t.softmax().unwrap().as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let mut short = vec![0.0f32; 5];
        assert!(t.softmax_into(&mut short).is_err());
    }

    #[test]
    fn argmax_rows_into_reuses_buffer() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 0.1, 0.3], &[2, 3]).unwrap();
        let mut buf = vec![7usize; 9]; // stale contents must be cleared
        t.argmax_rows_into(&mut buf).unwrap();
        assert_eq!(buf, vec![1, 2]);
        let v = Tensor::zeros(&[3]);
        assert!(v.argmax_rows_into(&mut buf).is_err());
    }

    #[test]
    fn clip_bounds_values() {
        let t = Tensor::from_vec(vec![-5.0, 0.5, 5.0], &[3]).unwrap();
        assert_eq!(t.clip(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
    }

    proptest! {
        #[test]
        fn prop_softmax_probabilities(values in proptest::collection::vec(-20.0f32..20.0, 1..16)) {
            let n = values.len();
            let t = Tensor::from_vec(values, &[n]).unwrap();
            let s = t.softmax().unwrap();
            let total: f32 = s.as_slice().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
            prop_assert!(s.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }

        #[test]
        fn prop_relu_is_idempotent(values in proptest::collection::vec(-10.0f32..10.0, 1..16)) {
            let n = values.len();
            let t = Tensor::from_vec(values, &[n]).unwrap();
            let once = t.relu();
            let twice = once.relu();
            prop_assert_eq!(twice.as_slice(), once.as_slice());
        }

        #[test]
        fn prop_sigmoid_in_unit_interval(values in proptest::collection::vec(-50.0f32..50.0, 1..16)) {
            let n = values.len();
            let t = Tensor::from_vec(values, &[n]).unwrap();
            prop_assert!(t.sigmoid().as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
