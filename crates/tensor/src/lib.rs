//! `ftensor` — a minimal dense tensor substrate.
//!
//! This crate provides the numerical foundation used by the rest of the
//! FaHaNa reproduction: a row-major `f32` [`Tensor`] with shape bookkeeping,
//! elementwise arithmetic, matrix multiplication, reductions, the activation
//! and normalisation primitives needed by the [`neural`] crate, and seeded
//! random initialisation.
//!
//! The design goal is *predictability over raw speed*: everything is safe
//! Rust over a flat `Vec<f32>`, and all fallible operations return a
//! [`TensorError`] rather than panicking, so the NAS search loop can treat a
//! shape mismatch as an evaluation failure instead of a crash.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), ftensor::TensorError> {
//! use ftensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```
//!
//! [`neural`]: https://docs.rs/neural

pub mod error;
pub mod init;
pub mod kernels;
pub mod linalg;
pub mod ops;
pub mod scratch;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use error::TensorError;
pub use init::{Initializer, SeededRng};
pub use scratch::Scratch;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
