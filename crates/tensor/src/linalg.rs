//! Matrix-level linear algebra on [`Tensor`].

use crate::error::TensorError;
use crate::kernels;
use crate::tensor::Tensor;
use crate::Result;

impl Tensor {
    /// Matrix product of two rank-2 tensors (rank-1 tensors are treated as a
    /// single row).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulDimMismatch`] if the inner dimensions do
    /// not agree, or [`TensorError::RankMismatch`] for rank-0 operands.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), ftensor::TensorError> {
    /// use ftensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?, a);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k_left) = self.shape().as_matrix()?;
        let (k_right, n) = other.shape().as_matrix()?;
        if k_left != k_right {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: k_left,
                right_rows: k_right,
            });
        }
        let mut out = vec![0.0f32; m * n];
        kernels::matmul_into(self.as_slice(), other.as_slice(), &mut out, m, k_left, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product written into a borrowed, pre-zeroed output slice of
    /// length `m * n` — the allocation-free form of [`Tensor::matmul`] used
    /// with a [`crate::Scratch`] arena on the evaluation hot path.
    ///
    /// # Errors
    ///
    /// Returns the same dimension errors as [`Tensor::matmul`], plus
    /// [`TensorError::LengthMismatch`] if `out` is not `m * n` long.
    pub fn matmul_into(&self, other: &Tensor, out: &mut [f32]) -> Result<()> {
        let (m, k_left) = self.shape().as_matrix()?;
        let (k_right, n) = other.shape().as_matrix()?;
        if k_left != k_right {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: k_left,
                right_rows: k_right,
            });
        }
        if out.len() != m * n {
            return Err(TensorError::LengthMismatch {
                provided: out.len(),
                expected: m * n,
            });
        }
        out.iter_mut().for_each(|v| *v = 0.0);
        kernels::matmul_into(self.as_slice(), other.as_slice(), out, m, k_left, n);
        Ok(())
    }

    /// Transposes a rank-2 tensor (rank-1 becomes a column matrix).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for tensors of rank other than
    /// 1 or 2.
    pub fn transpose(&self) -> Result<Tensor> {
        match self.dims() {
            [n] => Tensor::from_vec(self.as_slice().to_vec(), &[*n, 1]),
            [r, c] => {
                let (rows, cols) = (*r, *c);
                let src = self.as_slice();
                let mut out = vec![0.0f32; rows * cols];
                for i in 0..rows {
                    for j in 0..cols {
                        out[j * rows + i] = src[i * cols + j];
                    }
                }
                Tensor::from_vec(out, &[cols, rows])
            }
            dims => Err(TensorError::RankMismatch {
                expected: 2,
                actual: dims.len(),
            }),
        }
    }

    /// Matrix-vector product `self · v` where `self` is `(m × n)` and `v` has
    /// length `n`.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if the sizes do not agree.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        let (m, n) = self.shape().as_matrix()?;
        if v.len() != n {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: n,
                right_rows: v.len(),
            });
        }
        let mut out = vec![0.0f32; m];
        kernels::matvec_into(self.as_slice(), v.as_slice(), &mut out, m, n);
        Tensor::from_vec(out, &[m])
    }

    /// Matrix-vector product written into a borrowed output slice of length
    /// `m` — the allocation-free form of [`Tensor::matvec`].
    ///
    /// # Errors
    ///
    /// Returns the same dimension errors as [`Tensor::matvec`], plus
    /// [`TensorError::LengthMismatch`] if `out` is not `m` long.
    pub fn matvec_into(&self, v: &Tensor, out: &mut [f32]) -> Result<()> {
        let (m, n) = self.shape().as_matrix()?;
        if v.len() != n {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: n,
                right_rows: v.len(),
            });
        }
        if out.len() != m {
            return Err(TensorError::LengthMismatch {
                provided: out.len(),
                expected: m,
            });
        }
        kernels::matvec_into(self.as_slice(), v.as_slice(), out, m, n);
        Ok(())
    }

    /// Outer product of two rank-1 tensors, producing an `(m × n)` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not rank-1.
    pub fn outer(&self, other: &Tensor) -> Result<Tensor> {
        if self.dims().len() != 1 || other.dims().len() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: self.dims().len().max(other.dims().len()),
            });
        }
        let m = self.len();
        let n = other.len();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = self.as_slice()[i] * other.as_slice()[j];
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Dot product of two tensors of identical volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the volumes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(kernels::dot(self.as_slice(), other.as_slice()))
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// Hot paths should prefer the borrowing [`Tensor::row_slice`]; this
    /// owned form remains for callers that need an independent tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank-2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        self.row_slice(i)
            .and_then(|row| Tensor::from_vec(row.to_vec(), &[row.len()]))
    }

    /// Borrows row `i` of a rank-2 tensor as a slice — the allocation-free
    /// companion of [`Tensor::row`].
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank-2 or `i` is out of bounds.
    pub fn row_slice(&self, i: usize) -> Result<&[f32]> {
        match self.dims() {
            [rows, cols] => {
                if i >= *rows {
                    return Err(TensorError::IndexOutOfBounds {
                        index: i,
                        bound: *rows,
                    });
                }
                let start = i * cols;
                Ok(&self.as_slice()[start..start + cols])
            }
            dims => Err(TensorError::RankMismatch {
                expected: 2,
                actual: dims.len(),
            }),
        }
    }

    /// Overwrites row `i` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/bounds mismatch or if `row.len()` differs
    /// from the column count.
    pub fn set_row(&mut self, i: usize, row: &Tensor) -> Result<()> {
        let (rows, cols) = match self.dims() {
            [r, c] => (*r, *c),
            dims => {
                return Err(TensorError::RankMismatch {
                    expected: 2,
                    actual: dims.len(),
                })
            }
        };
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: i,
                bound: rows,
            });
        }
        if row.len() != cols {
            return Err(TensorError::LengthMismatch {
                provided: row.len(),
                expected: cols,
            });
        }
        let start = i * cols;
        self.as_mut_slice()[start..start + cols].copy_from_slice(row.as_slice());
        Ok(())
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor
    /// (`rows × len`).
    ///
    /// # Errors
    ///
    /// Returns an error if `rows` is empty or lengths differ.
    pub fn stack_rows(rows: &[Tensor]) -> Result<Tensor> {
        let first = rows.first().ok_or_else(|| {
            TensorError::InvalidArgument("stack_rows requires at least one row".into())
        })?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(TensorError::LengthMismatch {
                    provided: row.len(),
                    expected: cols,
                });
            }
            data.extend_from_slice(row.as_slice());
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let id = Tensor::eye(3);
        assert_eq!(a.matmul(&id).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = a.transpose().unwrap().transpose().unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let v = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let mv = a.matvec(&v).unwrap();
        assert_eq!(mv.as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let u = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let v = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let o = u.outer(&v).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn dot_product() {
        let u = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let v = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(u.dot(&v).unwrap(), 32.0);
    }

    #[test]
    fn matmul_into_matches_owned() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let mut out = [9.0f32; 4]; // pre-existing garbage must be cleared
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(&out, a.matmul(&b).unwrap().as_slice());
        let mut short = [0.0f32; 3];
        assert!(a.matmul_into(&b, &mut short).is_err());
    }

    #[test]
    fn matvec_into_matches_owned() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let v = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let mut out = [0.0f32; 2];
        a.matvec_into(&v, &mut out).unwrap();
        assert_eq!(&out, a.matvec(&v).unwrap().as_slice());
        let mut short = [0.0f32; 1];
        assert!(a.matvec_into(&v, &mut short).is_err());
    }

    #[test]
    fn row_slice_borrows_row() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(m.row_slice(1).unwrap(), &[4.0, 5.0, 6.0]);
        assert!(m.row_slice(2).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.row_slice(0).is_err());
    }

    #[test]
    fn row_and_set_row_round_trip() {
        let mut m = Tensor::zeros(&[2, 3]);
        let r = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        m.set_row(1, &r).unwrap();
        assert_eq!(m.row(1).unwrap(), r);
        assert_eq!(m.row(0).unwrap().as_slice(), &[0.0, 0.0, 0.0]);
        assert!(m.row(2).is_err());
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let rows = vec![
            Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap(),
            Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap(),
        ];
        let m = Tensor::stack_rows(&rows).unwrap();
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(Tensor::stack_rows(&[]).is_err());
    }

    proptest! {
        #[test]
        fn prop_matmul_identity(values in proptest::collection::vec(-5.0f32..5.0, 9..=9)) {
            let a = Tensor::from_vec(values, &[3, 3]).unwrap();
            let id = Tensor::eye(3);
            let prod = a.matmul(&id).unwrap();
            for (x, y) in prod.as_slice().iter().zip(a.as_slice().iter()) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }

        #[test]
        fn prop_transpose_preserves_sum(values in proptest::collection::vec(-5.0f32..5.0, 12..=12)) {
            let a = Tensor::from_vec(values, &[3, 4]).unwrap();
            let t = a.transpose().unwrap();
            prop_assert!((a.sum() - t.sum()).abs() < 1e-4);
        }

        #[test]
        fn prop_dot_symmetry(u in proptest::collection::vec(-3.0f32..3.0, 1..16)) {
            let n = u.len();
            let a = Tensor::from_vec(u.clone(), &[n]).unwrap();
            let b = Tensor::from_vec(u.into_iter().map(|x| x * 0.5).collect(), &[n]).unwrap();
            prop_assert!((a.dot(&b).unwrap() - b.dot(&a).unwrap()).abs() < 1e-4);
        }
    }
}
