//! The dense row-major tensor type.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::kernels;
use crate::shape::Shape;
use crate::Result;

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` is the workhorse value type of the FaHaNa reproduction: it backs
/// network weights, activations, controller states and feature maps. All
/// arithmetic is implemented in safe Rust over a flat `Vec<f32>`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ftensor::TensorError> {
/// use ftensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3])?;
/// let y = x.map(|v| v.max(0.0));
/// assert_eq!(y.as_slice(), &[1.0, 0.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![1.0; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a square identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the volume of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                provided: data.len(),
                expected: shape.volume(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The extents of this tensor as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A read-only view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its underlying data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or bounds are invalid.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        let off = self.shape.offset(index)?;
        Ok(self.data[off])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or bounds are invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy reshaped to `dims`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.volume() != self.len() {
            return Err(TensorError::LengthMismatch {
                provided: self.len(),
                expected: shape.volume(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let mut data = vec![0.0f32; self.data.len()];
        kernels::map_into(&self.data, &mut data, f);
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` to every element, writing into a borrowed output slice —
    /// the allocation-free form of [`Tensor::map`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `out` has a different
    /// length.
    pub fn map_into<F: Fn(f32) -> f32>(&self, out: &mut [f32], f: F) -> Result<()> {
        if out.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                provided: out.len(),
                expected: self.data.len(),
            });
        }
        kernels::map_into(&self.data, out, f);
        Ok(())
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let mut data = vec![0.0f32; self.data.len()];
        kernels::zip_into(&self.data, &other.data, &mut data, f);
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        kernels::zip_into_inplace(&mut self.data, &other.data, |a, b| a + b);
        Ok(())
    }

    /// Multiplies every element by `scale`.
    pub fn scale(&self, scale: f32) -> Tensor {
        self.map(|v| v * scale)
    }

    /// Accumulates `scale * other` into `self` (AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) -> Result<()> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        kernels::axpy_into(scale, &other.data, &mut self.data);
        Ok(())
    }

    /// Sets every element to zero, keeping the shape.
    pub fn fill_zero(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (positive infinity for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the largest element (flat, row-major). Returns 0 for empty.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// Euclidean (L2) norm of all elements.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (L1 norm).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_ones_have_expected_contents() {
        assert!(Tensor::zeros(&[2, 2]).as_slice().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones(&[3]).as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_eq!(t.get(&[i, j]).unwrap(), expected);
            }
        }
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn elementwise_ops_respect_shapes() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-2.0, -2.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[3.0, 8.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates_scaled_values() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn reductions_are_correct() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.l1_norm(), 6.0);
        assert!((t.l2_norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.is_finite());
        t.as_mut_slice()[0] = f32::NAN;
        assert!(!t.is_finite());
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::ones(&[2, 2]);
        assert!(!t.to_string().is_empty());
    }

    proptest! {
        #[test]
        fn prop_add_commutes(values in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
            let n = values.len();
            let a = Tensor::from_vec(values.clone(), &[n]).unwrap();
            let b = Tensor::from_vec(values.iter().rev().copied().collect(), &[n]).unwrap();
            let ab = a.add(&b).unwrap();
            let ba = b.add(&a).unwrap();
            prop_assert_eq!(ab.as_slice(), ba.as_slice());
        }

        #[test]
        fn prop_scale_then_sum_matches(values in proptest::collection::vec(-10.0f32..10.0, 1..32), k in -4.0f32..4.0) {
            let n = values.len();
            let t = Tensor::from_vec(values.clone(), &[n]).unwrap();
            let scaled_sum = t.scale(k).sum();
            let expected: f32 = values.iter().map(|v| v * k).sum();
            prop_assert!((scaled_sum - expected).abs() < 1e-3);
        }

        #[test]
        fn prop_l2_norm_is_nonnegative(values in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let n = values.len();
            let t = Tensor::from_vec(values, &[n]).unwrap();
            prop_assert!(t.l2_norm() >= 0.0);
        }
    }
}
