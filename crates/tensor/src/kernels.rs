//! Lane-chunked `f32` compute kernels behind the tensor hot path.
//!
//! Every kernel here is written in a **fixed-order, lane-chunked** form: the
//! inner loops walk the data in `[f32; LANES]` chunks whose iteration order
//! is pinned, so the autovectorizer can lift them to SIMD while the result
//! stays bit-identical on every machine, thread count and chunk boundary.
//! Determinism is the contract the campaign runtime builds on (parallel ==
//! serial == cached, see `fahana-runtime/tests/determinism.rs`), so *which*
//! order each kernel uses is part of its API:
//!
//! * [`matmul_into`], [`softmax_into`], [`sum_axis0_into`] and the
//!   elementwise kernels accumulate in exactly the order the original scalar
//!   implementations used (per-output-element accumulation never
//!   reassociates), so results are bit-identical to the pre-kernel code and
//!   recorded campaign goldens do not move. The lanes run across
//!   *independent* output elements.
//! * [`dot`], [`matvec_into`] and [`sum_axis1_into`] are genuine lane
//!   reductions: `LANES` partial accumulators filled in chunk order, then a
//!   pinned binary-tree combine, then the scalar tail folded left to right.
//!   This order differs from a naive left-to-right sum, and is defined by
//!   the retained [`reference`] implementations below.
//!
//! The [`reference`] module keeps a plain scalar rendition of every kernel.
//! Proptests pin the production kernels bit-identical to their references
//! across shapes 1..64, which is what licenses future SIMD rewrites: any
//! change that keeps the reference equivalence holds the determinism gate.

/// Lane width of the chunked kernels (one AVX2 `f32x8` register).
pub const LANES: usize = 8;

/// Dot product with fixed lane-chunked accumulation order.
///
/// Both slices must be the same length (the shorter is authoritative via
/// `zip` in the reference; here equal lengths are asserted by callers).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / LANES;
    let mut acc = [0.0f32; LANES];
    for c in 0..chunks {
        let base = c * LANES;
        for j in 0..LANES {
            acc[j] += a[base + j] * b[base + j];
        }
    }
    let mut sum = reduce_lanes(&acc);
    for i in chunks * LANES..n {
        sum += a[i] * b[i];
    }
    sum
}

/// Pinned binary-tree combine of the lane accumulators:
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
#[inline]
fn reduce_lanes(acc: &[f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// `out[i] = dot(a_row_i, x)` for a row-major `(m × n)` matrix.
///
/// Each output element uses the same lane-chunked reduction as [`dot`].
#[inline]
pub fn matvec_into(a: &[f32], x: &[f32], out: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(out.len(), m);
    for i in 0..m {
        out[i] = dot(&a[i * n..(i + 1) * n], x);
    }
}

/// `out += a · b` for row-major `a: (m × k)`, `b: (k × n)`, `out: (m × n)`.
///
/// `out` must be zeroed (or hold the value to accumulate onto). The
/// accumulation order per output element is exactly the classic
/// outer-product order — `p` ascending, one fused term at a time — so the
/// result is bit-identical to the historical scalar matmul. The `p`-loop is
/// register-blocked by [`MATMUL_P_BLOCK`] and the column loop is
/// lane-chunked, which is where the speedup comes from: each `out` chunk is
/// loaded and stored once per `p`-block instead of once per `p`.
///
/// Rows of `a` that contain zeros skip the corresponding `p` terms, exactly
/// like the scalar implementation always has (adding `0.0 * b` is a no-op
/// for every finite accumulator this code can produce, and skipping keeps
/// NaN/∞ rows of an unused `b` out of the result).
#[inline]
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let p_blocks = k / MATMUL_P_BLOCK;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for pb in 0..p_blocks {
            let p0 = pb * MATMUL_P_BLOCK;
            matmul_row_block(&a_row[p0..p0 + MATMUL_P_BLOCK], &b[p0 * n..], o_row, n);
        }
        for p in p_blocks * MATMUL_P_BLOCK..k {
            let a_ip = a_row[p];
            if a_ip == 0.0 {
                continue;
            }
            axpy_into(a_ip, &b[p * n..p * n + n], o_row);
        }
    }
}

/// Register blocking factor of the matmul `p` (inner-dimension) loop.
pub const MATMUL_P_BLOCK: usize = 4;

/// One `p`-block of a matmul output row: `o_row += Σ_p a[p] · b_row_p`,
/// with the per-element add order pinned to `p` ascending.
///
/// When every `a[p]` is nonzero — the overwhelmingly common case for
/// trained weights — the block runs a branchless fused quad-AXPY that
/// loads and stores each `o_row` element once per four `p` terms; LLVM
/// lifts the straight-line body to SIMD. Any zero `a[p]` falls back to
/// per-`p` AXPYs with the historical skip, which updates each element in
/// the same `p`-ascending order, so both paths are bit-identical to the
/// scalar reference.
#[inline]
fn matmul_row_block(a: &[f32], b: &[f32], o_row: &mut [f32], n: usize) {
    let a: [f32; MATMUL_P_BLOCK] = [a[0], a[1], a[2], a[3]];
    let (b0, rest) = b.split_at(n);
    let (b1, rest) = rest.split_at(n);
    let (b2, rest) = rest.split_at(n);
    let b3 = &rest[..n];
    if a.iter().all(|&v| v != 0.0) {
        for ((((o, &v0), &v1), &v2), &v3) in o_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            // `p` ascending, one add at a time — never reassociated
            let mut acc = *o;
            acc += a[0] * v0;
            acc += a[1] * v1;
            acc += a[2] * v2;
            acc += a[3] * v3;
            *o = acc;
        }
    } else {
        if a[0] != 0.0 {
            axpy_into(a[0], b0, o_row);
        }
        if a[1] != 0.0 {
            axpy_into(a[1], b1, o_row);
        }
        if a[2] != 0.0 {
            axpy_into(a[2], b2, o_row);
        }
        if a[3] != 0.0 {
            axpy_into(a[3], b3, o_row);
        }
    }
}

/// `out[j] += scale * x[j]` — the matmul tail / AXPY primitive. A plain
/// elementwise loop never reassociates, so no chunk framing is needed for
/// the autovectorizer to lift it.
#[inline]
pub fn axpy_into(scale: f32, x: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o += scale * v;
    }
}

/// Column sums of a row-major `(rows × cols)` matrix: `out[c] = Σ_r m[r][c]`.
///
/// `out` must be zeroed. Rows are added in ascending order (never
/// reassociated per column), lanes run across columns — bit-identical to
/// the historical scalar loop.
#[inline]
pub fn sum_axis0_into(src: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(out.len(), cols);
    for r in 0..rows {
        let row = &src[r * cols..(r + 1) * cols];
        for (o, &v) in out.iter_mut().zip(row.iter()) {
            *o += v;
        }
    }
}

/// Row sums of a row-major `(rows × cols)` matrix, one lane-chunked
/// reduction (same order as [`dot`] with a ones vector) per row.
#[inline]
pub fn sum_axis1_into(src: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(out.len(), rows);
    for r in 0..rows {
        let row = &src[r * cols..(r + 1) * cols];
        let chunks = cols / LANES;
        let mut acc = [0.0f32; LANES];
        for c in 0..chunks {
            let base = c * LANES;
            for j in 0..LANES {
                acc[j] += row[base + j];
            }
        }
        let mut sum = reduce_lanes(&acc);
        for &v in &row[chunks * LANES..] {
            sum += v;
        }
        out[r] = sum;
    }
}

/// Row-wise numerically stable softmax of a `(rows × cols)` matrix into a
/// borrowed output slice, allocation-free.
///
/// Per row: max scan (left to right), `exp(v - max)` written straight into
/// `out`, denominator summed left to right over `out`, then each element
/// divided by the denominator (a true division — multiplying by the
/// reciprocal would change bits). Scan and sum orders match the historical
/// implementation exactly, so results are bit-identical to it; only the
/// per-row scratch `Vec` is gone.
#[inline]
pub fn softmax_into(src: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    for r in 0..rows {
        let row = &src[r * cols..(r + 1) * cols];
        let o_row = &mut out[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for (o, &v) in o_row.iter_mut().zip(row.iter()) {
            *o = (v - max).exp();
        }
        let denom: f32 = o_row.iter().sum();
        for o in o_row.iter_mut() {
            *o /= denom;
        }
    }
}

/// Elementwise `out[i] = f(src[i])`. Elementwise maps never reassociate,
/// so any unary kernel built on this is order-free.
#[inline]
pub fn map_into<F: Fn(f32) -> f32>(src: &[f32], out: &mut [f32], f: F) {
    for (o, &v) in out.iter_mut().zip(src.iter()) {
        *o = f(v);
    }
}

/// Elementwise `out[i] = f(a[i], b[i])`.
#[inline]
pub fn zip_into<F: Fn(f32, f32) -> f32>(a: &[f32], b: &[f32], out: &mut [f32], f: F) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = f(x, y);
    }
}

/// Elementwise `out[i] = f(out[i], b[i])`.
#[inline]
pub fn zip_into_inplace<F: Fn(f32, f32) -> f32>(out: &mut [f32], b: &[f32], f: F) {
    for (o, &y) in out.iter_mut().zip(b.iter()) {
        *o = f(*o, y);
    }
}

/// Plain scalar renditions of every kernel above.
///
/// These are the *semantic definition* of each kernel's accumulation order:
/// the production kernels must stay bit-identical to them (pinned by the
/// proptests below), which is what makes kernel rewrites safe against the
/// campaign determinism gate. They are also the "before" side of the
/// `BENCH_eval.json` kernel baselines.
pub mod reference {
    /// Scalar dot: `LANES` accumulators filled in chunk order, tree-combined,
    /// tail folded left to right — the pinned order of [`super::dot`],
    /// spelled out without chunk framing.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut acc = [0.0f32; super::LANES];
        let chunks = n / super::LANES;
        for i in 0..chunks * super::LANES {
            acc[i % super::LANES] += a[i] * b[i];
        }
        let mut sum =
            ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
        for i in chunks * super::LANES..n {
            sum += a[i] * b[i];
        }
        sum
    }

    /// The historical scalar matmul (outer-product order with zero skip).
    pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for p in 0..k {
                let a_ip = a[i * k + p];
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                let o_row = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ip * bv;
                }
            }
        }
    }

    /// Scalar matvec in the pinned [`dot`] order.
    pub fn matvec_into(a: &[f32], x: &[f32], out: &mut [f32], m: usize, n: usize) {
        for i in 0..m {
            out[i] = dot(&a[i * n..(i + 1) * n], x);
        }
    }

    /// The historical scalar column-sum (rows ascending).
    pub fn sum_axis0_into(src: &[f32], out: &mut [f32], rows: usize, cols: usize) {
        for r in 0..rows {
            for c in 0..cols {
                out[c] += src[r * cols + c];
            }
        }
    }

    /// Scalar row-sum in the pinned [`dot`] order (with an implicit ones
    /// vector).
    pub fn sum_axis1_into(src: &[f32], out: &mut [f32], rows: usize, cols: usize) {
        let ones = vec![1.0f32; cols];
        for r in 0..rows {
            out[r] = dot(&src[r * cols..(r + 1) * cols], &ones);
        }
    }

    /// The historical per-row softmax (scratch `Vec` per row and all).
    pub fn softmax_into(src: &[f32], out: &mut [f32], rows: usize, cols: usize) {
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exp: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
            let denom: f32 = exp.iter().sum();
            for (c, e) in exp.iter().enumerate() {
                out[r * cols + c] = e / denom;
            }
        }
    }

    /// Scalar AXPY (ascending index).
    pub fn axpy_into(scale: f32, x: &[f32], out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(x.iter()) {
            *o += scale * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use proptest::TestRng;

    /// Draws a vector of `len` values in ±100 from the per-test rng.
    fn values(len: usize, rng: &mut TestRng) -> Vec<f32> {
        proptest::collection::vec(-100.0f32..100.0, len..=len).generate(rng)
    }

    proptest! {
        // Shapes 1..64 on every extent, as the satellite task requires.
        #[test]
        fn prop_dot_matches_reference_bitwise(n in 1usize..64) {
            let mut rng = TestRng::deterministic("kernels::dot");
            let a = values(n, &mut rng);
            let b = values(n, &mut rng);
            prop_assert_eq!(dot(&a, &b).to_bits(), reference::dot(&a, &b).to_bits());
        }

        #[test]
        fn prop_matmul_matches_reference_bitwise((m, k, n) in (1usize..64, 1usize..64, 1usize..64)) {
            let mut rng = TestRng::deterministic("kernels::matmul");
            let a = values(m * k, &mut rng);
            let b = values(k * n, &mut rng);
            let mut fast = vec![0.0f32; m * n];
            let mut slow = vec![0.0f32; m * n];
            matmul_into(&a, &b, &mut fast, m, k, n);
            reference::matmul_into(&a, &b, &mut slow, m, k, n);
            for (f, s) in fast.iter().zip(slow.iter()) {
                prop_assert_eq!(f.to_bits(), s.to_bits());
            }
        }

        #[test]
        fn prop_matmul_with_zeros_matches_reference((m, k, n) in (1usize..64, 1usize..64, 1usize..32)) {
            // exercise the zero-skip path explicitly
            let mut rng = TestRng::deterministic("kernels::matmul_zeros");
            let mut a = values(m * k, &mut rng);
            for (i, v) in a.iter_mut().enumerate() {
                if i % 3 == 0 {
                    *v = 0.0;
                }
            }
            let b = values(k * n, &mut rng);
            let mut fast = vec![0.0f32; m * n];
            let mut slow = vec![0.0f32; m * n];
            matmul_into(&a, &b, &mut fast, m, k, n);
            reference::matmul_into(&a, &b, &mut slow, m, k, n);
            for (f, s) in fast.iter().zip(slow.iter()) {
                prop_assert_eq!(f.to_bits(), s.to_bits());
            }
        }

        #[test]
        fn prop_matvec_matches_reference_bitwise((m, n) in (1usize..64, 1usize..64)) {
            let mut rng = TestRng::deterministic("kernels::matvec");
            let a = values(m * n, &mut rng);
            let x = values(n, &mut rng);
            let mut fast = vec![0.0f32; m];
            let mut slow = vec![0.0f32; m];
            matvec_into(&a, &x, &mut fast, m, n);
            reference::matvec_into(&a, &x, &mut slow, m, n);
            for (f, s) in fast.iter().zip(slow.iter()) {
                prop_assert_eq!(f.to_bits(), s.to_bits());
            }
        }

        #[test]
        fn prop_sum_axis0_matches_reference_bitwise((rows, cols) in (1usize..64, 1usize..64)) {
            let mut rng = TestRng::deterministic("kernels::sum_axis0");
            let src = values(rows * cols, &mut rng);
            let mut fast = vec![0.0f32; cols];
            let mut slow = vec![0.0f32; cols];
            sum_axis0_into(&src, &mut fast, rows, cols);
            reference::sum_axis0_into(&src, &mut slow, rows, cols);
            for (f, s) in fast.iter().zip(slow.iter()) {
                prop_assert_eq!(f.to_bits(), s.to_bits());
            }
        }

        #[test]
        fn prop_sum_axis1_matches_reference_bitwise((rows, cols) in (1usize..64, 1usize..64)) {
            let mut rng = TestRng::deterministic("kernels::sum_axis1");
            let src = values(rows * cols, &mut rng);
            let mut fast = vec![0.0f32; rows];
            let mut slow = vec![0.0f32; rows];
            sum_axis1_into(&src, &mut fast, rows, cols);
            reference::sum_axis1_into(&src, &mut slow, rows, cols);
            for (f, s) in fast.iter().zip(slow.iter()) {
                prop_assert_eq!(f.to_bits(), s.to_bits());
            }
        }

        #[test]
        fn prop_softmax_matches_reference_bitwise((rows, cols) in (1usize..64, 1usize..64)) {
            let mut rng = TestRng::deterministic("kernels::softmax");
            let src = proptest::collection::vec(-20.0f32..20.0, rows * cols..=rows * cols)
                .generate(&mut rng);
            let mut fast = vec![0.0f32; rows * cols];
            let mut slow = vec![0.0f32; rows * cols];
            softmax_into(&src, &mut fast, rows, cols);
            reference::softmax_into(&src, &mut slow, rows, cols);
            for (f, s) in fast.iter().zip(slow.iter()) {
                prop_assert_eq!(f.to_bits(), s.to_bits());
            }
        }

        #[test]
        fn prop_axpy_matches_reference_bitwise(n in 1usize..64, scale in -4.0f32..4.0) {
            let mut rng = TestRng::deterministic("kernels::axpy");
            let x = values(n, &mut rng);
            let base = values(n, &mut rng);
            let mut fast = base.clone();
            let mut slow = base;
            axpy_into(scale, &x, &mut fast);
            reference::axpy_into(scale, &x, &mut slow);
            for (f, s) in fast.iter().zip(slow.iter()) {
                prop_assert_eq!(f.to_bits(), s.to_bits());
            }
        }
    }

    #[test]
    fn dot_handles_empty_and_short_slices() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0; 16], &[1.0; 16]), 16.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0f32; 4];
        matmul_into(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn map_and_zip_cover_tails() {
        let src: Vec<f32> = (0..19).map(|v| v as f32).collect();
        let mut out = vec![0.0f32; 19];
        map_into(&src, &mut out, |v| v * 2.0);
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2.0 * i as f32));
        let mut zipped = vec![0.0f32; 19];
        zip_into(&src, &out, &mut zipped, |a, b| a + b);
        assert!(zipped.iter().enumerate().all(|(i, &v)| v == 3.0 * i as f32));
        let mut inplace = out.clone();
        zip_into_inplace(&mut inplace, &src, |a, b| a - b);
        assert!(inplace.iter().enumerate().all(|(i, &v)| v == i as f32));
    }
}
