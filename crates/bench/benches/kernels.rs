//! Criterion bench: the lane-chunked tensor kernels on the evaluation hot
//! path vs the retained scalar reference implementations. The reference
//! module preserves the pre-refactor accumulation order, so each pair here
//! is a live before/after measurement of the same computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ftensor::{kernels, SeededRng};

fn values(len: usize, rng: &mut SeededRng) -> Vec<f32> {
    (0..len).map(|_| rng.normal(0.0, 1.0)).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = SeededRng::new(42);

    // matmul: the controller/evaluator workhorse (Dense layers)
    let (m, k, n) = (64, 64, 64);
    let a = values(m * k, &mut rng);
    let b = values(k * n, &mut rng);
    let mut out = vec![0.0f32; m * n];
    c.bench_function("kernels/matmul_64x64x64_lane_chunked", |bench| {
        bench.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            kernels::matmul_into(black_box(&a), black_box(&b), &mut out, m, k, n);
            black_box(out[0])
        })
    });
    c.bench_function("kernels/matmul_64x64x64_scalar_reference", |bench| {
        bench.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            kernels::reference::matmul_into(black_box(&a), black_box(&b), &mut out, m, k, n);
            black_box(out[0])
        })
    });

    // softmax: every controller decision step normalises a logit row
    let (rows, cols) = (256, 64);
    let logits = values(rows * cols, &mut rng);
    let mut probs = vec![0.0f32; rows * cols];
    c.bench_function("kernels/softmax_256x64_lane_chunked", |bench| {
        bench.iter(|| {
            kernels::softmax_into(black_box(&logits), &mut probs, rows, cols);
            black_box(probs[0])
        })
    });
    c.bench_function("kernels/softmax_256x64_scalar_reference", |bench| {
        bench.iter(|| {
            kernels::reference::softmax_into(black_box(&logits), &mut probs, rows, cols);
            black_box(probs[0])
        })
    });

    // dot: the reduction primitive behind matvec and the stats helpers
    let x = values(4096, &mut rng);
    let y = values(4096, &mut rng);
    c.bench_function("kernels/dot_4096_lane_chunked", |bench| {
        bench.iter(|| black_box(kernels::dot(black_box(&x), black_box(&y))))
    });
    c.bench_function("kernels/dot_4096_scalar_reference", |bench| {
        bench.iter(|| black_box(kernels::reference::dot(black_box(&x), black_box(&y))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(200);
    targets = bench_kernels
}
criterion_main!(benches);
