//! Criterion bench: throughput of the hardware latency estimators (direct
//! analytic estimate vs the offline per-block latency table), backing the
//! paper's claim that the per-block LUT makes constraint checking cheap
//! enough to run on every episode.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use archspace::zoo;
use edgehw::{BlockLatencyTable, DeviceProfile, LatencyEstimator};

fn bench_latency(c: &mut Criterion) {
    let arch = zoo::mobilenet_v2(5, 224);
    let estimator = LatencyEstimator::new(DeviceProfile::raspberry_pi_4());
    c.bench_function("latency/direct_estimate_mobilenet_v2", |b| {
        b.iter(|| black_box(estimator.estimate_ms(black_box(&arch))))
    });

    let mut warm_table = BlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
    warm_table.estimate_ms(&arch);
    c.bench_function("latency/lut_estimate_mobilenet_v2_warm", |b| {
        b.iter(|| black_box(warm_table.estimate_ms(black_box(&arch))))
    });

    c.bench_function("latency/zoo_sweep_both_devices", |b| {
        let zoo_entries = zoo::reference_models(5, 224);
        let pi = LatencyEstimator::new(DeviceProfile::raspberry_pi_4());
        let odroid = LatencyEstimator::new(DeviceProfile::odroid_xu4());
        b.iter(|| {
            let mut total = 0.0;
            for entry in &zoo_entries {
                total += pi.estimate_ms(&entry.architecture);
                total += odroid.estimate_ms(&entry.architecture);
            }
            black_box(total)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_latency
}
criterion_main!(benches);
