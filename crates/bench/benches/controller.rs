//! Criterion bench: RNN-controller episode sampling and policy-gradient
//! update cost, at both FaHaNa (5 searchable slots) and MONAS (17 slots)
//! decision lengths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use archspace::{SearchSpace, SpaceConfig};
use fahana::{ControllerConfig, RnnController};

fn controller_for(slots: usize) -> RnnController {
    let space = SearchSpace::new(SpaceConfig::default(), slots);
    RnnController::new(space.decision_cardinalities(), ControllerConfig::default())
        .expect("cardinalities are valid")
}

fn bench_controller(c: &mut Criterion) {
    for (label, slots) in [("fahana_5_slots", 5usize), ("monas_17_slots", 17usize)] {
        c.bench_function(&format!("controller/sample_{label}"), |b| {
            let mut ctrl = controller_for(slots);
            b.iter(|| black_box(ctrl.sample_episode().expect("samples")))
        });
        c.bench_function(&format!("controller/update_batch5_{label}"), |b| {
            let mut ctrl = controller_for(slots);
            b.iter(|| {
                let mut batch = Vec::new();
                for i in 0..5 {
                    let sample = ctrl.sample_episode().expect("samples");
                    batch.push((sample, i as f64 / 5.0));
                }
                ctrl.update(black_box(&batch)).expect("updates");
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_controller
}
criterion_main!(benches);
