//! Criterion bench: end-to-end search throughput (episodes per second) for
//! FaHaNa with the frozen header vs the MONAS-style full-backbone search —
//! the wall-clock counterpart of the paper's Table 2 acceleration claim.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dermsim::DermatologyConfig;
use fahana::{FahanaConfig, FahanaSearch};

fn config(episodes: usize, use_freezing: bool, seed: u64) -> FahanaConfig {
    FahanaConfig {
        episodes,
        use_freezing,
        seed,
        dataset: DermatologyConfig {
            samples: 200,
            image_size: 8,
            ..DermatologyConfig::default()
        },
        ..FahanaConfig::default()
    }
}

fn bench_search(c: &mut Criterion) {
    c.bench_function("search/fahana_frozen_header_20_episodes", |b| {
        b.iter(|| {
            let outcome = FahanaSearch::new(config(20, true, 3))
                .expect("valid config")
                .run()
                .expect("search runs");
            black_box(outcome.valid_ratio)
        })
    });
    c.bench_function("search/monas_full_backbone_20_episodes", |b| {
        b.iter(|| {
            let outcome = FahanaSearch::new(config(20, false, 3))
                .expect("valid config")
                .run()
                .expect("search runs");
            black_box(outcome.valid_ratio)
        })
    });
    c.bench_function("search/construction_with_freezing_analysis", |b| {
        b.iter(|| black_box(FahanaSearch::new(config(1, true, 5)).expect("valid config")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search
}
criterion_main!(benches);
