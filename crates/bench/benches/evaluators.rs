//! Criterion bench: cost of one child-network evaluation with the surrogate
//! vs the trained evaluator — quantifying why the search defaults to the
//! surrogate (the paper instead pays for a GPU cluster).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use archspace::{Architecture, BlockConfig, BlockKind};
use dermsim::{DermatologyConfig, DermatologyGenerator};
use evaluator::{Evaluate, SurrogateEvaluator, TrainedEvaluator, TrainedEvaluatorConfig};
use neural::TrainConfig;

fn tiny_arch() -> Architecture {
    Architecture::builder(3)
        .name("bench-child")
        .stem(8, 3)
        .input_size(8)
        .block(BlockConfig::new(BlockKind::Cb, 8, 12, 16, 3))
        .block(BlockConfig::new(BlockKind::Rb, 16, 16, 16, 3))
        .build()
        .expect("valid")
}

fn bench_evaluators(c: &mut Criterion) {
    let mbv2 = archspace::zoo::mobilenet_v2(5, 224);
    c.bench_function("evaluate/surrogate_mobilenet_v2", |b| {
        let mut surrogate = SurrogateEvaluator::default();
        b.iter(|| black_box(surrogate.evaluate(black_box(&mbv2)).expect("evaluates")))
    });

    let dataset = DermatologyGenerator::new(DermatologyConfig {
        samples: 90,
        image_size: 8,
        classes: 3,
        ..DermatologyConfig::default()
    })
    .generate();
    let arch = tiny_arch();
    c.bench_function("evaluate/trained_tiny_child", |b| {
        b.iter(|| {
            let mut trained = TrainedEvaluator::new(
                &dataset,
                TrainedEvaluatorConfig {
                    train: TrainConfig {
                        epochs: 1,
                        batch_size: 16,
                        ..TrainConfig::default()
                    },
                    seed: 0,
                },
            )
            .expect("dataset is non-empty");
            black_box(trained.evaluate(black_box(&arch)).expect("evaluates"))
        })
    });

    c.bench_function("evaluate/feature_variation_proxy_backbone", |b| {
        let backbone = tiny_arch();
        b.iter(|| {
            black_box(
                evaluator::feature_variation_by_block(black_box(&backbone), &dataset, 8, 0)
                    .expect("analysis runs"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_evaluators
}
criterion_main!(benches);
