//! Criterion bench: the campaign runtime — pooled batch evaluation vs the
//! sequential stage, and whole scenario-grid throughput with the shared
//! evaluation cache on vs off.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use evaluator::{EvalRequest, EvaluateBatch, SurrogateEvaluator};
use fahana_runtime::{CampaignConfig, CampaignEngine, PooledBatchEvaluator, ThreadPool};

fn batch_requests(count: usize) -> Vec<EvalRequest> {
    (0..count)
        .map(|i| {
            let mut arch = archspace::zoo::paper_fahana_small(5, 64);
            arch.set_name(format!("bench-child-{i}"));
            EvalRequest::new(arch, 2)
        })
        .collect()
}

fn campaign(threads: usize, use_cache: bool) -> CampaignConfig {
    CampaignConfig {
        episodes: 10,
        samples: 150,
        threads,
        use_cache,
        ..CampaignConfig::default()
    }
}

fn bench_runtime(c: &mut Criterion) {
    let requests = batch_requests(64);
    c.bench_function("runtime/batch64_sequential", |b| {
        let mut stage = SurrogateEvaluator::default();
        b.iter(|| black_box(stage.evaluate_batch(black_box(&requests))))
    });
    c.bench_function("runtime/batch64_pooled_4_threads", |b| {
        let pool = Arc::new(ThreadPool::new(4));
        let mut stage = PooledBatchEvaluator::new(pool, SurrogateEvaluator::default());
        b.iter(|| black_box(stage.evaluate_batch(black_box(&requests))))
    });

    c.bench_function("runtime/campaign8_1_thread_no_cache", |b| {
        b.iter(|| {
            let engine = CampaignEngine::new(campaign(1, false)).expect("valid grid");
            black_box(engine.run().expect("campaign runs").scenarios.len())
        })
    });
    c.bench_function("runtime/campaign8_4_threads_cached", |b| {
        b.iter(|| {
            let engine = CampaignEngine::new(campaign(4, true)).expect("valid grid");
            black_box(engine.run().expect("campaign runs").scenarios.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_runtime
}
criterion_main!(benches);
