//! Criterion bench: ablations of design choices called out in `DESIGN.md` —
//! reward scaling (α/β), hard vs soft constraint handling, and the
//! per-block latency LUT vs the direct analytic estimate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use archspace::zoo;
use edgehw::{BlockLatencyTable, DeviceProfile, LatencyEstimator};
use fahana::RewardConfig;

fn bench_ablations(c: &mut Criterion) {
    // Reward-scaling sweep: the reward itself is trivially cheap; the point
    // of this bench is to pin its cost at "negligible" so search-time
    // differences can be attributed to evaluation and the controller.
    c.bench_function("ablation/reward_alpha_beta_sweep", |b| {
        let settings: Vec<RewardConfig> = [0.5f64, 1.0, 2.0]
            .iter()
            .flat_map(|&alpha| {
                [0.5f64, 1.0, 2.0].iter().map(move |&beta| RewardConfig {
                    alpha,
                    beta,
                    ..RewardConfig::default()
                })
            })
            .collect();
        b.iter(|| {
            let mut total = 0.0;
            for cfg in &settings {
                total += cfg.compute(0.83, 0.21, 900.0).value;
            }
            black_box(total)
        })
    });

    c.bench_function("ablation/hard_vs_soft_constraints", |b| {
        let hard = RewardConfig::default();
        let soft = RewardConfig {
            soft_constraints: true,
            ..RewardConfig::default()
        };
        b.iter(|| {
            let mut total = 0.0;
            for latency in [800.0, 1600.0, 3200.0] {
                total += hard.compute(0.79, 0.3, latency).value;
                total += soft.compute(0.79, 0.3, latency).value;
            }
            black_box(total)
        })
    });

    // LUT vs direct estimation over a batch of children with repeated block
    // configurations — the situation the search loop is in.
    let children: Vec<_> = (0..16).map(|_| zoo::paper_fahana_small(5, 224)).collect();
    c.bench_function("ablation/latency_direct_16_children", |b| {
        let estimator = LatencyEstimator::new(DeviceProfile::raspberry_pi_4());
        b.iter(|| {
            let mut total = 0.0;
            for child in &children {
                total += estimator.estimate_ms(child);
            }
            black_box(total)
        })
    });
    c.bench_function("ablation/latency_lut_16_children", |b| {
        b.iter(|| {
            let mut table = BlockLatencyTable::new(DeviceProfile::raspberry_pi_4());
            let mut total = 0.0;
            for child in &children {
                total += table.estimate_ms(child);
            }
            black_box(total)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ablations
}
criterion_main!(benches);
