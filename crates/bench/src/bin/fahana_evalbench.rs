//! `fahana-evalbench` — records the evaluation-hot-path before/after
//! numbers into `BENCH_eval.json`.
//!
//! Three measurement families:
//!
//! 1. **Kernels** — each lane-chunked kernel timed against the retained
//!    scalar reference implementation (`ftensor::kernels::reference`),
//!    which preserves the pre-refactor accumulation order bit for bit, so
//!    the pair is a live before/after of the same computation.
//! 2. **Forward pass** — a FaHaNa-style Dense/ReLU stack timed through the
//!    allocating `forward` path vs the scratch-arena `forward_scratch`
//!    path, with the arena's allocation/reuse counters asserting that the
//!    steady state allocates nothing.
//! 3. **Micro-campaign** — the default 8-scenario campaign grid end to
//!    end, single-threaded and dual-threaded, via `fahana-runtime`.
//!
//! Usage: `fahana-evalbench [--out BENCH_eval.json] [--iters N]`

use std::time::Instant;

use fahana_runtime::{CampaignConfig, CampaignEngine, Json};
use ftensor::{kernels, Scratch, SeededRng, Tensor};
use neural::{Dense, Layer, Relu, Sequential};

/// Mean wall-clock nanoseconds per call of `f` over `iters` timed runs
/// (after one untimed warm-up).
fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters.max(1))
}

fn values(len: usize, rng: &mut SeededRng) -> Vec<f32> {
    (0..len).map(|_| rng.normal(0.0, 1.0)).collect()
}

fn pair(name: &str, before_ns: f64, after_ns: f64) -> (String, Json) {
    let speedup = if after_ns > 0.0 {
        before_ns / after_ns
    } else {
        0.0
    };
    (
        name.to_string(),
        Json::Obj(vec![
            ("before_ns".into(), Json::Num(before_ns)),
            ("after_ns".into(), Json::Num(after_ns)),
            ("speedup".into(), Json::Num(speedup)),
        ]),
    )
}

fn kernel_pairs(iters: u32) -> Vec<(String, Json)> {
    let mut rng = SeededRng::new(42);
    let mut out = Vec::new();

    let (m, k, n) = (64usize, 64usize, 64usize);
    let a = values(m * k, &mut rng);
    let b = values(k * n, &mut rng);
    let mut buf = vec![0.0f32; m * n];
    let before = time_ns(iters, || {
        buf.iter_mut().for_each(|v| *v = 0.0);
        kernels::reference::matmul_into(&a, &b, &mut buf, m, k, n);
        std::hint::black_box(buf[0]);
    });
    let after = time_ns(iters, || {
        buf.iter_mut().for_each(|v| *v = 0.0);
        kernels::matmul_into(&a, &b, &mut buf, m, k, n);
        std::hint::black_box(buf[0]);
    });
    out.push(pair("matmul_64x64x64", before, after));

    let (rows, cols) = (256usize, 64usize);
    let logits = values(rows * cols, &mut rng);
    let mut probs = vec![0.0f32; rows * cols];
    let before = time_ns(iters, || {
        kernels::reference::softmax_into(&logits, &mut probs, rows, cols);
        std::hint::black_box(probs[0]);
    });
    let after = time_ns(iters, || {
        kernels::softmax_into(&logits, &mut probs, rows, cols);
        std::hint::black_box(probs[0]);
    });
    out.push(pair("softmax_256x64", before, after));

    let x = values(4096, &mut rng);
    let y = values(4096, &mut rng);
    let before = time_ns(iters * 8, || {
        std::hint::black_box(kernels::reference::dot(&x, &y));
    });
    let after = time_ns(iters * 8, || {
        std::hint::black_box(kernels::dot(&x, &y));
    });
    out.push(pair("dot_4096", before, after));

    out
}

/// Times an inference pass of a Dense/ReLU stack through the allocating
/// and the scratch-arena paths, returning the JSON pair plus the arena's
/// steady-state counters.
fn forward_pair(iters: u32) -> ((String, Json), Json) {
    let mut rng = SeededRng::new(7);
    let mut stack = Sequential::new();
    stack.push(Box::new(Dense::new(64, 128, &mut rng)));
    stack.push(Box::new(Relu::new()));
    stack.push(Box::new(Dense::new(128, 64, &mut rng)));
    stack.push(Box::new(Relu::new()));
    stack.push(Box::new(Dense::new(64, 8, &mut rng)));
    let input = Tensor::from_vec(values(32 * 64, &mut rng), &[32, 64]).expect("input");

    let before = time_ns(iters, || {
        std::hint::black_box(stack.forward(&input, false).expect("forward"));
    });

    let mut scratch = Scratch::new();
    // prime the arena so the timed loop is pure steady state
    let primed = stack
        .forward_scratch(&input, false, &mut scratch)
        .expect("forward_scratch");
    scratch.release_tensor(primed);
    let allocations_after_priming = scratch.allocations();
    let after = time_ns(iters, || {
        let out = stack
            .forward_scratch(&input, false, &mut scratch)
            .expect("forward_scratch");
        std::hint::black_box(out.as_slice()[0]);
        scratch.release_tensor(out);
    });
    assert_eq!(
        scratch.allocations(),
        allocations_after_priming,
        "steady-state forward_scratch must not allocate"
    );

    let counters = Json::Obj(vec![
        (
            "allocations".into(),
            Json::Int(scratch.allocations() as i64),
        ),
        ("reuses".into(), Json::Int(scratch.reuses() as i64)),
        ("steady_state_allocations".into(), Json::Int(0)),
    ]);
    (pair("dense_stack_forward_32x64", before, after), counters)
}

fn campaign_ms(threads: usize) -> f64 {
    let config = CampaignConfig {
        episodes: 8,
        samples: 150,
        threads,
        ..CampaignConfig::default()
    };
    let engine = CampaignEngine::new(config).expect("valid campaign grid");
    let start = Instant::now();
    let outcome = engine.run().expect("campaign runs");
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(outcome.scenarios.len(), 8);
    elapsed
}

fn main() {
    let mut out_path = String::from("BENCH_eval.json");
    let mut iters: u32 = 2000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--iters" => {
                iters = args
                    .next()
                    .expect("--iters needs a number")
                    .parse()
                    .expect("--iters must be an integer")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: fahana-evalbench [--out PATH] [--iters N]");
                std::process::exit(2);
            }
        }
    }

    eprintln!("fahana-evalbench: timing kernels ({iters} iters per pair)...");
    let kernels_json = kernel_pairs(iters);
    eprintln!("fahana-evalbench: timing forward pass...");
    let (forward_json, scratch_json) = forward_pair(iters);
    eprintln!("fahana-evalbench: timing micro-campaign (8 scenarios)...");
    let campaign_1t = campaign_ms(1);
    let campaign_2t = campaign_ms(2);

    let mut sections = kernels_json;
    sections.push(forward_json);
    let report = Json::Obj(vec![
        ("schema".into(), Json::str("fahana-evalbench/v1")),
        ("iters".into(), Json::Int(i64::from(iters))),
        ("pairs".into(), Json::Obj(sections)),
        ("scratch".into(), scratch_json),
        (
            "campaign".into(),
            Json::Obj(vec![
                ("episodes".into(), Json::Int(8)),
                ("scenarios".into(), Json::Int(8)),
                ("wall_clock_ms_1_thread".into(), Json::Num(campaign_1t)),
                ("wall_clock_ms_2_threads".into(), Json::Num(campaign_2t)),
            ]),
        ),
    ]);

    std::fs::write(&out_path, report.render() + "\n").expect("write bench report");
    eprintln!("fahana-evalbench: wrote {out_path}");
    for (name, entry) in match &report {
        Json::Obj(fields) => match fields.iter().find(|(k, _)| k == "pairs") {
            Some((_, Json::Obj(pairs))) => pairs.clone(),
            _ => Vec::new(),
        },
        _ => Vec::new(),
    } {
        eprintln!("  {name}: {}", entry.render());
    }
    eprintln!("  campaign 1 thread: {campaign_1t:.1} ms, 2 threads: {campaign_2t:.1} ms");
}
