//! Table 4 — compatibility of FaHaNa with data-balancing techniques
//! (5× more minority data, following the paper's reference [18]).
//!
//! Regenerate with `cargo run -p fahana-bench --bin table4`.

use archspace::zoo::{self, ReferenceModel};
use dermsim::{balance_dataset, BalancingConfig, DermatologyConfig, DermatologyGenerator};
use evaluator::{Evaluate, SurrogateEvaluator};
use fahana_bench::{pct, rule, CLASSES, INPUT_SIZE};

fn main() {
    println!("Table 4: accuracy/unfairness without and with 5x minority data balancing");

    // build the unbalanced and balanced datasets so the imbalance ratios fed
    // to the evaluator come from real dataset statistics
    let generator = DermatologyGenerator::new(DermatologyConfig {
        samples: 1200,
        image_size: 8,
        minority_fraction: 0.15,
        ..DermatologyConfig::default()
    });
    let unbalanced = generator.generate();
    let balanced = balance_dataset(&unbalanced, &generator, BalancingConfig::default());
    let ratio_before = unbalanced.stats().imbalance_ratio as f64;
    let ratio_after = balanced.stats().imbalance_ratio as f64;
    println!(
        "dataset imbalance ratio: {ratio_before:.2} (unbalanced) -> {ratio_after:.2} (after 5x minority augmentation)"
    );
    println!();
    println!(
        "{:<18} {:>8} {:>8} | {:>8} {:>9} {:>8} {:>9}",
        "Model", "Acc", "Unfair", "Acc(bal)", "AccImpr", "Unf(bal)", "UnfImpr"
    );
    rule(84);

    let mut archs = vec![
        zoo::reference_architecture(ReferenceModel::MobileNetV2, CLASSES, INPUT_SIZE),
        zoo::reference_architecture(ReferenceModel::ProxylessNasMobile, CLASSES, INPUT_SIZE),
        zoo::reference_architecture(ReferenceModel::MnasNet05, CLASSES, INPUT_SIZE),
        zoo::reference_architecture(ReferenceModel::MobileNetV3Small, CLASSES, INPUT_SIZE),
        zoo::reference_architecture(ReferenceModel::MnasNet10, CLASSES, INPUT_SIZE),
    ];
    archs.push(zoo::paper_fahana_small(CLASSES, INPUT_SIZE));

    let mut fairest_balanced: Option<(String, f64)> = None;
    for arch in &archs {
        let mut before_eval = SurrogateEvaluator::default().with_imbalance_ratio(ratio_before);
        let mut after_eval = SurrogateEvaluator::default().with_imbalance_ratio(ratio_after);
        let before = before_eval.evaluate(arch).expect("evaluates");
        let after = after_eval.evaluate(arch).expect("evaluates");
        println!(
            "{:<18} {:>8} {:>8.4} | {:>8} {:>8.2}% {:>8.4} {:>9.4}",
            arch.name(),
            pct(before.accuracy()),
            before.unfairness(),
            pct(after.accuracy()),
            (after.accuracy() - before.accuracy()) * 100.0,
            after.unfairness(),
            before.unfairness() - after.unfairness(),
        );
        if fairest_balanced
            .as_ref()
            .map(|(_, u)| after.unfairness() < *u)
            .unwrap_or(true)
        {
            fairest_balanced = Some((arch.name().to_string(), after.unfairness()));
        }
    }
    rule(84);
    if let Some((name, unfairness)) = fairest_balanced {
        println!("fairest model after balancing: {name} (unfairness {unfairness:.4})");
    }
    println!(
        "Shape to check (paper): balancing improves fairness for every model and accuracy for"
    );
    println!("almost all of them, and FaHaNa-Small remains the fairest model after balancing.");
}
