//! Figure 3 — layer-wise inter-group feature variation and the freezing
//! split it induces.
//!
//! Regenerate with `cargo run -p fahana-bench --bin fig3`.

use archspace::{Architecture, BackboneProducer, BlockConfig, BlockKind};
use dermsim::{DermatologyConfig, DermatologyGenerator};
use evaluator::{feature_variation_by_block, paper_figure3_profile};

fn main() {
    println!("Figure 3(a): published per-block variation of the pretrained MobileNetV2 backbone");
    let profile = paper_figure3_profile();
    for (layer, value) in profile.iter().enumerate() {
        let bar = "#".repeat((value * 400.0) as usize);
        println!("  block {:>2}: {:>6.3} {}", layer + 1, value, bar);
    }
    let backbone = archspace::zoo::mobilenet_v2(5, 224);
    let producer = BackboneProducer::new(backbone, 0.5);
    let decision = producer.decide_split(&profile);
    println!(
        "  gamma = 0.5 -> threshold {:.4}, frozen header = first {} blocks (paper: front layers before block 12)",
        decision.threshold, decision.split_layer
    );

    println!();
    println!("Figure 3(b): variation re-measured locally on a proxy backbone + synthetic dataset");
    let dataset = DermatologyGenerator::new(DermatologyConfig {
        samples: 160,
        image_size: 10,
        minority_fraction: 0.25,
        ..DermatologyConfig::default()
    })
    .generate();
    let proxy = Architecture::builder(5)
        .name("proxy-backbone")
        .stem(12, 3)
        .input_size(10)
        .block(BlockConfig::new(BlockKind::Mb, 12, 24, 16, 3))
        .block(BlockConfig::new(BlockKind::Db, 16, 32, 16, 3))
        .block(BlockConfig::new(BlockKind::Db, 16, 32, 24, 3))
        .block(BlockConfig::new(BlockKind::Db, 24, 48, 24, 3))
        .block(BlockConfig::new(BlockKind::Rb, 24, 24, 24, 3))
        .block(BlockConfig::new(BlockKind::Rb, 24, 32, 32, 3))
        .build()
        .expect("proxy backbone is valid");
    match feature_variation_by_block(&proxy, &dataset, 16, 0) {
        Ok(measured) => {
            for (layer, value) in measured.per_block.iter().enumerate() {
                println!("  block {:>2}: {:>8.5}", layer + 1, value);
            }
            println!(
                "  split for gamma=0.5 on the measured profile: block {}",
                measured.split_for_gamma(0.5)
            );
            println!(
                "  (an untrained proxy keeps the raw skin-tone shift in its early layers, so the"
            );
            println!(
                "   measured profile is flatter than the paper's pretrained-backbone profile;"
            );
            println!("   the search therefore defaults to the published Figure 3 profile above)");
        }
        Err(e) => println!("  analysis failed: {e}"),
    }
}
