//! Table 1 — models under 30 MB on a Raspberry Pi with TC = 1500 ms.
//!
//! Regenerate with `cargo run -p fahana-bench --bin table1`.

use fahana_bench::{meets_mark, pct, rule, zoo_rows};

fn main() {
    let timing_constraint = 1500.0;
    let storage_limit = 30.0;
    println!("Table 1: models with <{storage_limit} MB storage on Raspberry PI, TC = {timing_constraint} ms");
    println!(
        "{:<18} {:>12} {:>10} {:>10} {:>10} {:>6}",
        "Model", "Latency(ms)", "Storage", "Accuracy", "Unfair.", "Meets"
    );
    rule(72);
    let mut rows: Vec<_> = zoo_rows()
        .into_iter()
        .filter(|r| r.storage_mb <= storage_limit)
        .collect();
    rows.sort_by(|a, b| a.latency_pi_ms.total_cmp(&b.latency_pi_ms));
    for row in rows {
        let meets = row.latency_pi_ms <= timing_constraint;
        println!(
            "{:<18} {:>12.2} {:>10.2} {:>10} {:>10.4} {:>6}",
            row.name,
            row.latency_pi_ms,
            row.storage_mb,
            pct(row.accuracy),
            row.unfairness,
            meets_mark(meets)
        );
    }
    rule(72);
    println!("Paper shape: SqueezeNet 1.0, MobileNetV3(S) and MnasNet 0.5 meet the constraint;");
    println!("MobileNetV2 and larger depthwise-heavy networks violate it, showing that fairness");
    println!("cannot be considered separately from the hardware specification.");
}
