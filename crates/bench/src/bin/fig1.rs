//! Figure 1 — fairness vs model size on existing networks, and the effect of
//! the amount of minority training data.
//!
//! Regenerate with `cargo run -p fahana-bench --bin fig1`.

use archspace::zoo::{self, ReferenceModel};
use evaluator::{Evaluate, SurrogateEvaluator};
use fahana_bench::{zoo_rows, CLASSES, INPUT_SIZE};

fn main() {
    println!("Figure 1(a): unfairness score vs model size (existing networks)");
    println!(
        "{:<18} {:>10} {:>12} {:>12}",
        "model", "params (M)", "unfair (ours)", "unfair (paper)"
    );
    let mut rows = zoo_rows();
    rows.sort_by_key(|a| a.params);
    for row in &rows {
        let paper = row
            .paper
            .map(|p| format!("{:.4}", p.unfairness))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<18} {:>10.2} {:>12.4} {:>12}",
            row.name,
            row.params as f64 / 1e6,
            row.unfairness,
            paper
        );
    }

    println!();
    println!("Figure 1(b): unfairness vs amount of minority data (1x..5x)");
    println!(
        "{:<18} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "model", "1x", "2x", "3x", "4x", "5x"
    );
    let base_imbalance = 5.67;
    for model in [
        ReferenceModel::MnasNet05,
        ReferenceModel::MobileNetV3Small,
        ReferenceModel::MobileNetV2,
        ReferenceModel::ResNet18,
    ] {
        let arch = zoo::reference_architecture(model, CLASSES, INPUT_SIZE);
        let mut values = Vec::new();
        for multiplier in 1..=5 {
            let ratio = (base_imbalance / multiplier as f64).max(1.0);
            let mut surrogate = SurrogateEvaluator::default().with_imbalance_ratio(ratio);
            let eval = surrogate.evaluate(&arch).expect("zoo model evaluates");
            values.push(eval.unfairness());
        }
        println!(
            "{:<18} {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>6.3}",
            model.label(),
            values[0],
            values[1],
            values[2],
            values[3],
            values[4]
        );
    }
    println!();
    println!(
        "Shape check (paper): even with 5x minority data, MnasNet 0.5 stays less fair than ResNet-18 trained on 1x."
    );
    let mnasnet_5x = {
        let arch = zoo::reference_architecture(ReferenceModel::MnasNet05, CLASSES, INPUT_SIZE);
        let mut s = SurrogateEvaluator::default().with_imbalance_ratio((5.67f64 / 5.0).max(1.0));
        s.evaluate(&arch).unwrap().unfairness()
    };
    let resnet_1x = {
        let arch = zoo::reference_architecture(ReferenceModel::ResNet18, CLASSES, INPUT_SIZE);
        let mut s = SurrogateEvaluator::default();
        s.evaluate(&arch).unwrap().unfairness()
    };
    println!("  MnasNet 0.5 @5x = {mnasnet_5x:.4} vs ResNet-18 @1x = {resnet_1x:.4} (paper: 0.2280 vs 0.1820)");
}
