//! Figure 5 — design-space exploration: best reward vs model size, and
//! unfairness vs accuracy, for FaHaNa-Nets vs the existing networks.
//!
//! Regenerate with `cargo run -p fahana-bench --bin fig5`.

use fahana::{FahanaSearch, RewardConfig};
use fahana_bench::{fahana_reference_rows, harness_search_config, zoo_rows};

fn main() {
    let episodes = 200;
    println!("Figure 5: FaHaNa-Nets vs existing networks ({episodes} episodes)");
    let outcome = FahanaSearch::new(harness_search_config(episodes, 51))
        .expect("config is valid")
        .run()
        .expect("search runs");
    let reward_cfg = RewardConfig::default();

    println!();
    println!("(a) best reward vs model size — architectures under 6M parameters");
    println!(
        "{:<24} {:>10} {:>9} {:>9}",
        "architecture", "params(M)", "reward", "source"
    );
    let mut points: Vec<(String, f64, f64, &str)> = Vec::new();
    for record in outcome
        .history
        .iter()
        .filter(|r| r.valid && r.params < 6_000_000)
    {
        points.push((
            record.name.clone(),
            record.params as f64 / 1e6,
            record.reward,
            "FaHaNa",
        ));
    }
    for row in zoo_rows().iter().chain(fahana_reference_rows().iter()) {
        if row.params < 6_000_000 {
            points.push((
                row.name.clone(),
                row.params as f64 / 1e6,
                row.reward(&reward_cfg),
                "existing",
            ));
        }
    }
    points.sort_by(|a, b| b.2.total_cmp(&a.2));
    for (name, size, reward, source) in points.iter().take(25) {
        println!("{:<24} {:>10.2} {:>9.3} {:>9}", name, size, reward, source);
    }

    println!();
    println!("(b) unfairness vs accuracy Pareto frontier of the FaHaNa-Nets");
    for point in outcome.accuracy_fairness_frontier() {
        println!(
            "  {:<22} accuracy {:>7.4}  unfairness {:>7.4}",
            point.label, point.maximize, point.minimize
        );
    }
    if let Some(best_small) = &outcome.best_small {
        println!();
        println!(
            "FaHaNa-Small candidate: {} ({:.2}M params, reward {:.3}, unfairness {:.4})",
            best_small.record.name,
            best_small.record.params as f64 / 1e6,
            best_small.record.reward,
            best_small.record.unfairness
        );
    }
    if let Some(fairest) = &outcome.fairest {
        println!(
            "FaHaNa-Fair candidate:  {} ({:.2}M params, accuracy {:.4}, unfairness {:.4})",
            fairest.record.name,
            fairest.record.params as f64 / 1e6,
            fairest.record.accuracy,
            fairest.record.unfairness
        );
    }
    println!();
    println!(
        "Shape to check: the FaHaNa points push the Pareto frontier past the existing networks"
    );
    println!("(higher reward at equal or smaller size; lower unfairness at equal accuracy).");
}
