//! Table 2 — effectiveness of the freezing method: search-space size, valid
//! ratio and (modelled) search time of MONAS vs FaHaNa under a tight and a
//! relaxed timing constraint.
//!
//! Regenerate with `cargo run -p fahana-bench --bin table2`.

use fahana::{FahanaConfig, FahanaSearch, MonasConfig, MonasSearch, RewardConfig, SearchOutcome};
use fahana_bench::harness_search_config;

fn run_pair(tc_ms: f64, episodes: usize, seed: u64) -> (SearchOutcome, SearchOutcome) {
    let base = FahanaConfig {
        reward: RewardConfig {
            timing_constraint_ms: tc_ms,
            ..RewardConfig::default()
        },
        ..harness_search_config(episodes, seed)
    };
    let monas = MonasSearch::new(MonasConfig::matching(&base))
        .expect("monas config is valid")
        .run()
        .expect("monas search runs");
    let fahana = FahanaSearch::new(base)
        .expect("fahana config is valid")
        .run()
        .expect("fahana search runs");
    (monas, fahana)
}

fn print_block(label: &str, monas: &SearchOutcome, fahana: &SearchOutcome) {
    println!("-- {label} --");
    println!(
        "{:<8} {:>12} {:>9} {:>12} {:>9}",
        "Method", "Space", "Valid", "Time(model)", "Speedup"
    );
    let speedup = monas.modelled_search_hours / fahana.modelled_search_hours.max(1e-9);
    println!(
        "{:<8} {:>12} {:>9.2}% {:>12} {:>9.2}",
        "MONAS",
        format!("10^{:.0}", monas.space_log10_size),
        monas.valid_ratio * 100.0,
        monas.modelled_search_time,
        1.0
    );
    println!(
        "{:<8} {:>12} {:>9.2}% {:>12} {:>9.2}",
        "FaHaNa",
        format!("10^{:.0}", fahana.space_log10_size),
        fahana.valid_ratio * 100.0,
        fahana.modelled_search_time,
        speedup
    );
    println!(
        "  frozen blocks: MONAS {} vs FaHaNa {} (of the MobileNetV2 backbone)",
        monas.frozen_blocks, fahana.frozen_blocks
    );
}

fn main() {
    let episodes = 150;
    println!("Table 2: effectiveness of the freezing method ({episodes} episodes per run)");
    println!(
        "Paper reference: MONAS 10^19 / 27.50% / 104H45M (tight), 33.33% / 177H15M (relaxed);"
    );
    println!("                 FaHaNa 10^9 / 71.05% / 57H10M / 1.83x (tight), 95.23% / 66H20M / 2.67x (relaxed)");
    println!();

    let (monas_tight, fahana_tight) = run_pair(1500.0, episodes, 41);
    print_block(
        "Tight timing constraint (TC = 1500 ms)",
        &monas_tight,
        &fahana_tight,
    );
    println!();
    let (monas_relaxed, fahana_relaxed) = run_pair(4000.0, episodes, 42);
    print_block(
        "Relaxed timing constraint (TC = 4000 ms)",
        &monas_relaxed,
        &fahana_relaxed,
    );
    println!();
    println!("Shape to check: FaHaNa's space is orders of magnitude smaller, its valid ratio is");
    println!("higher under both constraints, and its modelled search time is lower (speedup > 1).");
}
