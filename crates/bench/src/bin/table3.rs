//! Table 3 — full comparison of the existing models and the FaHaNa-Nets:
//! parameters, accuracy, per-group accuracy, unfairness, reward, storage and
//! latency/speedups on both edge devices, split into G1 (< 4M) and G2 (≥ 4M).
//!
//! Regenerate with `cargo run -p fahana-bench --bin table3`.

use fahana::RewardConfig;
use fahana_bench::{fahana_reference_rows, meets_mark, pct, rule, zoo_rows, ModelRow};

fn print_group(label: &str, accuracy_constraint: f64, baseline_name: &str, rows: &[ModelRow]) {
    let reward_cfg = RewardConfig {
        accuracy_constraint,
        timing_constraint_ms: f64::INFINITY,
        ..RewardConfig::default()
    };
    let baseline = rows
        .iter()
        .find(|r| r.name == baseline_name)
        .expect("baseline model present");
    println!(
        "== {label} (accuracy requirement {:.0}%) ==",
        accuracy_constraint * 100.0
    );
    println!(
        "{:<18} {:>11} {:>8} {:>5} {:>8} {:>8} {:>8} {:>7} {:>9} {:>10} {:>8} {:>10} {:>8}",
        "Model",
        "#Para",
        "Acc",
        "Meet",
        "Light",
        "Dark",
        "Unfair",
        "Reward",
        "Stor(MB)",
        "Pi(ms)",
        "SpdUp",
        "Odroid(ms)",
        "SpdUp"
    );
    rule(140);
    for row in rows {
        let meets_acc = row.accuracy >= accuracy_constraint;
        let reward = reward_cfg.compute(row.accuracy, row.unfairness, 0.0).value;
        println!(
            "{:<18} {:>11} {:>8} {:>5} {:>8} {:>8} {:>8.4} {:>7.2} {:>9.2} {:>10.1} {:>8.2} {:>10.1} {:>8.2}",
            row.name,
            row.params,
            pct(row.accuracy),
            meets_mark(meets_acc),
            pct(row.light_accuracy),
            pct(row.dark_accuracy),
            row.unfairness,
            if meets_acc { reward } else { -1.0 },
            row.storage_mb,
            row.latency_pi_ms,
            baseline.latency_pi_ms / row.latency_pi_ms,
            row.latency_odroid_ms,
            baseline.latency_odroid_ms / row.latency_odroid_ms,
        );
        if let Some(paper) = row.paper {
            println!(
                "{:<18} {:>11} {:>8} {:>5} {:>8} {:>8} {:>8.4} {:>7} {:>9.2} {:>10.1} {:>8} {:>10.1} {:>8}",
                "  (paper)",
                paper.params,
                pct(paper.accuracy),
                "",
                pct(paper.light_accuracy),
                pct(paper.dark_accuracy),
                paper.unfairness,
                "",
                paper.storage_mb,
                paper.latency_raspberry_ms,
                "",
                paper.latency_odroid_ms,
                ""
            );
        }
    }
    rule(140);
}

fn main() {
    println!("Table 3: comparison of the existing models and FaHaNa-Nets");
    let mut all: Vec<ModelRow> = zoo_rows();
    all.extend(fahana_reference_rows());
    all.retain(|r| r.name != "SqueezeNet 1.0");

    let g1: Vec<ModelRow> = all
        .iter()
        .filter(|r| r.params < 4_000_000)
        .cloned()
        .collect();
    let g2: Vec<ModelRow> = all
        .iter()
        .filter(|r| r.params >= 4_000_000)
        .cloned()
        .collect();

    print_group("Group 1: < 4M parameters", 0.81, "MobileNetV2", &g1);
    println!();
    print_group("Group 2: >= 4M parameters", 0.83, "ResNet-50", &g2);
    println!();
    println!(
        "Shape to check (paper): FaHaNa-Small is the fairest and smallest G1 model with the best"
    );
    println!(
        "Pi/Odroid speedups over the MobileNetV2 baseline (paper: 5.28x smaller, 5.75x / 5.79x"
    );
    println!(
        "faster, 15.14% fairer); FaHaNa-Fair achieves the lowest unfairness of all models while"
    );
    println!("being ~4x smaller and faster than the ResNet-50 baseline.");
}
