//! Figure 6 — accuracy/unfairness Pareto frontiers in the two size groups
//! (G1 < 4M parameters, G2 ≥ 4M parameters).
//!
//! Regenerate with `cargo run -p fahana-bench --bin fig6`.

use fahana::{pareto_frontier, ParetoPoint};
use fahana_bench::{fahana_reference_rows, zoo_rows, ModelRow};

fn group_frontier(label: &str, rows: &[ModelRow]) {
    println!("-- {label} --");
    println!(
        "{:<20} {:>10} {:>12} {:>10}",
        "model", "accuracy", "unfairness", "on frontier"
    );
    let points: Vec<ParetoPoint> = rows
        .iter()
        .map(|r| ParetoPoint::new(r.name.clone(), r.accuracy, r.unfairness))
        .collect();
    let frontier = pareto_frontier(&points);
    for row in rows {
        let on_frontier = frontier.iter().any(|p| p.label == row.name);
        println!(
            "{:<20} {:>10.4} {:>12.4} {:>10}",
            row.name,
            row.accuracy,
            row.unfairness,
            if on_frontier { "*" } else { "" }
        );
    }
}

fn main() {
    println!(
        "Figure 6: Pareto frontiers of existing models and FaHaNa-Nets (accuracy vs unfairness)"
    );
    let mut all: Vec<ModelRow> = zoo_rows();
    all.extend(fahana_reference_rows());
    // SqueezeNet appears only in Table 1 in the paper; keep it out of the
    // frontier plot like the paper does.
    all.retain(|r| r.name != "SqueezeNet 1.0");

    let g1: Vec<ModelRow> = all
        .iter()
        .filter(|r| r.params < 4_000_000)
        .cloned()
        .collect();
    let g2: Vec<ModelRow> = all
        .iter()
        .filter(|r| r.params >= 4_000_000)
        .cloned()
        .collect();
    group_frontier("(a) models with size < 4M", &g1);
    println!();
    group_frontier("(b) models with size >= 4M", &g2);
    println!();
    println!(
        "Shape to check: FaHaNa-Small sits on the G1 frontier (dominating all competitors except"
    );
    println!(
        "at most MobileNetV2's accuracy corner), and FaHaNa-Fair is the closest G2 point to the"
    );
    println!("ideal (high accuracy, low unfairness) corner.");
}
