//! Figure 2 — per-group accuracy and unfairness of the existing networks.
//!
//! Regenerate with `cargo run -p fahana-bench --bin fig2`.

use fahana_bench::{pct, zoo_rows};

fn main() {
    println!("Figure 2: neural architectures affect fairness (light vs dark accuracy)");
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>14}",
        "model", "light", "dark", "unfair (ours)", "unfair (paper)"
    );
    // the paper orders the bar chart from least fair to fairest
    let mut rows = zoo_rows();
    rows.sort_by(|a, b| b.unfairness.total_cmp(&a.unfairness));
    for row in rows {
        let paper = row
            .paper
            .map(|p| format!("{:.4}", p.unfairness))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<18} {:>10} {:>10} {:>12.4} {:>14}",
            row.name,
            pct(row.light_accuracy),
            pct(row.dark_accuracy),
            row.unfairness,
            paper
        );
    }
    println!();
    println!(
        "Every model favours the majority (light) group; fairness improves with model capacity."
    );
}
