//! Figure 7 — visualisation of the FaHaNa-Fair architecture, plus the
//! fairest architecture discovered by a local search run.
//!
//! Regenerate with `cargo run -p fahana-bench --bin fig7`.

use archspace::{render_architecture, zoo};
use fahana::FahanaSearch;
use fahana_bench::{harness_search_config, CLASSES, INPUT_SIZE};

fn main() {
    println!("Figure 7: the FaHaNa-Fair architecture reported by the paper");
    println!(
        "{}",
        render_architecture(&zoo::paper_fahana_fair(CLASSES, INPUT_SIZE))
    );
    println!();
    println!("Insight (paper Section 4.5): MB blocks extract common features cheaply at the high-");
    println!("resolution head, while the larger CB/RB blocks in the tail address fairness.");
    println!();

    println!("Fairest architecture discovered by a local 200-episode search run:");
    let outcome = FahanaSearch::new(harness_search_config(200, 71))
        .expect("config is valid")
        .run()
        .expect("search runs");
    match outcome.fairest {
        Some(fairest) => {
            println!("{}", render_architecture(&fairest.architecture));
            println!(
                "accuracy {:.4}, unfairness {:.4}, latency {:.0} ms on the Raspberry Pi",
                fairest.record.accuracy, fairest.record.unfairness, fairest.record.latency_ms
            );
            let tail = fairest
                .architecture
                .blocks()
                .iter()
                .filter(|b| !b.skipped)
                .rev()
                .take(3)
                .filter(|b| matches!(b.kind, archspace::BlockKind::Rb | archspace::BlockKind::Cb))
                .count();
            println!("CB/RB blocks among the last three searched blocks: {tail} of 3");
        }
        None => println!(
            "(no valid architecture found in this short run — increase the episode budget)"
        ),
    }
}
