//! Shared harness code for the per-table/figure experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index). This library holds the code
//! they share: evaluating the reference model zoo with the calibrated
//! surrogate and the edge-device latency model, grouping models the way the
//! paper's tables do, and formatting rows.

use archspace::zoo::{self, PaperMetrics, ZooEntry};
use archspace::Architecture;
use dermsim::DermatologyConfig;
use edgehw::{DeviceProfile, LatencyEstimator};
use evaluator::{Evaluate, SurrogateEvaluator};
use fahana::{FahanaConfig, RewardConfig};

/// Input resolution used for all latency/FLOP accounting in the harness.
pub const INPUT_SIZE: usize = 224;

/// Number of disease classes in the dermatology case study.
pub const CLASSES: usize = 5;

/// One fully evaluated model: our measurements plus the paper's values.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Model name as printed in the paper's tables.
    pub name: String,
    /// Parameter count (IR-computed).
    pub params: u64,
    /// Storage in MB (IR-computed).
    pub storage_mb: f64,
    /// Overall accuracy predicted by the surrogate.
    pub accuracy: f64,
    /// Majority-group (light skin) accuracy.
    pub light_accuracy: f64,
    /// Minority-group (dark skin) accuracy.
    pub dark_accuracy: f64,
    /// Unfairness score.
    pub unfairness: f64,
    /// Estimated latency on the Raspberry Pi 4 (ms).
    pub latency_pi_ms: f64,
    /// Estimated latency on the Odroid XU-4 (ms).
    pub latency_odroid_ms: f64,
    /// The paper's published metrics, when available.
    pub paper: Option<PaperMetrics>,
}

impl ModelRow {
    /// Evaluates one architecture with the default surrogate and both
    /// device models.
    pub fn measure(arch: &Architecture, paper: Option<PaperMetrics>) -> ModelRow {
        let mut surrogate = SurrogateEvaluator::default();
        let eval = surrogate
            .evaluate(arch)
            .expect("zoo architectures are valid");
        let pi = LatencyEstimator::new(DeviceProfile::raspberry_pi_4());
        let odroid = LatencyEstimator::new(DeviceProfile::odroid_xu4());
        let light = eval
            .report
            .group_accuracy(dermsim::Group::LIGHT_SKIN)
            .unwrap_or(eval.accuracy());
        let dark = eval
            .report
            .group_accuracy(dermsim::Group::DARK_SKIN)
            .unwrap_or(eval.accuracy());
        ModelRow {
            name: arch.name().to_string(),
            params: arch.param_count(),
            storage_mb: arch.storage_mb(),
            accuracy: eval.accuracy(),
            light_accuracy: light,
            dark_accuracy: dark,
            unfairness: eval.unfairness(),
            latency_pi_ms: pi.estimate_ms(arch),
            latency_odroid_ms: odroid.estimate_ms(arch),
            paper,
        }
    }

    /// The reward this model earns under the given configuration (Table 3's
    /// "Reward" column), using the Pi latency.
    pub fn reward(&self, config: &RewardConfig) -> f64 {
        config
            .compute(self.accuracy, self.unfairness, self.latency_pi_ms)
            .value
    }
}

/// Evaluates the full reference zoo (11 competitor networks).
pub fn zoo_rows() -> Vec<ModelRow> {
    zoo::reference_models(CLASSES, INPUT_SIZE)
        .into_iter()
        .map(
            |ZooEntry {
                 architecture,
                 paper,
                 ..
             }| ModelRow::measure(&architecture, paper),
        )
        .collect()
}

/// Evaluates the two FaHaNa reference architectures (paper Figure 7 /
/// Table 3) so they can be placed alongside the zoo.
pub fn fahana_reference_rows() -> Vec<ModelRow> {
    let [small_metrics, fair_metrics] = zoo::paper_fahana_metrics();
    vec![
        ModelRow::measure(
            &zoo::paper_fahana_small(CLASSES, INPUT_SIZE),
            Some(small_metrics.1),
        ),
        ModelRow::measure(
            &zoo::paper_fahana_fair(CLASSES, INPUT_SIZE),
            Some(fair_metrics.1),
        ),
    ]
}

/// The search configuration used by the experiment binaries: paper-style
/// constraints with an episode budget small enough to finish in seconds.
pub fn harness_search_config(episodes: usize, seed: u64) -> FahanaConfig {
    FahanaConfig {
        episodes,
        seed,
        dataset: DermatologyConfig {
            samples: 400,
            image_size: 10,
            ..DermatologyConfig::default()
        },
        ..FahanaConfig::default()
    }
}

/// Formats a percentage with two decimals, like the paper's tables.
pub fn pct(value: f64) -> String {
    format!("{:.2}%", value * 100.0)
}

/// Formats a "meets specification" flag the way Table 1 does.
pub fn meets_mark(meets: bool) -> &'static str {
    if meets {
        "yes"
    } else {
        "no"
    }
}

/// Prints a horizontal rule sized for the wide tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_rows_cover_all_models() {
        let rows = zoo_rows();
        assert_eq!(rows.len(), 11);
        assert!(rows.iter().all(|r| r.params > 0 && r.latency_pi_ms > 0.0));
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.accuracy)));
    }

    #[test]
    fn fahana_reference_rows_are_small_and_fair() {
        let rows = fahana_reference_rows();
        assert_eq!(rows.len(), 2);
        let small = &rows[0];
        let fair = &rows[1];
        assert!(small.params < 1_000_000);
        assert!(fair.unfairness < small.unfairness + 0.05);
    }

    #[test]
    fn reward_uses_pi_latency() {
        let rows = fahana_reference_rows();
        let cfg = RewardConfig::default();
        // FaHaNa-Small meets both constraints, so its reward is positive
        assert!(rows[0].reward(&cfg) > 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.8105), "81.05%");
        assert_eq!(meets_mark(true), "yes");
        assert_eq!(meets_mark(false), "no");
    }
}
