//! The campaign artifact store: a durable, queryable catalog of completed
//! campaign reports.
//!
//! A campaign run is expensive; its report is cheap to keep. The store
//! ingests campaign JSON reports (as written by `fahana-campaign --out`)
//! under a root directory and answers the question the ROADMAP's serving
//! front-end cares about: *"best architecture for device X under
//! latency/fairness constraint Y"* — across every campaign ever ingested,
//! with Pareto frontiers merged via [`fahana::merge_frontiers`].
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/
//!   artifacts/<id>.json   # one ingested campaign report, verbatim
//!   catalog.json          # regenerated index: id → scenario keys
//! ```
//!
//! Artifacts are the source of truth; `catalog.json` is a derived,
//! human-readable index rebuilt on every ingest (it is never read back,
//! so a stale or deleted catalog can not corrupt anything). Scenarios are
//! keyed by device slug × reward name × freezing mode — the three grid
//! axes of [`crate::scenario::CampaignConfig`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use edgehw::DeviceKind;
use fahana::{merge_frontiers, EpisodeRecord, ParetoPoint};

use crate::report::{CampaignReport, Json, ReportError, ScenarioReport};

/// Failure of a store operation.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Filesystem trouble.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, formatted.
        message: String,
    },
    /// An artifact file is not a valid campaign report.
    BadArtifact {
        /// The offending file.
        path: String,
        /// Why it failed to parse.
        error: ReportError,
    },
    /// An artifact with this id already exists.
    DuplicateId(String),
    /// The id contains characters that would escape the artifacts
    /// directory.
    InvalidId(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "store io on {path}: {message}"),
            StoreError::BadArtifact { path, error } => {
                write!(f, "bad artifact {path}: {error}")
            }
            StoreError::DuplicateId(id) => write!(f, "artifact id `{id}` already exists"),
            StoreError::InvalidId(id) => write!(f, "invalid artifact id `{id}`"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One campaign report held by the store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredCampaign {
    /// The artifact id (file stem under `artifacts/`).
    pub id: String,
    /// The parsed report.
    pub report: CampaignReport,
}

/// A "best architecture for device X under constraint Y" question.
///
/// Unset fields do not constrain. Constraints apply to the *records* the
/// reports carry (best / best-small / fairest architectures per scenario);
/// only records marked valid by their search are considered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreQuery {
    /// Only scenarios targeting this device.
    pub device: Option<DeviceKind>,
    /// Only scenarios with this reward setting name.
    pub reward: Option<String>,
    /// Only scenarios with this freezing mode.
    pub freezing: Option<bool>,
    /// Upper bound on estimated device latency (ms).
    pub max_latency_ms: Option<f64>,
    /// Upper bound on the unfairness score.
    pub max_unfairness: Option<f64>,
    /// Lower bound on overall accuracy.
    pub min_accuracy: Option<f64>,
    /// Upper bound on parameter count.
    pub max_params: Option<u64>,
}

impl StoreQuery {
    fn admits(&self, record: &EpisodeRecord) -> bool {
        record.valid
            && self.max_latency_ms.is_none_or(|tc| record.latency_ms <= tc)
            && self.max_unfairness.is_none_or(|u| record.unfairness <= u)
            && self.min_accuracy.is_none_or(|a| record.accuracy >= a)
            && self.max_params.is_none_or(|p| record.params <= p)
    }

    fn admits_scenario(&self, scenario: &ScenarioReport) -> bool {
        self.device
            .is_none_or(|device| scenario.device_slug == device.slug())
            && self.reward.as_deref().is_none_or(|r| scenario.reward == r)
            && self.freezing.is_none_or(|f| scenario.use_freezing == f)
    }
}

/// One architecture satisfying a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Which artifact it came from.
    pub campaign: String,
    /// Which scenario within that campaign.
    pub scenario: String,
    /// The role the record played in its report (`best`, `best_small`,
    /// `fairest`).
    pub role: &'static str,
    /// The discovered architecture's metrics.
    pub record: EpisodeRecord,
}

/// The answer to a [`StoreQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Highest-reward admissible architecture, if any.
    pub best: Option<Candidate>,
    /// Every admissible architecture, deduplicated by name (highest
    /// reward kept), sorted by reward descending.
    pub candidates: Vec<Candidate>,
    /// The accuracy/unfairness Pareto frontier merged across every
    /// matching scenario of every campaign.
    pub frontier: Vec<ParetoPoint>,
    /// Campaigns inspected.
    pub campaigns_consulted: usize,
    /// Scenarios that matched the device/reward/freezing filters.
    pub scenarios_matched: usize,
}

impl QueryAnswer {
    /// Renders the answer as JSON (what `fahana-query --json` prints).
    pub fn to_json(&self) -> Json {
        let candidate_json = |c: &Candidate| {
            Json::Obj(vec![
                ("campaign".into(), Json::str(&c.campaign)),
                ("scenario".into(), Json::str(&c.scenario)),
                ("role".into(), Json::str(c.role)),
                ("name".into(), Json::str(&c.record.name)),
                ("params".into(), Json::Int(c.record.params as i64)),
                ("latency_ms".into(), Json::Num(c.record.latency_ms)),
                ("accuracy".into(), Json::Num(c.record.accuracy)),
                ("unfairness".into(), Json::Num(c.record.unfairness)),
                ("reward".into(), Json::Num(c.record.reward)),
            ])
        };
        Json::Obj(vec![
            (
                "best".into(),
                self.best.as_ref().map(candidate_json).unwrap_or(Json::Null),
            ),
            (
                "candidates".into(),
                Json::Arr(self.candidates.iter().map(candidate_json).collect()),
            ),
            (
                "frontier".into(),
                Json::Arr(
                    self.frontier
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(&p.label)),
                                ("maximize".into(), Json::Num(p.maximize)),
                                ("minimize".into(), Json::Num(p.minimize)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "campaigns_consulted".into(),
                Json::Int(self.campaigns_consulted as i64),
            ),
            (
                "scenarios_matched".into(),
                Json::Int(self.scenarios_matched as i64),
            ),
        ])
    }
}

/// A directory of ingested campaign reports with query support.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory tree cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        let artifacts = root.join("artifacts");
        std::fs::create_dir_all(&artifacts).map_err(|e| StoreError::Io {
            path: artifacts.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(ArtifactStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn artifact_path(&self, id: &str) -> PathBuf {
        self.root.join("artifacts").join(format!("{id}.json"))
    }

    /// Ingests a campaign report (JSON text) under `id`. The report is
    /// validated by parsing before anything is written; the id must be a
    /// plain file stem (letters, digits, `-`, `_`, `.`).
    ///
    /// # Errors
    ///
    /// [`StoreError::BadArtifact`] for unparsable reports,
    /// [`StoreError::DuplicateId`] / [`StoreError::InvalidId`] for id
    /// problems, [`StoreError::Io`] for filesystem failures.
    pub fn ingest(&self, id: &str, report_json: &str) -> Result<StoredCampaign, StoreError> {
        let stored = self.ingest_inner(id, report_json)?;
        self.write_catalog()?;
        Ok(stored)
    }

    fn ingest_inner(&self, id: &str, report_json: &str) -> Result<StoredCampaign, StoreError> {
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(StoreError::InvalidId(id.to_string()));
        }
        let report =
            CampaignReport::parse(report_json).map_err(|error| StoreError::BadArtifact {
                path: format!("<ingest:{id}>"),
                error,
            })?;
        let path = self.artifact_path(id);
        if path.exists() {
            return Err(StoreError::DuplicateId(id.to_string()));
        }
        // atomic publish: write a hidden sibling (never listed — campaigns()
        // only reads `*.json`), then hard-link it into place. The link fails
        // if a concurrent ingest won the race, so an artifact can neither be
        // observed half-written nor silently overwritten.
        let tmp = self.root.join("artifacts").join(format!(".{id}.tmp"));
        std::fs::write(&tmp, report_json).map_err(|e| StoreError::Io {
            path: tmp.display().to_string(),
            message: e.to_string(),
        })?;
        let publish = std::fs::hard_link(&tmp, &path);
        std::fs::remove_file(&tmp).ok();
        publish.map_err(|e| {
            if e.kind() == std::io::ErrorKind::AlreadyExists {
                StoreError::DuplicateId(id.to_string())
            } else {
                StoreError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                }
            }
        })?;
        Ok(StoredCampaign {
            id: id.to_string(),
            report,
        })
    }

    /// Ingests a report file, deriving the id from its file stem and
    /// suffixing `-2`, `-3`, … if that id is taken.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::ingest`].
    pub fn ingest_file(&self, path: impl AsRef<Path>) -> Result<StoredCampaign, StoreError> {
        let stored = self.ingest_file_inner(path.as_ref())?;
        self.write_catalog()?;
        Ok(stored)
    }

    /// Ingests several report files, rebuilding the catalog once at the
    /// end instead of after every file (ingesting N reports re-parses the
    /// whole store per catalog rebuild, so per-file rebuilds would be
    /// quadratic).
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::ingest`]; the first failure aborts the batch
    /// (already-ingested files stay ingested, and the catalog is rebuilt
    /// before the error is returned so it never lags the artifacts).
    pub fn ingest_files(
        &self,
        paths: &[impl AsRef<Path>],
    ) -> Result<Vec<StoredCampaign>, StoreError> {
        let mut stored = Vec::with_capacity(paths.len());
        let mut failure = None;
        for path in paths {
            match self.ingest_file_inner(path.as_ref()) {
                Ok(campaign) => stored.push(campaign),
                Err(error) => {
                    failure = Some(error);
                    break;
                }
            }
        }
        if !stored.is_empty() {
            self.write_catalog()?;
        }
        match failure {
            Some(error) => Err(error),
            None => Ok(stored),
        }
    }

    fn ingest_file_inner(&self, path: &Path) -> Result<StoredCampaign, StoreError> {
        let text = std::fs::read_to_string(path).map_err(|e| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let stem: String = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "campaign".into())
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let mut id = stem.clone();
        let mut suffix = 2;
        loop {
            match self.ingest_inner(&id, &text) {
                Err(StoreError::DuplicateId(_)) => {
                    id = format!("{stem}-{suffix}");
                    suffix += 1;
                }
                other => return other,
            }
        }
    }

    /// Loads every ingested campaign, sorted by id.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on unreadable directories/files,
    /// [`StoreError::BadArtifact`] if an artifact no longer parses
    /// (external tampering — the store itself only writes validated
    /// reports).
    pub fn campaigns(&self) -> Result<Vec<StoredCampaign>, StoreError> {
        let dir = self.root.join("artifacts");
        let entries = std::fs::read_dir(&dir).map_err(|e| StoreError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let mut campaigns = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = std::fs::read_to_string(&path).map_err(|e| StoreError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            let report = CampaignReport::parse(&text).map_err(|error| StoreError::BadArtifact {
                path: path.display().to_string(),
                error,
            })?;
            let id = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            campaigns.push(StoredCampaign { id, report });
        }
        campaigns.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(campaigns)
    }

    /// Answers a query from every ingested campaign: filters scenarios by
    /// device/reward/freezing, collects admissible best/best-small/fairest
    /// records, and merges the accuracy/unfairness frontiers of every
    /// matching scenario into one cross-campaign Pareto frontier.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::campaigns`].
    pub fn query(&self, query: &StoreQuery) -> Result<QueryAnswer, StoreError> {
        let campaigns = self.campaigns()?;
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut frontiers: Vec<Vec<ParetoPoint>> = Vec::new();
        let mut scenarios_matched = 0;
        for campaign in &campaigns {
            for scenario in &campaign.report.scenarios {
                if !query.admits_scenario(scenario) {
                    continue;
                }
                scenarios_matched += 1;
                frontiers.push(scenario.accuracy_fairness_frontier.clone());
                for (role, record) in [
                    ("best", &scenario.best),
                    ("best_small", &scenario.best_small),
                    ("fairest", &scenario.fairest),
                ] {
                    if let Some(record) = record {
                        if query.admits(record) {
                            candidates.push(Candidate {
                                campaign: campaign.id.clone(),
                                scenario: scenario.scenario.clone(),
                                role,
                                record: record.clone(),
                            });
                        }
                    }
                }
            }
        }

        // dedupe by architecture name, keeping the highest-reward sighting
        candidates.sort_by(|a, b| {
            b.record
                .reward
                .partial_cmp(&a.record.reward)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.record.name.cmp(&b.record.name))
        });
        let mut seen = std::collections::HashSet::new();
        candidates.retain(|c| seen.insert(c.record.name.clone()));

        Ok(QueryAnswer {
            best: candidates.first().cloned(),
            candidates,
            frontier: merge_frontiers(frontiers),
            campaigns_consulted: campaigns.len(),
            scenarios_matched,
        })
    }

    /// Regenerates `catalog.json`: a human-readable index keyed by
    /// artifact id, listing each scenario's device/reward/freezing key.
    fn write_catalog(&self) -> Result<(), StoreError> {
        let campaigns = self.campaigns()?;
        // device → reward → freezing counts, so the catalog doubles as a
        // coverage summary of the whole store
        let mut coverage: BTreeMap<String, i64> = BTreeMap::new();
        let catalog = Json::Obj(vec![
            (
                "campaigns".into(),
                Json::Arr(
                    campaigns
                        .iter()
                        .map(|campaign| {
                            Json::Obj(vec![
                                ("id".into(), Json::str(&campaign.id)),
                                (
                                    "scenarios".into(),
                                    Json::Arr(
                                        campaign
                                            .report
                                            .scenarios
                                            .iter()
                                            .map(|s| {
                                                let mode =
                                                    if s.use_freezing { "frozen" } else { "full" };
                                                *coverage
                                                    .entry(format!(
                                                        "{}/{}/{mode}",
                                                        s.device_slug, s.reward
                                                    ))
                                                    .or_insert(0) += 1;
                                                Json::Obj(vec![
                                                    (
                                                        "device_slug".into(),
                                                        Json::str(&s.device_slug),
                                                    ),
                                                    ("reward".into(), Json::str(&s.reward)),
                                                    (
                                                        "use_freezing".into(),
                                                        Json::Bool(s.use_freezing),
                                                    ),
                                                    ("scenario".into(), Json::str(&s.scenario)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "coverage".into(),
                Json::Obj(
                    coverage
                        .into_iter()
                        .map(|(key, count)| (key, Json::Int(count)))
                        .collect(),
                ),
            ),
        ]);
        let path = self.root.join("catalog.json");
        std::fs::write(&path, catalog.render()).map_err(|e| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CampaignConfig, RewardSetting};
    use crate::{campaign_json, CampaignEngine};

    fn temp_store(tag: &str) -> ArtifactStore {
        let root = std::env::temp_dir().join(format!("fahana-store-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        ArtifactStore::open(root).unwrap()
    }

    fn tiny_report(seed: u64) -> String {
        let outcome = CampaignEngine::new(CampaignConfig {
            episodes: 4,
            samples: 120,
            threads: 2,
            seed,
            devices: vec![DeviceKind::RaspberryPi4, DeviceKind::OdroidXu4],
            rewards: vec![RewardSetting::balanced()],
            freezing: vec![true],
            ..CampaignConfig::default()
        })
        .unwrap()
        .run()
        .unwrap();
        campaign_json(&outcome)
    }

    #[test]
    fn ingest_validates_and_persists() {
        let store = temp_store("ingest");
        let report = tiny_report(1);
        let stored = store.ingest("run-1", &report).unwrap();
        assert_eq!(stored.id, "run-1");
        assert_eq!(stored.report.scenarios.len(), 2);
        // artifact is on disk, verbatim
        let on_disk =
            std::fs::read_to_string(store.root().join("artifacts").join("run-1.json")).unwrap();
        assert_eq!(on_disk, report);
        // catalog was regenerated and is valid JSON
        let catalog = std::fs::read_to_string(store.root().join("catalog.json")).unwrap();
        let parsed = Json::parse(&catalog).unwrap();
        assert_eq!(parsed.get("campaigns").unwrap().as_arr().unwrap().len(), 1);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn bad_reports_and_ids_are_rejected() {
        let store = temp_store("bad");
        assert!(matches!(
            store.ingest("x", "not json"),
            Err(StoreError::BadArtifact { .. })
        ));
        assert!(matches!(
            store.ingest("../escape", "{}"),
            Err(StoreError::InvalidId(_))
        ));
        let report = tiny_report(2);
        store.ingest("dup", &report).unwrap();
        assert_eq!(
            store.ingest("dup", &report),
            Err(StoreError::DuplicateId("dup".into()))
        );
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn ingest_file_derives_and_disambiguates_ids() {
        let store = temp_store("files");
        let report = tiny_report(3);
        let src = store.root().join("incoming.json");
        std::fs::write(&src, &report).unwrap();
        assert_eq!(store.ingest_file(&src).unwrap().id, "incoming");
        assert_eq!(store.ingest_file(&src).unwrap().id, "incoming-2");
        assert_eq!(store.campaigns().unwrap().len(), 2);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn ingest_files_batches_with_one_catalog_rebuild() {
        let store = temp_store("batch");
        let report = tiny_report(4);
        let a = store.root().join("a.json");
        let b = store.root().join("b.json");
        std::fs::write(&a, &report).unwrap();
        std::fs::write(&b, &report).unwrap();
        let stored = store.ingest_files(&[&a, &b]).unwrap();
        assert_eq!(
            stored.iter().map(|s| s.id.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        // catalog reflects both
        let catalog = std::fs::read_to_string(store.root().join("catalog.json")).unwrap();
        let parsed = Json::parse(&catalog).unwrap();
        assert_eq!(parsed.get("campaigns").unwrap().as_arr().unwrap().len(), 2);
        // a failing entry aborts the batch but keeps earlier ingests
        let bad = store.root().join("bad.json");
        std::fs::write(&bad, "not json").unwrap();
        let c = store.root().join("c.json");
        std::fs::write(&c, &report).unwrap();
        assert!(matches!(
            store.ingest_files(&[&c, &bad]),
            Err(StoreError::BadArtifact { .. })
        ));
        assert_eq!(store.campaigns().unwrap().len(), 3);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn query_filters_and_ranks() {
        let store = temp_store("query");
        store.ingest("a", &tiny_report(10)).unwrap();
        store.ingest("b", &tiny_report(11)).unwrap();

        let all = store.query(&StoreQuery::default()).unwrap();
        assert_eq!(all.campaigns_consulted, 2);
        assert_eq!(all.scenarios_matched, 4);
        assert!(!all.candidates.is_empty());
        // ranked by reward, best is the head
        assert!(all
            .candidates
            .windows(2)
            .all(|w| w[0].record.reward >= w[1].record.reward));
        assert_eq!(all.best.as_ref(), all.candidates.first());
        // frontier is mutually non-dominated
        for p in &all.frontier {
            for q in &all.frontier {
                assert!(!p.dominates(q) || p.maximize == q.maximize);
            }
        }

        // device filter restricts the scenarios consulted
        let pi_only = store
            .query(&StoreQuery {
                device: Some(DeviceKind::RaspberryPi4),
                ..StoreQuery::default()
            })
            .unwrap();
        assert_eq!(pi_only.scenarios_matched, 2);

        // an unsatisfiable constraint yields an empty, well-formed answer
        let impossible = store
            .query(&StoreQuery {
                max_latency_ms: Some(0.0),
                ..StoreQuery::default()
            })
            .unwrap();
        assert!(impossible.best.is_none());
        assert!(impossible.candidates.is_empty());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn query_answer_renders_as_json() {
        let store = temp_store("answer-json");
        store.ingest("a", &tiny_report(12)).unwrap();
        let answer = store.query(&StoreQuery::default()).unwrap();
        let rendered = answer.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        assert!(parsed.get("best").is_some());
        assert_eq!(parsed.get("campaigns_consulted").unwrap().as_i64(), Some(1));
        std::fs::remove_dir_all(store.root()).ok();
    }
}
