//! The campaign artifact store: a durable, queryable catalog of completed
//! campaign reports.
//!
//! A campaign run is expensive; its report is cheap to keep. The store
//! ingests campaign JSON reports (as written by `fahana-campaign --out`)
//! under a root directory and answers the question the ROADMAP's serving
//! front-end cares about: *"best architecture for device X under
//! latency/fairness constraint Y"* — across every campaign ever ingested,
//! with Pareto frontiers merged via [`fahana::merge_frontiers`].
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/
//!   artifacts/<id>.json   # one ingested campaign report, verbatim
//!   catalog.json          # regenerated index: id → scenario keys
//! ```
//!
//! Artifacts are the source of truth; `catalog.json` is a derived,
//! human-readable index rebuilt on every ingest (it is never read back,
//! so a stale or deleted catalog can not corrupt anything). Scenarios are
//! keyed by device slug × reward name × freezing mode — the three grid
//! axes of [`crate::scenario::CampaignConfig`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use edgehw::DeviceKind;
use fahana::{merge_frontiers, EpisodeRecord, ParetoPoint};

use crate::report::{CampaignReport, Json, ReportError, ScenarioReport};

/// Failure of a store operation.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Filesystem trouble.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, formatted.
        message: String,
    },
    /// An artifact file is not a valid campaign report.
    BadArtifact {
        /// The offending file.
        path: String,
        /// Why it failed to parse.
        error: ReportError,
    },
    /// An artifact with this id already exists.
    DuplicateId(String),
    /// The id contains characters that would escape the artifacts
    /// directory.
    InvalidId(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "store io on {path}: {message}"),
            StoreError::BadArtifact { path, error } => {
                write!(f, "bad artifact {path}: {error}")
            }
            StoreError::DuplicateId(id) => write!(f, "artifact id `{id}` already exists"),
            StoreError::InvalidId(id) => write!(f, "invalid artifact id `{id}`"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One campaign report held by the store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredCampaign {
    /// The artifact id (file stem under `artifacts/`).
    pub id: String,
    /// The parsed report.
    pub report: CampaignReport,
}

/// A "best architecture for device X under constraint Y" question.
///
/// Unset fields do not constrain. Constraints apply to the *records* the
/// reports carry (best / best-small / fairest architectures per scenario);
/// only records marked valid by their search are considered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreQuery {
    /// Only scenarios targeting this device.
    pub device: Option<DeviceKind>,
    /// Only scenarios with this reward setting name.
    pub reward: Option<String>,
    /// Only scenarios with this freezing mode.
    pub freezing: Option<bool>,
    /// Upper bound on estimated device latency (ms).
    pub max_latency_ms: Option<f64>,
    /// Upper bound on the unfairness score.
    pub max_unfairness: Option<f64>,
    /// Lower bound on overall accuracy.
    pub min_accuracy: Option<f64>,
    /// Upper bound on parameter count.
    pub max_params: Option<u64>,
}

impl StoreQuery {
    /// Every filter key [`StoreQuery::set`] understands, in display order.
    pub const KEYS: [&'static str; 7] = [
        "device",
        "reward",
        "freezing",
        "max_latency_ms",
        "max_unfairness",
        "min_accuracy",
        "max_params",
    ];

    /// Sets one filter from a textual key/value pair — the single parsing
    /// path shared by the `fahana-query` CLI flags and the `fahana-serve`
    /// daemon's URL query parameters.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown keys or unparsable values.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        let number = |key: &str, value: &str| -> Result<f64, String> {
            value
                .parse()
                .map_err(|_| format!("`{key}` expects a number, got `{value}`"))
        };
        match key {
            "device" => {
                self.device = Some(DeviceKind::from_slug(value).ok_or_else(|| {
                    let known: Vec<&str> = DeviceKind::all().iter().map(|d| d.slug()).collect();
                    format!(
                        "unknown device `{value}` (expected one of {})",
                        known.join(", ")
                    )
                })?);
            }
            "reward" => self.reward = Some(value.to_string()),
            "freezing" => {
                self.freezing = Some(match value {
                    "on" | "true" | "yes" | "1" => true,
                    "off" | "false" | "no" | "0" => false,
                    other => return Err(format!("`freezing` expects on/off, got `{other}`")),
                });
            }
            "max_latency_ms" => self.max_latency_ms = Some(number(key, value)?),
            "max_unfairness" => self.max_unfairness = Some(number(key, value)?),
            "min_accuracy" => self.min_accuracy = Some(number(key, value)?),
            "max_params" => {
                self.max_params = Some(
                    value
                        .parse()
                        .map_err(|_| format!("`max_params` expects an integer, got `{value}`"))?,
                );
            }
            other => {
                return Err(format!(
                    "unknown filter `{other}` (expected one of {})",
                    Self::KEYS.join(", ")
                ))
            }
        }
        Ok(())
    }

    fn admits(&self, record: &EpisodeRecord) -> bool {
        record.valid
            && self.max_latency_ms.is_none_or(|tc| record.latency_ms <= tc)
            && self.max_unfairness.is_none_or(|u| record.unfairness <= u)
            && self.min_accuracy.is_none_or(|a| record.accuracy >= a)
            && self.max_params.is_none_or(|p| record.params <= p)
    }

    fn admits_scenario(&self, scenario: &ScenarioReport) -> bool {
        self.device
            .is_none_or(|device| scenario.device_slug == device.slug())
            && self.reward.as_deref().is_none_or(|r| scenario.reward == r)
            && self.freezing.is_none_or(|f| scenario.use_freezing == f)
    }
}

/// One architecture satisfying a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Which artifact it came from.
    pub campaign: String,
    /// Which scenario within that campaign.
    pub scenario: String,
    /// The role the record played in its report (`best`, `best_small`,
    /// `fairest`).
    pub role: &'static str,
    /// The discovered architecture's metrics.
    pub record: EpisodeRecord,
}

/// The answer to a [`StoreQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Highest-reward admissible architecture, if any.
    pub best: Option<Candidate>,
    /// Every admissible architecture, deduplicated by name (highest
    /// reward kept), sorted by reward descending.
    pub candidates: Vec<Candidate>,
    /// The accuracy/unfairness Pareto frontier merged across every
    /// matching scenario of every campaign.
    pub frontier: Vec<ParetoPoint>,
    /// Campaigns inspected.
    pub campaigns_consulted: usize,
    /// Scenarios that matched the device/reward/freezing filters.
    pub scenarios_matched: usize,
}

impl QueryAnswer {
    /// Renders the answer as JSON (what `fahana-query --json` prints).
    pub fn to_json(&self) -> Json {
        let candidate_json = |c: &Candidate| {
            Json::Obj(vec![
                ("campaign".into(), Json::str(&c.campaign)),
                ("scenario".into(), Json::str(&c.scenario)),
                ("role".into(), Json::str(c.role)),
                ("name".into(), Json::str(&c.record.name)),
                ("params".into(), Json::Int(c.record.params as i64)),
                ("latency_ms".into(), Json::Num(c.record.latency_ms)),
                ("accuracy".into(), Json::Num(c.record.accuracy)),
                ("unfairness".into(), Json::Num(c.record.unfairness)),
                ("reward".into(), Json::Num(c.record.reward)),
            ])
        };
        Json::Obj(vec![
            (
                "best".into(),
                self.best.as_ref().map(candidate_json).unwrap_or(Json::Null),
            ),
            (
                "candidates".into(),
                Json::Arr(self.candidates.iter().map(candidate_json).collect()),
            ),
            (
                "frontier".into(),
                Json::Arr(
                    self.frontier
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(&p.label)),
                                ("maximize".into(), Json::Num(p.maximize)),
                                ("minimize".into(), Json::Num(p.minimize)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "campaigns_consulted".into(),
                Json::Int(self.campaigns_consulted as i64),
            ),
            (
                "scenarios_matched".into(),
                Json::Int(self.scenarios_matched as i64),
            ),
        ])
    }
}

/// Answers a query from an in-memory set of campaigns: filters scenarios
/// by device/reward/freezing, collects admissible best/best-small/fairest
/// records, and merges the accuracy/unfairness frontiers of every matching
/// scenario into one cross-campaign Pareto frontier.
///
/// This is the single query/answer core shared by the one-shot
/// `fahana-query` CLI (via [`ArtifactStore::query`], which re-scans disk)
/// and the long-lived `fahana-serve` daemon (which holds the campaigns in
/// a [`crate::serve::StoreView`] and never re-scans per request).
pub fn answer_query(campaigns: &[StoredCampaign], query: &StoreQuery) -> QueryAnswer {
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut frontiers: Vec<Vec<ParetoPoint>> = Vec::new();
    let mut scenarios_matched = 0;
    for campaign in campaigns {
        for scenario in &campaign.report.scenarios {
            if !query.admits_scenario(scenario) {
                continue;
            }
            scenarios_matched += 1;
            frontiers.push(scenario.accuracy_fairness_frontier.clone());
            for (role, record) in [
                ("best", &scenario.best),
                ("best_small", &scenario.best_small),
                ("fairest", &scenario.fairest),
            ] {
                if let Some(record) = record {
                    if query.admits(record) {
                        candidates.push(Candidate {
                            campaign: campaign.id.clone(),
                            scenario: scenario.scenario.clone(),
                            role,
                            record: record.clone(),
                        });
                    }
                }
            }
        }
    }

    // dedupe by architecture name, keeping the highest-reward sighting
    candidates.sort_by(|a, b| {
        b.record
            .reward
            .partial_cmp(&a.record.reward)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.record.name.cmp(&b.record.name))
    });
    let mut seen = std::collections::BTreeSet::new();
    candidates.retain(|c| seen.insert(c.record.name.clone()));

    QueryAnswer {
        best: candidates.first().cloned(),
        candidates,
        frontier: merge_frontiers(frontiers),
        campaigns_consulted: campaigns.len(),
        scenarios_matched,
    }
}

/// A per-device leaderboard: the admissible architectures for one device,
/// deduplicated by name and ranked by reward descending — the store-side
/// aggregation behind `fahana-serve`'s `GET /leaderboard/{device_slug}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaderboard {
    /// The device the board ranks for.
    pub device: DeviceKind,
    /// Ranked entries, best first, truncated to the requested size.
    pub entries: Vec<Candidate>,
    /// Campaigns inspected.
    pub campaigns_consulted: usize,
    /// Scenarios targeting the device.
    pub scenarios_matched: usize,
}

/// Builds the [`Leaderboard`] for `device` over `campaigns`, keeping the
/// `top` highest-reward architectures.
pub fn leaderboard(campaigns: &[StoredCampaign], device: DeviceKind, top: usize) -> Leaderboard {
    let answer = answer_query(
        campaigns,
        &StoreQuery {
            device: Some(device),
            ..StoreQuery::default()
        },
    );
    let mut entries = answer.candidates;
    entries.truncate(top);
    Leaderboard {
        device,
        entries,
        campaigns_consulted: answer.campaigns_consulted,
        scenarios_matched: answer.scenarios_matched,
    }
}

impl Leaderboard {
    /// Renders the leaderboard as JSON.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("device_slug".into(), Json::str(self.device.slug())),
            ("device".into(), Json::str(self.device.label())),
            (
                "entries".into(),
                Json::Arr(
                    self.entries
                        .iter()
                        .enumerate()
                        .map(|(index, c)| {
                            Json::Obj(vec![
                                ("rank".into(), Json::Int(index as i64 + 1)),
                                ("name".into(), Json::str(&c.record.name)),
                                ("reward".into(), Json::Num(c.record.reward)),
                                ("accuracy".into(), Json::Num(c.record.accuracy)),
                                ("unfairness".into(), Json::Num(c.record.unfairness)),
                                ("latency_ms".into(), Json::Num(c.record.latency_ms)),
                                ("params".into(), Json::Int(c.record.params as i64)),
                                ("campaign".into(), Json::str(&c.campaign)),
                                ("scenario".into(), Json::str(&c.scenario)),
                                ("role".into(), Json::str(c.role)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "campaigns_consulted".into(),
                Json::Int(self.campaigns_consulted as i64),
            ),
            (
                "scenarios_matched".into(),
                Json::Int(self.scenarios_matched as i64),
            ),
        ])
    }
}

/// The catalog document: a human-readable index keyed by artifact id
/// listing each scenario's device/reward/freezing key, plus a coverage
/// summary of the whole store. This is both what
/// [`ArtifactStore::write_catalog`] persists as `catalog.json` and what
/// `fahana-serve` answers on `GET /catalog`.
pub fn catalog_json(campaigns: &[StoredCampaign]) -> Json {
    let mut coverage: BTreeMap<String, i64> = BTreeMap::new();
    Json::Obj(vec![
        (
            "campaigns".into(),
            Json::Arr(
                campaigns
                    .iter()
                    .map(|campaign| {
                        Json::Obj(vec![
                            ("id".into(), Json::str(&campaign.id)),
                            (
                                "scenarios".into(),
                                Json::Arr(
                                    campaign
                                        .report
                                        .scenarios
                                        .iter()
                                        .map(|s| {
                                            let mode =
                                                if s.use_freezing { "frozen" } else { "full" };
                                            *coverage
                                                .entry(format!(
                                                    "{}/{}/{mode}",
                                                    s.device_slug, s.reward
                                                ))
                                                .or_insert(0) += 1;
                                            Json::Obj(vec![
                                                ("device_slug".into(), Json::str(&s.device_slug)),
                                                ("reward".into(), Json::str(&s.reward)),
                                                ("use_freezing".into(), Json::Bool(s.use_freezing)),
                                                ("scenario".into(), Json::str(&s.scenario)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "coverage".into(),
            Json::Obj(
                coverage
                    .into_iter()
                    .map(|(key, count)| (key, Json::Int(count)))
                    .collect(),
            ),
        ),
    ])
}

/// Best-effort removal of hidden `.*.tmp` staging files left behind by
/// writers that crashed between staging and publishing.
fn sweep_stale_tmp(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') && name.ends_with(".tmp") {
            std::fs::remove_file(entry.path()).ok();
        }
    }
}

/// A directory of ingested campaign reports with query support.
///
/// Clones share one catalog-rebuild lock, so concurrent in-process
/// ingests serialize their `catalog.json` regeneration: the last rebuild
/// is guaranteed to have scanned the artifacts directory *after* every
/// completed ingest, i.e. the settled catalog is complete. (Writers in
/// *other* processes still interleave safely — the atomic rename means no
/// reader ever sees a torn catalog — but the settled document then
/// reflects whichever process rebuilt last; [`rebuild_catalog`] brings it
/// current.)
///
/// [`rebuild_catalog`]: ArtifactStore::rebuild_catalog
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
    catalog_lock: std::sync::Arc<std::sync::Mutex<()>>,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// Stale `.*.tmp` files — the residue of ingests or catalog writes
    /// that crashed between staging and publishing — are swept here, so a
    /// crashed writer never leaks hidden files forever. (A store should be
    /// opened before concurrent writers start; opening mid-ingest from a
    /// *different* process could sweep that ingest's staging file and fail
    /// its publish, which is safe but noisy.)
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory tree cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        let artifacts = root.join("artifacts");
        std::fs::create_dir_all(&artifacts).map_err(|e| StoreError::Io {
            path: artifacts.display().to_string(),
            message: e.to_string(),
        })?;
        for dir in [&root, &artifacts] {
            sweep_stale_tmp(dir);
        }
        Ok(ArtifactStore {
            root,
            catalog_lock: std::sync::Arc::new(std::sync::Mutex::new(())),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn artifact_path(&self, id: &str) -> PathBuf {
        self.root.join("artifacts").join(format!("{id}.json"))
    }

    /// Ingests a campaign report (JSON text) under `id`. The report is
    /// validated by parsing before anything is written; the id must be a
    /// plain file stem (letters, digits, `-`, `_`, `.`).
    ///
    /// # Errors
    ///
    /// [`StoreError::BadArtifact`] for unparsable reports,
    /// [`StoreError::DuplicateId`] / [`StoreError::InvalidId`] for id
    /// problems, [`StoreError::Io`] for filesystem failures.
    pub fn ingest(&self, id: &str, report_json: &str) -> Result<StoredCampaign, StoreError> {
        let stored = self.ingest_inner(id, report_json)?;
        self.write_catalog()?;
        Ok(stored)
    }

    fn ingest_inner(&self, id: &str, report_json: &str) -> Result<StoredCampaign, StoreError> {
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(StoreError::InvalidId(id.to_string()));
        }
        let report =
            CampaignReport::parse(report_json).map_err(|error| StoreError::BadArtifact {
                path: format!("<ingest:{id}>"),
                error,
            })?;
        let path = self.artifact_path(id);
        if path.exists() {
            return Err(StoreError::DuplicateId(id.to_string()));
        }
        // atomic publish: write a hidden sibling (never listed — campaigns()
        // only reads `*.json`), then hard-link it into place. The link fails
        // if a concurrent ingest won the race, so an artifact can neither be
        // observed half-written nor silently overwritten. The staging name
        // must be unique per writer: after the winner's hard_link, its tmp
        // shares an inode with the published artifact, so a loser reusing
        // the same tmp name would truncate the *published* file in place.
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.root.join("artifacts").join(format!(
            ".{id}.{}.{}.tmp",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, report_json).map_err(|e| StoreError::Io {
            path: tmp.display().to_string(),
            message: e.to_string(),
        })?;
        let publish = std::fs::hard_link(&tmp, &path);
        std::fs::remove_file(&tmp).ok();
        publish.map_err(|e| {
            if e.kind() == std::io::ErrorKind::AlreadyExists {
                StoreError::DuplicateId(id.to_string())
            } else {
                StoreError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                }
            }
        })?;
        Ok(StoredCampaign {
            id: id.to_string(),
            report,
        })
    }

    /// Like [`ArtifactStore::ingest`], but on [`StoreError::DuplicateId`]
    /// retries with `-2`, `-3`, … suffixes until an id is free — the one
    /// collision policy shared by `fahana-campaign --store` and the
    /// `fahana-shard` coordinator (whose HTTP publish maps the same
    /// policy onto 409 answers), so repeated runs with a default id never
    /// discard a finished campaign.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::ingest`], except `DuplicateId` (retried away).
    pub fn ingest_with_suffix(
        &self,
        id: &str,
        report_json: &str,
    ) -> Result<StoredCampaign, StoreError> {
        let mut suffix = 1;
        loop {
            let attempt = if suffix == 1 {
                id.to_string()
            } else {
                format!("{id}-{suffix}")
            };
            match self.ingest(&attempt, report_json) {
                Err(StoreError::DuplicateId(_)) => suffix += 1,
                other => return other,
            }
        }
    }

    /// Ingests a report file, deriving the id from its file stem and
    /// suffixing `-2`, `-3`, … if that id is taken.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::ingest`].
    pub fn ingest_file(&self, path: impl AsRef<Path>) -> Result<StoredCampaign, StoreError> {
        let stored = self.ingest_file_inner(path.as_ref())?;
        self.write_catalog()?;
        Ok(stored)
    }

    /// Ingests several report files, rebuilding the catalog once at the
    /// end instead of after every file (ingesting N reports re-parses the
    /// whole store per catalog rebuild, so per-file rebuilds would be
    /// quadratic).
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::ingest`]; the first failure aborts the batch
    /// (already-ingested files stay ingested, and the catalog is rebuilt
    /// before the error is returned so it never lags the artifacts).
    pub fn ingest_files(
        &self,
        paths: &[impl AsRef<Path>],
    ) -> Result<Vec<StoredCampaign>, StoreError> {
        let mut stored = Vec::with_capacity(paths.len());
        let mut failure = None;
        for path in paths {
            match self.ingest_file_inner(path.as_ref()) {
                Ok(campaign) => stored.push(campaign),
                Err(error) => {
                    failure = Some(error);
                    break;
                }
            }
        }
        if !stored.is_empty() {
            self.write_catalog()?;
        }
        match failure {
            Some(error) => Err(error),
            None => Ok(stored),
        }
    }

    fn ingest_file_inner(&self, path: &Path) -> Result<StoredCampaign, StoreError> {
        let text = std::fs::read_to_string(path).map_err(|e| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let stem: String = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "campaign".into())
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let mut id = stem.clone();
        let mut suffix = 2;
        loop {
            match self.ingest_inner(&id, &text) {
                Err(StoreError::DuplicateId(_)) => {
                    id = format!("{stem}-{suffix}");
                    suffix += 1;
                }
                other => return other,
            }
        }
    }

    /// Loads every ingested campaign, sorted by id.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on unreadable directories/files,
    /// [`StoreError::BadArtifact`] if an artifact no longer parses
    /// (external tampering — the store itself only writes validated
    /// reports).
    pub fn campaigns(&self) -> Result<Vec<StoredCampaign>, StoreError> {
        let dir = self.root.join("artifacts");
        let entries = std::fs::read_dir(&dir).map_err(|e| StoreError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let mut campaigns = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = std::fs::read_to_string(&path).map_err(|e| StoreError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            let report = CampaignReport::parse(&text).map_err(|error| StoreError::BadArtifact {
                path: path.display().to_string(),
                error,
            })?;
            let id = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            campaigns.push(StoredCampaign { id, report });
        }
        campaigns.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(campaigns)
    }

    /// Answers a query from every ingested campaign — re-scans disk, then
    /// delegates to [`answer_query`] (the core shared with `fahana-serve`).
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::campaigns`].
    pub fn query(&self, query: &StoreQuery) -> Result<QueryAnswer, StoreError> {
        Ok(answer_query(&self.campaigns()?, query))
    }

    /// Regenerates `catalog.json` from the artifacts on disk — useful
    /// after out-of-band writes (a second process ingesting into the same
    /// root, or hand-dropped artifact files).
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::campaigns`], plus [`StoreError::Io`] on write
    /// failures.
    pub fn rebuild_catalog(&self) -> Result<(), StoreError> {
        self.write_catalog()
    }

    /// Regenerates `catalog.json` (see [`catalog_json`]).
    ///
    /// The write is atomic ([`crate::fsutil::write_atomic`]: staged in a
    /// hidden uniquely named sibling and renamed into place), so a crash
    /// or a concurrent ingest can never leave a torn catalog — readers
    /// always observe some complete catalog, matching the artifact publish
    /// discipline of [`ArtifactStore::ingest`]. Rebuilds are serialized
    /// across clones (see the type-level docs), so the settled catalog
    /// covers every in-process ingest.
    fn write_catalog(&self) -> Result<(), StoreError> {
        let _serialize = self.catalog_lock.lock().expect("catalog lock poisoned");
        let campaigns = self.campaigns()?;
        let catalog = catalog_json(&campaigns);
        let path = self.root.join("catalog.json");
        crate::fsutil::write_atomic(&path, catalog.render()).map_err(|e| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CampaignConfig, RewardSetting};
    use crate::{campaign_json, CampaignEngine};

    fn temp_store(tag: &str) -> ArtifactStore {
        let root = std::env::temp_dir().join(format!("fahana-store-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        ArtifactStore::open(root).unwrap()
    }

    fn tiny_report(seed: u64) -> String {
        let outcome = CampaignEngine::new(CampaignConfig {
            episodes: 4,
            samples: 120,
            threads: 2,
            seed,
            devices: vec![DeviceKind::RaspberryPi4, DeviceKind::OdroidXu4],
            rewards: vec![RewardSetting::balanced()],
            freezing: vec![true],
            ..CampaignConfig::default()
        })
        .unwrap()
        .run()
        .unwrap();
        campaign_json(&outcome)
    }

    #[test]
    fn ingest_validates_and_persists() {
        let store = temp_store("ingest");
        let report = tiny_report(1);
        let stored = store.ingest("run-1", &report).unwrap();
        assert_eq!(stored.id, "run-1");
        assert_eq!(stored.report.scenarios.len(), 2);
        // artifact is on disk, verbatim
        let on_disk =
            std::fs::read_to_string(store.root().join("artifacts").join("run-1.json")).unwrap();
        assert_eq!(on_disk, report);
        // catalog was regenerated and is valid JSON
        let catalog = std::fs::read_to_string(store.root().join("catalog.json")).unwrap();
        let parsed = Json::parse(&catalog).unwrap();
        assert_eq!(parsed.get("campaigns").unwrap().as_arr().unwrap().len(), 1);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn bad_reports_and_ids_are_rejected() {
        let store = temp_store("bad");
        assert!(matches!(
            store.ingest("x", "not json"),
            Err(StoreError::BadArtifact { .. })
        ));
        assert!(matches!(
            store.ingest("../escape", "{}"),
            Err(StoreError::InvalidId(_))
        ));
        let report = tiny_report(2);
        store.ingest("dup", &report).unwrap();
        assert_eq!(
            store.ingest("dup", &report),
            Err(StoreError::DuplicateId("dup".into()))
        );
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn ingest_file_derives_and_disambiguates_ids() {
        let store = temp_store("files");
        let report = tiny_report(3);
        let src = store.root().join("incoming.json");
        std::fs::write(&src, &report).unwrap();
        assert_eq!(store.ingest_file(&src).unwrap().id, "incoming");
        assert_eq!(store.ingest_file(&src).unwrap().id, "incoming-2");
        assert_eq!(store.campaigns().unwrap().len(), 2);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn ingest_files_batches_with_one_catalog_rebuild() {
        let store = temp_store("batch");
        let report = tiny_report(4);
        let a = store.root().join("a.json");
        let b = store.root().join("b.json");
        std::fs::write(&a, &report).unwrap();
        std::fs::write(&b, &report).unwrap();
        let stored = store.ingest_files(&[&a, &b]).unwrap();
        assert_eq!(
            stored.iter().map(|s| s.id.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        // catalog reflects both
        let catalog = std::fs::read_to_string(store.root().join("catalog.json")).unwrap();
        let parsed = Json::parse(&catalog).unwrap();
        assert_eq!(parsed.get("campaigns").unwrap().as_arr().unwrap().len(), 2);
        // a failing entry aborts the batch but keeps earlier ingests
        let bad = store.root().join("bad.json");
        std::fs::write(&bad, "not json").unwrap();
        let c = store.root().join("c.json");
        std::fs::write(&c, &report).unwrap();
        assert!(matches!(
            store.ingest_files(&[&c, &bad]),
            Err(StoreError::BadArtifact { .. })
        ));
        assert_eq!(store.campaigns().unwrap().len(), 3);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn query_filters_and_ranks() {
        let store = temp_store("query");
        store.ingest("a", &tiny_report(10)).unwrap();
        store.ingest("b", &tiny_report(11)).unwrap();

        let all = store.query(&StoreQuery::default()).unwrap();
        assert_eq!(all.campaigns_consulted, 2);
        assert_eq!(all.scenarios_matched, 4);
        assert!(!all.candidates.is_empty());
        // ranked by reward, best is the head
        assert!(all
            .candidates
            .windows(2)
            .all(|w| w[0].record.reward >= w[1].record.reward));
        assert_eq!(all.best.as_ref(), all.candidates.first());
        // frontier is mutually non-dominated
        for p in &all.frontier {
            for q in &all.frontier {
                assert!(!p.dominates(q) || p.maximize == q.maximize);
            }
        }

        // device filter restricts the scenarios consulted
        let pi_only = store
            .query(&StoreQuery {
                device: Some(DeviceKind::RaspberryPi4),
                ..StoreQuery::default()
            })
            .unwrap();
        assert_eq!(pi_only.scenarios_matched, 2);

        // an unsatisfiable constraint yields an empty, well-formed answer
        let impossible = store
            .query(&StoreQuery {
                max_latency_ms: Some(0.0),
                ..StoreQuery::default()
            })
            .unwrap();
        assert!(impossible.best.is_none());
        assert!(impossible.candidates.is_empty());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn open_sweeps_stale_tmp_files_from_crashed_writers() {
        let store = temp_store("sweep");
        store.ingest("keep", &tiny_report(20)).unwrap();
        // plant the residue of a crashed ingest and a crashed catalog write
        let stale_artifact = store.root().join("artifacts").join(".crashed.tmp");
        let stale_catalog = store.root().join(".catalog.1234.0.tmp");
        std::fs::write(&stale_artifact, "half-written").unwrap();
        std::fs::write(&stale_catalog, "{\"campai").unwrap();

        let reopened = ArtifactStore::open(store.root()).unwrap();
        assert!(!stale_artifact.exists(), "stale artifact tmp must be swept");
        assert!(!stale_catalog.exists(), "stale catalog tmp must be swept");
        // the published artifact and catalog are untouched
        assert_eq!(reopened.campaigns().unwrap().len(), 1);
        let catalog = std::fs::read_to_string(reopened.root().join("catalog.json")).unwrap();
        Json::parse(&catalog).unwrap();
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn catalog_writes_leave_no_tmp_residue() {
        let store = temp_store("no-residue");
        store.ingest("a", &tiny_report(21)).unwrap();
        store.ingest("b", &tiny_report(22)).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(store.root())
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp residue: {leftovers:?}");
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn query_set_parses_every_key_and_rejects_garbage() {
        let mut query = StoreQuery::default();
        for (key, value) in [
            ("device", "raspberry_pi_4"),
            ("reward", "balanced"),
            ("freezing", "on"),
            ("max_latency_ms", "25.5"),
            ("max_unfairness", "0.2"),
            ("min_accuracy", "0.7"),
            ("max_params", "4000000"),
        ] {
            query.set(key, value).unwrap();
        }
        assert_eq!(
            query,
            StoreQuery {
                device: Some(DeviceKind::RaspberryPi4),
                reward: Some("balanced".into()),
                freezing: Some(true),
                max_latency_ms: Some(25.5),
                max_unfairness: Some(0.2),
                min_accuracy: Some(0.7),
                max_params: Some(4_000_000),
            }
        );
        assert!(query
            .set("device", "toaster")
            .unwrap_err()
            .contains("unknown device"));
        assert!(query
            .set("freezing", "maybe")
            .unwrap_err()
            .contains("on/off"));
        assert!(query
            .set("max_latency_ms", "fast")
            .unwrap_err()
            .contains("number"));
        assert!(query
            .set("max_params", "1.5")
            .unwrap_err()
            .contains("integer"));
        assert!(query
            .set("bogus", "1")
            .unwrap_err()
            .contains("unknown filter"));
    }

    #[test]
    fn leaderboard_ranks_per_device_and_truncates() {
        let store = temp_store("leaderboard");
        store.ingest("a", &tiny_report(30)).unwrap();
        store.ingest("b", &tiny_report(31)).unwrap();
        let campaigns = store.campaigns().unwrap();

        let board = leaderboard(&campaigns, DeviceKind::RaspberryPi4, 3);
        assert_eq!(board.campaigns_consulted, 2);
        assert_eq!(board.scenarios_matched, 2);
        assert!(board.entries.len() <= 3);
        assert!(board
            .entries
            .windows(2)
            .all(|w| w[0].record.reward >= w[1].record.reward));
        // the board is the device-filtered query answer, truncated
        let answer = answer_query(
            &campaigns,
            &StoreQuery {
                device: Some(DeviceKind::RaspberryPi4),
                ..StoreQuery::default()
            },
        );
        assert_eq!(board.entries, answer.candidates[..board.entries.len()]);

        // renders with ranks starting at 1
        let rendered = board.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        let entries = parsed.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), board.entries.len());
        if let Some(first) = entries.first() {
            assert_eq!(first.get("rank").unwrap().as_i64(), Some(1));
        }
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn query_answer_renders_as_json() {
        let store = temp_store("answer-json");
        store.ingest("a", &tiny_report(12)).unwrap();
        let answer = store.query(&StoreQuery::default()).unwrap();
        let rendered = answer.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        assert!(parsed.get("best").is_some());
        assert_eq!(parsed.get("campaigns_consulted").unwrap().as_i64(), Some(1));
        std::fs::remove_dir_all(store.root()).ok();
    }
}
