//! The structured trace layer: spans and events appended as JSONL to a
//! `--trace-out FILE` sink.
//!
//! Every record is one line of JSON rendered by the in-repo [`Json`]
//! serializer — the same renderer reports use — so every emitted line is
//! guaranteed to round-trip through [`Json::parse`]. Records share a
//! fixed envelope:
//!
//! ```text
//! {"ts_ms":<u64>,"kind":"span"|"event","name":"…","dur_ms":<f64|null>,"fields":{…}}
//! ```
//!
//! `ts_ms` is milliseconds since the sink was opened (monotonic, not
//! wall-clock, so traces are meaningful even across clock steps);
//! `dur_ms` is `null` for point events. Writes go through a buffered
//! writer and each record is rendered to a full line before entering the
//! writer, then flushed — a crash can truncate at most the final line,
//! never interleave two records, and every *complete* line on disk
//! parses.
//!
//! Tracing is a side channel by contract: nothing in a trace sink may
//! influence report artifacts, cache snapshots, or merge gates. The
//! determinism suite pins that (`--trace-out` on vs. off produces
//! byte-identical campaign artifacts).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::report::Json;

/// A shared, append-only JSONL trace sink.
#[derive(Debug)]
pub struct TraceSink {
    writer: Mutex<BufWriter<File>>,
    epoch: Instant,
    records: AtomicU64,
}

impl TraceSink {
    /// Creates (truncating) `path` and returns a sink writing to it.
    ///
    /// # Errors
    ///
    /// The underlying `File::create` error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Arc<TraceSink>> {
        let file = File::create(path)?;
        Ok(Arc::new(TraceSink {
            writer: Mutex::new(BufWriter::new(file)),
            epoch: Instant::now(),
            records: AtomicU64::new(0),
        }))
    }

    /// Records a point event.
    pub fn event(&self, name: &str, fields: Vec<(String, Json)>) {
        self.write_record("event", name, None, fields);
    }

    /// Records a completed span of `dur_ms` milliseconds.
    pub fn span(&self, name: &str, dur_ms: f64, fields: Vec<(String, Json)>) {
        self.write_record("span", name, Some(dur_ms), fields);
    }

    /// Starts a span clock; call [`SpanGuard::finish`] (or drop it) to
    /// emit the record with the measured duration.
    pub fn start_span(self: &Arc<Self>, name: impl Into<String>) -> SpanGuard {
        SpanGuard {
            sink: Arc::clone(self),
            name: name.into(),
            started: Instant::now(),
            fields: Vec::new(),
            done: false,
        }
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    fn write_record(
        &self,
        kind: &str,
        name: &str,
        dur_ms: Option<f64>,
        fields: Vec<(String, Json)>,
    ) {
        let record = Json::Obj(vec![
            (
                "ts_ms".into(),
                Json::Int(self.epoch.elapsed().as_millis() as i64),
            ),
            ("kind".into(), Json::str(kind)),
            ("name".into(), Json::str(name)),
            (
                "dur_ms".into(),
                match dur_ms {
                    Some(ms) => Json::Num(ms),
                    None => Json::Null,
                },
            ),
            ("fields".into(), Json::Obj(fields)),
        ]);
        let mut line = record.render();
        line.push('\n');
        // render-then-write keeps each record a single buffered write;
        // flush per record so a crash loses at most the line in flight
        let mut writer = self.writer.lock().expect("trace sink poisoned");
        if writer.write_all(line.as_bytes()).is_ok() {
            writer.flush().ok();
            self.records.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// An in-flight span: accumulates fields, measures its own duration, and
/// emits exactly one record when finished (or dropped).
#[derive(Debug)]
pub struct SpanGuard {
    sink: Arc<TraceSink>,
    name: String,
    started: Instant,
    fields: Vec<(String, Json)>,
    done: bool,
}

impl SpanGuard {
    /// Attaches a field to the eventual record.
    pub fn field(&mut self, key: impl Into<String>, value: Json) -> &mut Self {
        self.fields.push((key.into(), value));
        self
    }

    /// Emits the span record now, consuming the guard.
    pub fn finish(mut self) {
        self.emit();
    }

    fn emit(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dur_ms = self.started.elapsed().as_secs_f64() * 1e3;
        self.sink
            .span(&self.name, dur_ms, std::mem::take(&mut self.fields));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_trace(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fahana-trace-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn every_emitted_line_round_trips_through_the_parser() {
        let path = temp_trace("roundtrip");
        let sink = TraceSink::create(&path).unwrap();
        sink.event(
            "worker_start",
            vec![
                ("shard".into(), Json::Int(2)),
                ("label".into(), Json::str("a/b")),
            ],
        );
        sink.span(
            "scenario",
            12.5,
            vec![("name".into(), Json::str("pi/balanced \"quoted\""))],
        );
        let mut guard = sink.start_span("wave");
        guard.field("tasks", Json::Int(3));
        guard.finish();
        drop(sink);

        let raw = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = raw.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let record = Json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert!(record.get("ts_ms").unwrap().as_i64().is_some());
            let kind = record.get("kind").unwrap().as_str().unwrap();
            assert!(kind == "span" || kind == "event", "{kind}");
            assert!(record.get("name").unwrap().as_str().is_some());
            assert!(record.get("fields").is_some());
        }
        // events carry null durations, spans real ones
        let event = Json::parse(lines[0]).unwrap();
        assert!(matches!(event.get("dur_ms"), Some(Json::Null)));
        let span = Json::parse(lines[1]).unwrap();
        assert_eq!(span.get("dur_ms").unwrap().as_f64(), Some(12.5));
        let wave = Json::parse(lines[2]).unwrap();
        assert_eq!(
            wave.get("fields").unwrap().get("tasks").unwrap().as_i64(),
            Some(3)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dropped_guards_emit_exactly_once() {
        let path = temp_trace("guard");
        let sink = TraceSink::create(&path).unwrap();
        {
            let mut guard = sink.start_span("implicit");
            guard.field("via", Json::str("drop"));
        } // emits here
        assert_eq!(sink.records(), 1);
        let guard = sink.start_span("explicit");
        guard.finish(); // consuming finish cannot double-emit on drop
        assert_eq!(sink.records(), 2);
        drop(sink);
        std::fs::remove_file(&path).ok();
    }
}
