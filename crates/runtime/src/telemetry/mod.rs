//! Observability for the fahana runtime: a metrics registry and a
//! structured trace sink, bundled as a [`Telemetry`] handle that threads
//! through every execution layer.
//!
//! The subsystem is std-only and strictly a *side channel*: with or
//! without telemetry attached, every artifact the runtime produces —
//! campaign reports, cache snapshots, merged shard outputs — is
//! byte-identical. The determinism tests pin this. Instrumented layers:
//!
//! | layer            | what gets recorded                                            |
//! |------------------|---------------------------------------------------------------|
//! | `CampaignEngine` | per-scenario spans (queue wait, eval time, hit ratio, rate)   |
//! | `ThreadPool`     | jobs executed, local pops vs. steals, live queue depth        |
//! | `fahana-shard`   | per-attempt spans (outcome retry/salvage/rebalance), waves    |
//! | `serve/`         | per-endpoint request counts + latency, bytes in/out, reuse    |
//!
//! The registry renders to the Prometheus text format (`GET /metrics` on
//! `fahana-serve`) and to a JSON snapshot (`GET /statusz`,
//! `fahana-campaign --metrics-out`); the trace sink appends JSONL records
//! (`--trace-out`) that always round-trip through the in-repo JSON
//! parser. See the README's "Observability" section for the metric name
//! catalog and the trace record schema.

mod metrics;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BUCKETS_MS};
pub use trace::{SpanGuard, TraceSink};

use std::path::Path;
use std::sync::Arc;

/// The telemetry bundle instrumented code receives: a shared metrics
/// registry plus an optional trace sink. Cloning is cheap (two `Arc`s);
/// a [`Telemetry::disabled`] bundle still aggregates metrics but writes
/// no trace.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    metrics: Arc<MetricsRegistry>,
    trace: Option<Arc<TraceSink>>,
}

impl Telemetry {
    /// A bundle with a fresh registry and no trace sink.
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// A bundle tracing to `path` (created/truncated now).
    ///
    /// # Errors
    ///
    /// As [`TraceSink::create`].
    pub fn with_trace(path: impl AsRef<Path>) -> std::io::Result<Telemetry> {
        Ok(Telemetry {
            metrics: Arc::new(MetricsRegistry::new()),
            trace: Some(TraceSink::create(path)?),
        })
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The trace sink, if one is attached.
    pub fn trace(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }
}
