//! The metrics registry: named counters, gauges, and fixed-bucket latency
//! histograms behind lock-cheap handles.
//!
//! Registration (naming a metric, attaching labels) takes a mutex once;
//! every subsequent update goes through an `Arc`'d atomic the caller keeps,
//! so the hot paths — a cache lookup, a pool pop, an HTTP request — never
//! contend on the registry itself. Histograms shard their observations
//! into fixed bins (one atomic per bin), trading exact quantiles for
//! wait-free recording; [`Histogram::quantile`] interpolates estimates
//! back out of the bins.
//!
//! Rendering is deterministic: families sort by name, series by label
//! string, so two snapshots of identical counters are byte-identical —
//! the same property every other artifact in this workspace holds.
//! [`MetricsRegistry::render_prometheus`] emits the Prometheus text
//! exposition format (`GET /metrics`); [`MetricsRegistry::to_json`] emits
//! the JSON snapshot behind `fahana-campaign --metrics-out` and
//! `GET /statusz`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::report::Json;

/// Default latency buckets in milliseconds (upper-inclusive bounds); the
/// last implicit bucket is `+Inf`. Spans 250 µs to 10 s, which covers
/// everything from a cache-hit HTTP answer to a full scenario search.
pub const LATENCY_BUCKETS_MS: [f64; 14] = [
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0,
];

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the counter — for mirroring an externally accumulated
    /// total (e.g. pool counters collected at snapshot time) into the
    /// registry without double-counting.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram handle (latencies in milliseconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

#[derive(Debug)]
struct HistogramCore {
    /// Upper-inclusive bucket bounds (ms); one extra implicit `+Inf` bin.
    bounds: Vec<f64>,
    /// One atomic bin per bound, plus the `+Inf` bin — observations are a
    /// single fetch_add on the owning bin, never a lock.
    bins: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum in nanoseconds, so sub-millisecond observations accumulate
    /// without float atomics.
    sum_nanos: AtomicU64,
}

impl Histogram {
    /// Records one observation (milliseconds).
    pub fn observe_ms(&self, ms: f64) {
        let core = &self.0;
        let ms = if ms.is_finite() { ms.max(0.0) } else { 0.0 };
        let bin = core
            .bounds
            .iter()
            .position(|bound| ms <= *bound)
            .unwrap_or(core.bounds.len());
        core.bins[bin].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum_nanos
            .fetch_add((ms * 1e6) as u64, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] observation.
    pub fn observe(&self, duration: std::time::Duration) {
        self.observe_ms(duration.as_secs_f64() * 1e3);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.0.sum_nanos.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) in milliseconds by linear
    /// interpolation inside the owning bucket. Observations beyond the
    /// last finite bound clamp to it; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> f64 {
        let core = &self.0;
        let counts: Vec<u64> = core
            .bins
            .iter()
            .map(|bin| bin.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bin, count) in counts.iter().enumerate() {
            if *count == 0 {
                continue;
            }
            if seen + count >= rank {
                let upper = match core.bounds.get(bin) {
                    Some(bound) => *bound,
                    // +Inf bin: clamp to the last finite bound
                    None => return core.bounds.last().copied().unwrap_or(0.0),
                };
                let lower = if bin == 0 { 0.0 } else { core.bounds[bin - 1] };
                let into = (rank - seen) as f64 / *count as f64;
                return lower + (upper - lower) * into;
            }
            seen += count;
        }
        core.bounds.last().copied().unwrap_or(0.0)
    }
}

/// What kind of series a registered name is — one kind per family name,
/// enforced at registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Label-string → series, sorted so renders are deterministic.
    series: BTreeMap<String, Series>,
}

/// A registry of named metrics, shared across subsystems via `Arc`.
///
/// # Example
///
/// ```
/// use fahana_runtime::telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let hits = registry.counter("cache_hits_total", "evaluation cache hits");
/// hits.add(3);
/// assert!(registry.render_prometheus().contains("cache_hits_total 3"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Renders a label set into the `{k="v",…}` form used both as the series
/// key and in the exposition output. Empty labels render as "".
fn label_string(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let pairs: Vec<String> = labels
        .iter()
        .map(|(key, value)| {
            let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
            format!("{key}=\"{escaped}\"")
        })
        .collect();
    format!("{{{}}}", pairs.join(","))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn series(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Series {
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "metric name `{name}` is not a valid Prometheus identifier"
        );
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {} and re-requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .series
            .entry(label_string(labels))
            .or_insert_with(|| match kind {
                Kind::Counter => Series::Counter(Counter(Arc::new(AtomicU64::new(0)))),
                Kind::Gauge => Series::Gauge(Gauge(Arc::new(AtomicI64::new(0)))),
                Kind::Histogram => Series::Histogram(Histogram(Arc::new(HistogramCore {
                    bounds: LATENCY_BUCKETS_MS.to_vec(),
                    bins: (0..=LATENCY_BUCKETS_MS.len())
                        .map(|_| AtomicU64::new(0))
                        .collect(),
                    count: AtomicU64::new(0),
                    sum_nanos: AtomicU64::new(0),
                }))),
            })
            .clone()
    }

    /// Registers (or retrieves) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a labelled counter series. The same
    /// (name, labels) pair always returns a handle to the same value.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, Kind::Counter, labels) {
            Series::Counter(counter) => counter,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a labelled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, Kind::Gauge, labels) {
            Series::Gauge(gauge) => gauge,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Registers (or retrieves) an unlabelled latency histogram
    /// ([`LATENCY_BUCKETS_MS`] bounds, milliseconds).
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a labelled latency histogram series.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, Kind::Histogram, labels) {
            Series::Histogram(histogram) => histogram,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format, families sorted by name and series by label string.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (labels, series) in family.series.iter() {
                match series {
                    Series::Counter(counter) => {
                        out.push_str(&format!("{name}{labels} {}\n", counter.get()));
                    }
                    Series::Gauge(gauge) => {
                        out.push_str(&format!("{name}{labels} {}\n", gauge.get()));
                    }
                    Series::Histogram(histogram) => {
                        let core = &histogram.0;
                        let mut cumulative = 0u64;
                        for (bin, bound) in core.bounds.iter().enumerate() {
                            cumulative += core.bins[bin].load(Ordering::Relaxed);
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                merge_labels(labels, &format!("le=\"{bound}\""))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            merge_labels(labels, "le=\"+Inf\""),
                            histogram.count()
                        ));
                        out.push_str(&format!("{name}_sum{labels} {}\n", histogram.sum_ms()));
                        out.push_str(&format!("{name}_count{labels} {}\n", histogram.count()));
                    }
                }
            }
        }
        out
    }

    /// The registry as a JSON snapshot (the `--metrics-out` format):
    /// `{"metrics":[{"name","kind","help","series":[{"labels","value"|…}]}]}`,
    /// deterministically ordered like the Prometheus rendering.
    pub fn to_json(&self) -> Json {
        let families = self.families.lock().expect("metrics registry poisoned");
        let metrics = families
            .iter()
            .map(|(name, family)| {
                let series = family
                    .series
                    .iter()
                    .map(|(labels, series)| {
                        let mut entry = vec![("labels".to_string(), Json::str(labels.clone()))];
                        match series {
                            Series::Counter(counter) => {
                                entry.push(("value".into(), Json::Int(counter.get() as i64)));
                            }
                            Series::Gauge(gauge) => {
                                entry.push(("value".into(), Json::Int(gauge.get())));
                            }
                            Series::Histogram(histogram) => {
                                let core = &histogram.0;
                                entry.push(("count".into(), Json::Int(histogram.count() as i64)));
                                entry.push(("sum_ms".into(), Json::Num(histogram.sum_ms())));
                                entry.push((
                                    "buckets".into(),
                                    Json::Arr(
                                        core.bounds
                                            .iter()
                                            .enumerate()
                                            .map(|(bin, bound)| {
                                                Json::Obj(vec![
                                                    ("le_ms".into(), Json::Num(*bound)),
                                                    (
                                                        "count".into(),
                                                        Json::Int(
                                                            core.bins[bin].load(Ordering::Relaxed)
                                                                as i64,
                                                        ),
                                                    ),
                                                ])
                                            })
                                            .chain(std::iter::once(Json::Obj(vec![
                                                ("le_ms".into(), Json::Null),
                                                (
                                                    "count".into(),
                                                    Json::Int(
                                                        core.bins[core.bounds.len()]
                                                            .load(Ordering::Relaxed)
                                                            as i64,
                                                    ),
                                                ),
                                            ])))
                                            .collect(),
                                    ),
                                ));
                            }
                        }
                        Json::Obj(entry)
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".into(), Json::str(name.clone())),
                    ("kind".into(), Json::str(family.kind.as_str())),
                    ("help".into(), Json::str(family.help.clone())),
                    ("series".into(), Json::Arr(series)),
                ])
            })
            .collect();
        Json::Obj(vec![("metrics".into(), Json::Arr(metrics))])
    }
}

/// Splices an extra label (`le="…"`) into an existing label string.
fn merge_labels(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!(
            "{{{},{extra}}}",
            &labels[1..labels.len() - 1] // strip the surrounding braces
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_update_and_render() {
        let registry = MetricsRegistry::new();
        let requests = registry.counter_with(
            "http_requests_total",
            "requests served",
            &[("endpoint", "/query"), ("status", "200")],
        );
        requests.add(2);
        requests.inc();
        // the same (name, labels) pair shares one value
        registry
            .counter_with(
                "http_requests_total",
                "requests served",
                &[("endpoint", "/query"), ("status", "200")],
            )
            .inc();
        assert_eq!(requests.get(), 4);

        let depth = registry.gauge("queue_depth", "live queue depth");
        depth.set(7);
        assert_eq!(depth.get(), 7);

        let text = registry.render_prometheus();
        assert!(
            text.contains("# TYPE http_requests_total counter"),
            "{text}"
        );
        assert!(
            text.contains("http_requests_total{endpoint=\"/query\",status=\"200\"} 4"),
            "{text}"
        );
        assert!(text.contains("queue_depth 7"), "{text}");
        // families render sorted by name: h… before q…
        assert!(
            text.find("http_requests_total").unwrap() < text.find("queue_depth").unwrap(),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_quantiles_interpolate() {
        let registry = MetricsRegistry::new();
        let latency = registry.histogram("request_ms", "request latency");
        for ms in [0.1, 0.4, 3.0, 3.0, 40.0, 9999.0, 100000.0] {
            latency.observe_ms(ms);
        }
        assert_eq!(latency.count(), 7);
        assert!(
            (latency.sum_ms() - 110045.5).abs() < 0.1,
            "{}",
            latency.sum_ms()
        );

        let text = registry.render_prometheus();
        // 0.1 and 0.4 land at or under the 0.25/0.5 bounds cumulatively
        assert!(text.contains("request_ms_bucket{le=\"0.25\"} 1"), "{text}");
        assert!(text.contains("request_ms_bucket{le=\"0.5\"} 2"), "{text}");
        assert!(text.contains("request_ms_bucket{le=\"2.5\"} 2"), "{text}");
        assert!(text.contains("request_ms_bucket{le=\"5\"} 4"), "{text}");
        assert!(text.contains("request_ms_bucket{le=\"10000\"} 6"), "{text}");
        assert!(text.contains("request_ms_bucket{le=\"+Inf\"} 7"), "{text}");
        assert!(text.contains("request_ms_count 7"), "{text}");

        // the median observation (3.0) sits in the (2.5, 5] bucket
        let p50 = latency.quantile(0.5);
        assert!((2.5..=5.0).contains(&p50), "p50 = {p50}");
        // the +Inf observation clamps the extreme quantile to the last bound
        assert_eq!(latency.quantile(1.0), 10000.0);
        // an empty histogram answers 0
        assert_eq!(
            registry
                .histogram("idle_ms", "never observed")
                .quantile(0.9),
            0.0
        );
    }

    #[test]
    fn json_snapshot_is_deterministic_and_parseable() {
        let registry = MetricsRegistry::new();
        registry.counter("alpha_total", "a").add(1);
        registry.histogram("beta_ms", "b").observe_ms(1.5);
        registry.gauge_with("gamma", "c", &[("shard", "2")]).set(-3);
        let first = registry.to_json().render();
        let second = registry.to_json().render();
        assert_eq!(first, second);
        let parsed = Json::parse(&first).unwrap();
        let metrics = parsed.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(
            metrics[0].get("name").unwrap().as_str(),
            Some("alpha_total")
        );
        assert_eq!(metrics[1].get("kind").unwrap().as_str(), Some("histogram"));
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_conflicts_are_rejected() {
        let registry = MetricsRegistry::new();
        registry.counter("twice", "first as counter");
        registry.gauge("twice", "then as gauge");
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with("odd_total", "odd labels", &[("path", "a\"b\\c")])
            .inc();
        let text = registry.render_prometheus();
        assert!(text.contains(r#"odd_total{path="a\"b\\c"} 1"#), "{text}");
    }
}
