//! The campaign plan: a validated, deterministically ordered enumeration
//! of a grid's cells, ready to be partitioned into shards.
//!
//! [`CampaignPlan`] is the first stage of the plan → partition → execute
//! → merge pipeline behind sharded campaigns:
//!
//! 1. **plan** — expand a [`CampaignConfig`] into its scenarios once, in
//!    the canonical device-major grid order (this module);
//! 2. **partition** — assign every scenario to exactly one shard by
//!    stable name hash ([`crate::shard`]);
//! 3. **execute** — each worker runs only its slice
//!    ([`crate::CampaignEngine::run_scenarios`]);
//! 4. **merge** — partial reports fuse back into one campaign report in
//!    plan order ([`crate::CampaignReport::merge`]) and partial cache
//!    snapshots union ([`crate::CacheSnapshot::merge`]).
//!
//! Because every worker derives the same plan from the same config, and
//! the partition hashes names rather than positions, a coordinator and
//! its workers need to exchange nothing but the config and `I/N`.

use crate::scenario::{CampaignConfig, Scenario};
use crate::shard::{ShardAssignment, ShardSpec};
use crate::{Result, RuntimeError};

/// A validated grid expansion with a stable scenario order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    config: CampaignConfig,
    scenarios: Vec<Scenario>,
}

impl CampaignPlan {
    /// Validates the config and enumerates its grid cells in canonical
    /// (device-major) order.
    ///
    /// # Errors
    ///
    /// As [`CampaignConfig::validate`].
    pub fn new(config: CampaignConfig) -> Result<Self> {
        config.validate()?;
        let scenarios = config.expand();
        Ok(CampaignPlan { config, scenarios })
    }

    /// The configuration the plan was derived from.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Every scenario, in plan order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of grid cells.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the plan holds no cells (never true for a validated
    /// config, which rejects empty axes).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The scenario names in plan order — the ordering template report
    /// merging uses to put fused scenarios back into grid order.
    pub fn order(&self) -> Vec<String> {
        self.scenarios.iter().map(|s| s.name.clone()).collect()
    }

    /// The scenarios owned by `shard`, in plan order. The slices of all
    /// `N` shards partition [`CampaignPlan::scenarios`] exactly; a slice
    /// may be empty when the grid is small relative to `N`.
    pub fn slice(&self, shard: ShardSpec) -> Vec<Scenario> {
        self.scenarios
            .iter()
            .filter(|scenario| shard.owns(scenario))
            .cloned()
            .collect()
    }

    /// The scenarios named by an explicit cell set, in plan order
    /// regardless of the listed order. Unlike hash slices, an arbitrary
    /// subset can be wrong, so it is validated: every name must be a cell
    /// of this plan, and no name may repeat.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] naming the first unknown or
    /// duplicated cell.
    pub fn subset(&self, names: &[String]) -> Result<Vec<Scenario>> {
        let known: std::collections::BTreeSet<&str> =
            self.scenarios.iter().map(|s| s.name.as_str()).collect();
        let mut wanted = std::collections::BTreeSet::new();
        for name in names {
            if !known.contains(name.as_str()) {
                return Err(RuntimeError::InvalidConfig(format!(
                    "cell `{name}` is not part of the campaign plan"
                )));
            }
            if !wanted.insert(name.as_str()) {
                return Err(RuntimeError::InvalidConfig(format!(
                    "cell `{name}` is assigned twice"
                )));
            }
        }
        Ok(self
            .scenarios
            .iter()
            .filter(|scenario| wanted.contains(scenario.name.as_str()))
            .cloned()
            .collect())
    }

    /// The scenarios a worker's assignment resolves to: a hash slice
    /// ([`CampaignPlan::slice`]) or a validated explicit subset
    /// ([`CampaignPlan::subset`]), both in plan order.
    ///
    /// # Errors
    ///
    /// As [`CampaignPlan::subset`] (hash slices cannot fail).
    pub fn slice_assignment(&self, assignment: &ShardAssignment) -> Result<Vec<Scenario>> {
        match assignment {
            ShardAssignment::Hash(spec) => Ok(self.slice(*spec)),
            ShardAssignment::Cells(cells) => self.subset(cells.cells()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::CellAssignment;

    #[test]
    fn subsets_are_validated_and_normalized_to_plan_order() {
        let plan = CampaignPlan::new(CampaignConfig::default()).unwrap();
        let order = plan.order();

        // listed backwards, resolved in plan order
        let names = vec![order[5].clone(), order[0].clone(), order[3].clone()];
        let scenarios = plan.subset(&names).unwrap();
        let resolved: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(resolved, [&order[0], &order[3], &order[5]]);

        // the empty subset is a valid (idle) assignment
        assert!(plan.subset(&[]).unwrap().is_empty());

        let err = plan.subset(&["desktop/balanced/full".into()]).unwrap_err();
        assert!(err.to_string().contains("not part of"), "{err}");
        let err = plan
            .subset(&[order[1].clone(), order[1].clone()])
            .unwrap_err();
        assert!(err.to_string().contains("assigned twice"), "{err}");
    }

    #[test]
    fn assignments_resolve_through_one_entry_point() {
        let plan = CampaignPlan::new(CampaignConfig::default()).unwrap();
        let spec = ShardSpec::new(1, 3).unwrap();
        assert_eq!(
            plan.slice_assignment(&ShardAssignment::Hash(spec)).unwrap(),
            plan.slice(spec)
        );
        let cells = CellAssignment::new(plan.order()).unwrap();
        assert_eq!(
            plan.slice_assignment(&ShardAssignment::Cells(cells))
                .unwrap(),
            plan.scenarios()
        );
    }

    #[test]
    fn plan_preserves_grid_order_and_validates() {
        let config = CampaignConfig::default();
        let plan = CampaignPlan::new(config.clone()).unwrap();
        assert_eq!(plan.len(), 8);
        assert!(!plan.is_empty());
        assert_eq!(plan.scenarios(), config.expand().as_slice());
        assert_eq!(plan.order()[0], "raspberry_pi_4/balanced/frozen");
        assert_eq!(plan.config(), &config);

        let mut bad = config;
        bad.episodes = 0;
        assert!(CampaignPlan::new(bad).is_err());
    }

    #[test]
    fn shard_slices_partition_the_plan() {
        let plan = CampaignPlan::new(CampaignConfig::default()).unwrap();
        for total in [1usize, 2, 3, 8] {
            let mut reassembled: Vec<Scenario> = Vec::new();
            for index in 0..total {
                let slice = plan.slice(ShardSpec::new(index, total).unwrap());
                // each slice keeps plan order
                let names: Vec<&str> = slice.iter().map(|s| s.name.as_str()).collect();
                let sorted_by_plan: Vec<&str> = plan
                    .scenarios()
                    .iter()
                    .map(|s| s.name.as_str())
                    .filter(|name| names.contains(name))
                    .collect();
                assert_eq!(names, sorted_by_plan, "slice {index}/{total} out of order");
                reassembled.extend(slice);
            }
            assert_eq!(reassembled.len(), plan.len(), "N={total} must partition");
            for scenario in plan.scenarios() {
                assert_eq!(
                    reassembled
                        .iter()
                        .filter(|s| s.name == scenario.name)
                        .count(),
                    1,
                    "{} must appear exactly once across {total} slices",
                    scenario.name
                );
            }
        }
    }
}
