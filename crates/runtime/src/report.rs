//! JSON campaign reports: a hand-rolled value tree, a renderer *and* a
//! parser, and a typed schema layer.
//!
//! The offline build has no serde_json (see `vendor/README.md`), so this
//! module carries its own [`Json`] value tree. Emission rules: strings are
//! escaped per RFC 8259, non-finite numbers become `null` (JSON has no
//! NaN/∞), and object keys keep insertion order so reports diff cleanly
//! across runs.
//!
//! Reports are round-trippable: [`Json::parse`] inverts [`Json::render`],
//! and the typed [`ScenarioReport`] / [`CampaignReport`] structs carry the
//! schema in one place — the renderer and the parser both go through them,
//! so `render → parse → re-render` is byte-identical (the golden-file
//! tests in `tests/report_schema.rs` pin this down). Because non-finite
//! numbers render as `null`, the schema parser reads `null` in a numeric
//! slot back as NaN — the round trip holds even for reports whose metrics
//! went NaN. The parser is what
//! lets the campaign artifact store ([`crate::store`]) ingest previously
//! written reports instead of only producing them.

use fahana::{EpisodeRecord, ParetoPoint};

use crate::cache::CacheStats;
use crate::campaign::{CampaignOutcome, ScenarioOutcome};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite renders as `null`).
    Num(f64),
    /// An integer rendered without a decimal point.
    Int(i64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Failure to parse a report: either the text is not JSON, or it is JSON
/// that does not match the report schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// Not syntactically valid JSON.
    Json {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Valid JSON, wrong shape.
    Schema {
        /// Dotted path of the offending field.
        path: String,
        /// What was expected.
        message: String,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Json { offset, message } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            ReportError::Schema { path, message } => {
                write!(f, "report schema violation at `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for ReportError {}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (index, (key, value)) in entries.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text (the inverse of [`Json::render`]).
    ///
    /// Accepts standard RFC 8259 JSON. Numbers without a fractional part
    /// or exponent that fit `i64` *and* whose text equals the integer's
    /// canonical rendering become [`Json::Int`]; everything else numeric
    /// becomes [`Json::Num`] — so re-rendering a parsed document
    /// reproduces it byte-for-byte whenever the original was produced by
    /// [`Json::render`].
    ///
    /// # Errors
    ///
    /// [`ReportError::Json`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, ReportError> {
        let mut parser = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks a key up in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value of [`Json::Num`] or [`Json::Int`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Integer value of [`Json::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser over the input's bytes.
struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ReportError {
        ReportError::Json {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ReportError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ReportError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't' | b'f' | b'n') => self.literal(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self) -> Result<Json, ReportError> {
        for (word, value) in [
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("null", Json::Null),
        ] {
            if self.text[self.pos..].starts_with(word) {
                self.pos += word.len();
                return Ok(value);
            }
        }
        Err(self.error("expected `true`, `false` or `null`"))
    }

    fn number(&mut self) -> Result<Json, ReportError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let literal = &self.text[start..self.pos];
        let has_fraction = literal.contains(['.', 'e', 'E']);
        if !has_fraction {
            if let Ok(int) = literal.parse::<i64>() {
                if int.to_string() == literal {
                    return Ok(Json::Int(int));
                }
            }
        }
        let number: f64 = literal
            .parse()
            .map_err(|_| self.error(format!("invalid number `{literal}`")))?;
        if !number.is_finite() {
            return Err(self.error(format!("number `{literal}` overflows f64")));
        }
        Ok(Json::Num(number))
    }

    fn string(&mut self) -> Result<String, ReportError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            self.pos -= 1;
                            return Err(self.error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("raw control character in string"));
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8: the input is a valid &str, so a
                    // char boundary is guaranteed here
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ReportError> {
        let digits = self
            .text
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code = u32::from_str_radix(digits, 16)
            .map_err(|_| self.error(format!("bad \\u escape `{digits}`")))?;
        self.pos += 4;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, ReportError> {
        let code = self.hex4()?;
        if (0xD800..0xDC00).contains(&code) {
            // high surrogate: a low surrogate escape must follow
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("unpaired high surrogate"));
        }
        char::from_u32(code).ok_or_else(|| self.error(format!("invalid codepoint {code:#x}")))
    }

    fn object(&mut self) -> Result<Json, ReportError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ReportError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Typed schema layer
// ---------------------------------------------------------------------------

/// The parsed (or to-be-rendered) form of one scenario's report. This is
/// the single source of truth for the scenario schema: rendering and
/// parsing both go through it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (`device/reward/freezing`).
    pub scenario: String,
    /// Human-readable device label.
    pub device: String,
    /// Stable device key ([`edgehw::DeviceKind::slug`]); what the artifact
    /// store indexes on.
    pub device_slug: String,
    /// Reward setting name.
    pub reward: String,
    /// Accuracy weight α.
    pub alpha: f64,
    /// Unfairness weight β.
    pub beta: f64,
    /// Whether the frozen-header search ran.
    pub use_freezing: bool,
    /// Scenario wall-clock in milliseconds.
    pub wall_clock_ms: f64,
    /// Evaluation-cache counters of this scenario.
    pub cache: CacheStats,
    /// Episodes run.
    pub episodes: u64,
    /// Fraction of valid episodes.
    pub valid_ratio: f64,
    /// log10 of the search-space size.
    pub space_log10_size: f64,
    /// Frozen backbone blocks.
    pub frozen_blocks: u64,
    /// Searchable tail slots.
    pub searchable_slots: u64,
    /// Modelled GPU-cluster search time (hours).
    pub modelled_search_hours: f64,
    /// Same, formatted like the paper.
    pub modelled_search_time: String,
    /// Highest-reward valid child.
    pub best: Option<EpisodeRecord>,
    /// Highest-reward valid child under 4 M parameters.
    pub best_small: Option<EpisodeRecord>,
    /// Lowest-unfairness valid child.
    pub fairest: Option<EpisodeRecord>,
    /// Accuracy/unfairness Pareto frontier over valid children.
    pub accuracy_fairness_frontier: Vec<ParetoPoint>,
    /// Reward/size Pareto frontier over valid children.
    pub reward_size_frontier: Vec<ParetoPoint>,
}

/// The parsed (or to-be-rendered) form of a whole campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Worker threads used.
    pub threads: u64,
    /// Campaign wall-clock in milliseconds.
    pub wall_clock_ms: f64,
    /// Aggregate cache counters.
    pub cache: CacheStats,
    /// Distinct architectures memoised.
    pub cache_entries: u64,
    /// Per-scenario reports, in grid order.
    pub scenarios: Vec<ScenarioReport>,
}

/// Failure to fuse partial (per-shard) campaign reports into one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportMergeError {
    /// Two partial reports both carry this scenario — the shards
    /// overlapped, so the fusion would double-count.
    DuplicateScenario(String),
    /// A partial report carries a scenario the ordering template does not
    /// know — it belongs to a different plan.
    UnexpectedScenario(String),
    /// The ordering template expects a scenario no partial report
    /// produced — a shard is missing or failed.
    MissingScenario(String),
}

impl std::fmt::Display for ReportMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportMergeError::DuplicateScenario(name) => {
                write!(
                    f,
                    "scenario `{name}` appears in more than one partial report"
                )
            }
            ReportMergeError::UnexpectedScenario(name) => {
                write!(f, "scenario `{name}` is not part of the campaign plan")
            }
            ReportMergeError::MissingScenario(name) => {
                write!(f, "no partial report covers scenario `{name}`")
            }
        }
    }
}

impl std::error::Error for ReportMergeError {}

impl ScenarioReport {
    /// Projects a live [`ScenarioOutcome`] onto the report schema.
    pub fn from_outcome(outcome: &ScenarioOutcome) -> Self {
        let summary = &outcome.outcome;
        let record = |network: &Option<fahana::DiscoveredNetwork>| {
            network.as_ref().map(|n| n.record.clone())
        };
        ScenarioReport {
            scenario: outcome.scenario.name.clone(),
            device: outcome.scenario.device.label().to_string(),
            device_slug: outcome.scenario.device.slug().to_string(),
            reward: outcome.scenario.reward.name.clone(),
            alpha: outcome.scenario.reward.alpha,
            beta: outcome.scenario.reward.beta,
            use_freezing: outcome.scenario.use_freezing,
            wall_clock_ms: outcome.wall_clock.as_secs_f64() * 1e3,
            cache: outcome.cache,
            episodes: summary.history.len() as u64,
            valid_ratio: summary.valid_ratio,
            space_log10_size: summary.space_log10_size,
            frozen_blocks: summary.frozen_blocks as u64,
            searchable_slots: summary.searchable_slots as u64,
            modelled_search_hours: summary.modelled_search_hours,
            modelled_search_time: summary.modelled_search_time.clone(),
            best: record(&summary.best),
            best_small: record(&summary.best_small),
            fairest: record(&summary.fairest),
            accuracy_fairness_frontier: summary.accuracy_fairness_frontier(),
            reward_size_frontier: summary.reward_size_frontier(),
        }
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        let record = |record: &Option<EpisodeRecord>| match record {
            Some(record) => episode_json(record),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("scenario".into(), Json::str(&self.scenario)),
            ("device".into(), Json::str(&self.device)),
            ("device_slug".into(), Json::str(&self.device_slug)),
            ("reward".into(), Json::str(&self.reward)),
            ("alpha".into(), Json::Num(self.alpha)),
            ("beta".into(), Json::Num(self.beta)),
            ("use_freezing".into(), Json::Bool(self.use_freezing)),
            ("wall_clock_ms".into(), Json::Num(self.wall_clock_ms)),
            ("cache".into(), cache_json(&self.cache)),
            ("episodes".into(), Json::Int(self.episodes as i64)),
            ("valid_ratio".into(), Json::Num(self.valid_ratio)),
            ("space_log10_size".into(), Json::Num(self.space_log10_size)),
            ("frozen_blocks".into(), Json::Int(self.frozen_blocks as i64)),
            (
                "searchable_slots".into(),
                Json::Int(self.searchable_slots as i64),
            ),
            (
                "modelled_search_hours".into(),
                Json::Num(self.modelled_search_hours),
            ),
            (
                "modelled_search_time".into(),
                Json::str(&self.modelled_search_time),
            ),
            ("best".into(), record(&self.best)),
            ("best_small".into(), record(&self.best_small)),
            ("fairest".into(), record(&self.fairest)),
            (
                "accuracy_fairness_frontier".into(),
                frontier_json(&self.accuracy_fairness_frontier),
            ),
            (
                "reward_size_frontier".into(),
                frontier_json(&self.reward_size_frontier),
            ),
        ])
    }

    /// Parses a scenario report (JSON text).
    ///
    /// # Errors
    ///
    /// [`ReportError`] on syntax or schema violations.
    pub fn parse(text: &str) -> Result<Self, ReportError> {
        Self::from_json(&Json::parse(text)?, "")
    }

    fn from_json(value: &Json, path: &str) -> Result<Self, ReportError> {
        let at = |key: &str| join_path(path, key);
        Ok(ScenarioReport {
            scenario: str_field(value, path, "scenario")?,
            device: str_field(value, path, "device")?,
            device_slug: str_field(value, path, "device_slug")?,
            reward: str_field(value, path, "reward")?,
            alpha: f64_field(value, path, "alpha")?,
            beta: f64_field(value, path, "beta")?,
            use_freezing: bool_field(value, path, "use_freezing")?,
            wall_clock_ms: f64_field(value, path, "wall_clock_ms")?,
            cache: cache_from_json(field(value, path, "cache")?, &at("cache"))?,
            episodes: u64_field(value, path, "episodes")?,
            valid_ratio: f64_field(value, path, "valid_ratio")?,
            space_log10_size: f64_field(value, path, "space_log10_size")?,
            frozen_blocks: u64_field(value, path, "frozen_blocks")?,
            searchable_slots: u64_field(value, path, "searchable_slots")?,
            modelled_search_hours: f64_field(value, path, "modelled_search_hours")?,
            modelled_search_time: str_field(value, path, "modelled_search_time")?,
            best: record_from_json(field(value, path, "best")?, &at("best"))?,
            best_small: record_from_json(field(value, path, "best_small")?, &at("best_small"))?,
            fairest: record_from_json(field(value, path, "fairest")?, &at("fairest"))?,
            accuracy_fairness_frontier: frontier_from_json(
                field(value, path, "accuracy_fairness_frontier")?,
                &at("accuracy_fairness_frontier"),
            )?,
            reward_size_frontier: frontier_from_json(
                field(value, path, "reward_size_frontier")?,
                &at("reward_size_frontier"),
            )?,
        })
    }

    /// The deterministic projection of the report: wall-clock and cache
    /// counters — the only fields that legitimately differ between a
    /// single-process run and a sharded one (shards do not share a live
    /// cache, so per-scenario hit counts shift) — are zeroed; everything
    /// the search actually decided is kept verbatim. Two runs of the same
    /// scenario agree on their canonical forms byte-for-byte.
    pub fn canonical(&self) -> ScenarioReport {
        ScenarioReport {
            wall_clock_ms: 0.0,
            cache: CacheStats::default(),
            ..self.clone()
        }
    }
}

impl CampaignReport {
    /// Projects a live [`CampaignOutcome`] onto the report schema.
    pub fn from_outcome(outcome: &CampaignOutcome) -> Self {
        CampaignReport {
            threads: outcome.threads as u64,
            wall_clock_ms: outcome.wall_clock.as_secs_f64() * 1e3,
            cache: outcome.cache,
            cache_entries: outcome.cache_entries as u64,
            scenarios: outcome
                .scenarios
                .iter()
                .map(ScenarioReport::from_outcome)
                .collect(),
        }
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("threads".into(), Json::Int(self.threads as i64)),
            ("wall_clock_ms".into(), Json::Num(self.wall_clock_ms)),
            ("cache".into(), cache_json(&self.cache)),
            ("cache_entries".into(), Json::Int(self.cache_entries as i64)),
            (
                "scenario_count".into(),
                Json::Int(self.scenarios.len() as i64),
            ),
            (
                "scenarios".into(),
                Json::Arr(self.scenarios.iter().map(ScenarioReport::to_json).collect()),
            ),
        ])
    }

    /// Parses a campaign report (JSON text).
    ///
    /// # Errors
    ///
    /// [`ReportError`] on syntax or schema violations, including a
    /// `scenario_count` that disagrees with the scenario array.
    pub fn parse(text: &str) -> Result<Self, ReportError> {
        let value = Json::parse(text)?;
        let scenarios_json = field(&value, "", "scenarios")?;
        let items = scenarios_json.as_arr().ok_or_else(|| ReportError::Schema {
            path: "scenarios".into(),
            message: "expected an array".into(),
        })?;
        let mut scenarios = Vec::with_capacity(items.len());
        for (index, item) in items.iter().enumerate() {
            scenarios.push(ScenarioReport::from_json(
                item,
                &format!("scenarios[{index}]"),
            )?);
        }
        let declared = u64_field(&value, "", "scenario_count")?;
        if declared != scenarios.len() as u64 {
            return Err(ReportError::Schema {
                path: "scenario_count".into(),
                message: format!(
                    "declares {declared} scenarios but the array holds {}",
                    scenarios.len()
                ),
            });
        }
        Ok(CampaignReport {
            threads: u64_field(&value, "", "threads")?,
            wall_clock_ms: f64_field(&value, "", "wall_clock_ms")?,
            cache: cache_from_json(field(&value, "", "cache")?, "cache")?,
            cache_entries: u64_field(&value, "", "cache_entries")?,
            scenarios,
        })
    }

    /// Fuses partial (per-shard) reports into one campaign report whose
    /// scenarios follow `order` — the plan-order name list from
    /// [`crate::CampaignPlan::order`], so the fused report is ordered
    /// exactly like a single-process run of the whole grid.
    ///
    /// Scenario reports are moved verbatim (NaN metrics and all — they
    /// re-render byte-identically). The campaign-level aggregates are
    /// recomputed: `threads` and `wall_clock_ms` take the maximum across
    /// parts (shards run concurrently), cache hits/misses sum, and
    /// `cache_entries` sums — an upper bound on distinct entries, since
    /// shards may have evaluated the same architecture independently;
    /// coordinators that merge the actual snapshots should overwrite it
    /// with the merged snapshot's length.
    ///
    /// # Errors
    ///
    /// [`ReportMergeError`] when shards overlap, cover unknown scenarios,
    /// or leave plan entries uncovered.
    pub fn merge(
        parts: &[CampaignReport],
        order: &[String],
    ) -> Result<CampaignReport, ReportMergeError> {
        let mut by_name: std::collections::BTreeMap<&str, &ScenarioReport> =
            std::collections::BTreeMap::new();
        for part in parts {
            for scenario in &part.scenarios {
                if by_name
                    .insert(scenario.scenario.as_str(), scenario)
                    .is_some()
                {
                    return Err(ReportMergeError::DuplicateScenario(
                        scenario.scenario.clone(),
                    ));
                }
            }
        }
        let mut scenarios = Vec::with_capacity(order.len());
        for name in order {
            match by_name.remove(name.as_str()) {
                Some(scenario) => scenarios.push(scenario.clone()),
                None => return Err(ReportMergeError::MissingScenario(name.clone())),
            }
        }
        if let Some(name) = by_name.keys().min() {
            return Err(ReportMergeError::UnexpectedScenario((*name).to_string()));
        }
        Ok(CampaignReport {
            threads: parts.iter().map(|p| p.threads).max().unwrap_or(0),
            wall_clock_ms: parts.iter().map(|p| p.wall_clock_ms).fold(0.0f64, f64::max),
            cache: CacheStats {
                hits: parts.iter().map(|p| p.cache.hits).sum(),
                misses: parts.iter().map(|p| p.cache.misses).sum(),
            },
            cache_entries: parts.iter().map(|p| p.cache_entries).sum(),
            scenarios,
        })
    }

    /// The names of the scenarios this report covers, in report order —
    /// what a coordinator checks against a worker's assigned cells before
    /// merging: a report that covers anything else (or anything missing)
    /// is a failed attempt, not merge input.
    pub fn scenario_names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.scenario.as_str()).collect()
    }

    /// The deterministic projection of the whole report (see
    /// [`ScenarioReport::canonical`]): scheduling-dependent aggregates —
    /// threads, wall-clock, cache counters and entry count — are zeroed,
    /// scenarios are canonicalized in place. A sharded run's merged
    /// report and a single-process run of the same grid have
    /// byte-identical canonical renderings.
    pub fn canonical(&self) -> CampaignReport {
        CampaignReport {
            threads: 0,
            wall_clock_ms: 0.0,
            cache: CacheStats::default(),
            cache_entries: 0,
            scenarios: self
                .scenarios
                .iter()
                .map(ScenarioReport::canonical)
                .collect(),
        }
    }
}

fn join_path(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn field<'a>(value: &'a Json, path: &str, key: &str) -> Result<&'a Json, ReportError> {
    value.get(key).ok_or_else(|| ReportError::Schema {
        path: join_path(path, key),
        message: "missing field".into(),
    })
}

fn f64_field(value: &Json, path: &str, key: &str) -> Result<f64, ReportError> {
    let field = field(value, path, key)?;
    // The renderer maps non-finite numbers to `null` (JSON has no NaN/∞),
    // so `null` in a numeric slot is the round-trip image of a NaN metric.
    // Parse it back as NaN — render → parse → re-render stays
    // byte-identical even for reports whose metrics went NaN, and
    // re-ingesting such a report cannot fail opaquely.
    if matches!(field, Json::Null) {
        return Ok(f64::NAN);
    }
    field.as_f64().ok_or_else(|| ReportError::Schema {
        path: join_path(path, key),
        message: "expected a number or null (NaN)".into(),
    })
}

fn u64_field(value: &Json, path: &str, key: &str) -> Result<u64, ReportError> {
    field(value, path, key)?
        .as_i64()
        .and_then(|i| u64::try_from(i).ok())
        .ok_or_else(|| ReportError::Schema {
            path: join_path(path, key),
            message: "expected a non-negative integer".into(),
        })
}

fn str_field(value: &Json, path: &str, key: &str) -> Result<String, ReportError> {
    field(value, path, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ReportError::Schema {
            path: join_path(path, key),
            message: "expected a string".into(),
        })
}

fn bool_field(value: &Json, path: &str, key: &str) -> Result<bool, ReportError> {
    field(value, path, key)?
        .as_bool()
        .ok_or_else(|| ReportError::Schema {
            path: join_path(path, key),
            message: "expected a boolean".into(),
        })
}

fn cache_from_json(value: &Json, path: &str) -> Result<CacheStats, ReportError> {
    // hit_rate is derived from hits/misses, so it is not read back
    Ok(CacheStats {
        hits: u64_field(value, path, "hits")?,
        misses: u64_field(value, path, "misses")?,
    })
}

fn record_from_json(value: &Json, path: &str) -> Result<Option<EpisodeRecord>, ReportError> {
    if matches!(value, Json::Null) {
        return Ok(None);
    }
    Ok(Some(EpisodeRecord {
        episode: u64_field(value, path, "episode")? as usize,
        name: str_field(value, path, "name")?,
        params: u64_field(value, path, "params")?,
        storage_mb: f64_field(value, path, "storage_mb")?,
        latency_ms: f64_field(value, path, "latency_ms")?,
        accuracy: f64_field(value, path, "accuracy")?,
        unfairness: f64_field(value, path, "unfairness")?,
        trained_params: u64_field(value, path, "trained_params")?,
        reward: f64_field(value, path, "reward")?,
        valid: bool_field(value, path, "valid")?,
    }))
}

fn frontier_from_json(value: &Json, path: &str) -> Result<Vec<ParetoPoint>, ReportError> {
    let items = value.as_arr().ok_or_else(|| ReportError::Schema {
        path: path.to_string(),
        message: "expected an array".into(),
    })?;
    items
        .iter()
        .enumerate()
        .map(|(index, item)| {
            let path = format!("{path}[{index}]");
            Ok(ParetoPoint {
                label: str_field(item, &path, "name")?,
                maximize: f64_field(item, &path, "maximize")?,
                minimize: f64_field(item, &path, "minimize")?,
            })
        })
        .collect()
}

fn episode_json(record: &EpisodeRecord) -> Json {
    Json::Obj(vec![
        ("episode".into(), Json::Int(record.episode as i64)),
        ("name".into(), Json::str(&record.name)),
        ("params".into(), Json::Int(record.params as i64)),
        (
            "trained_params".into(),
            Json::Int(record.trained_params as i64),
        ),
        ("storage_mb".into(), Json::Num(record.storage_mb)),
        ("latency_ms".into(), Json::Num(record.latency_ms)),
        ("accuracy".into(), Json::Num(record.accuracy)),
        ("unfairness".into(), Json::Num(record.unfairness)),
        ("reward".into(), Json::Num(record.reward)),
        ("valid".into(), Json::Bool(record.valid)),
    ])
}

fn frontier_json(points: &[ParetoPoint]) -> Json {
    Json::Arr(
        points
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".into(), Json::str(&p.label)),
                    ("maximize".into(), Json::Num(p.maximize)),
                    ("minimize".into(), Json::Num(p.minimize)),
                ])
            })
            .collect(),
    )
}

fn cache_json(stats: &CacheStats) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::Int(stats.hits as i64)),
        ("misses".into(), Json::Int(stats.misses as i64)),
        ("hit_rate".into(), Json::Num(stats.hit_rate())),
    ])
}

/// Renders one scenario's report.
pub fn scenario_json(scenario: &ScenarioOutcome) -> String {
    ScenarioReport::from_outcome(scenario).to_json().render()
}

/// Renders the whole campaign report (aggregates plus every scenario).
pub fn campaign_json(outcome: &CampaignOutcome) -> String {
    CampaignReport::from_outcome(outcome).to_json().render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let value = Json::str("a\"b\\c\nd\te\u{1}");
        let expected = "\"a\\\"b\\\\c\\nd\\te\\u0001\"";
        assert_eq!(value.render(), expected);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Int(-3).render(), "-3");
    }

    #[test]
    fn containers_render_compactly_in_order() {
        let value = Json::Obj(vec![
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("a".into(), Json::Int(1)),
        ]);
        assert_eq!(value.render(), r#"{"b":[true,null],"a":1}"#);
    }

    #[test]
    fn parse_inverts_render_on_value_trees() {
        let value = Json::Obj(vec![
            ("s".into(), Json::str("esc \"\\\n\t\u{1} ünïcøde 🎛")),
            ("i".into(), Json::Int(-42)),
            ("n".into(), Json::Num(0.125)),
            ("whole".into(), Json::Num(3.0)),
            ("b".into(), Json::Bool(false)),
            ("z".into(), Json::Null),
            (
                "a".into(),
                Json::Arr(vec![Json::Int(1), Json::str("x"), Json::Null]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = value.render();
        let parsed = Json::parse(&text).unwrap();
        // byte-identical re-render (Num(3.0) renders "3" and comes back as
        // Int(3) — a different variant with the identical rendering)
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn parse_handles_whitespace_and_escapes() {
        let parsed =
            Json::parse(" { \"k\" : [ 1 , 2.5 , \"a\\u0041\\n\\/\\u00e9\" , true , null ] } ")
                .unwrap();
        let items = parsed.get("k").unwrap().as_arr().unwrap();
        assert_eq!(items[0].as_i64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("aA\n/é"));
        assert_eq!(items[3].as_bool(), Some(true));
        assert_eq!(items[4], Json::Null);
    }

    #[test]
    fn parse_handles_surrogate_pairs() {
        let parsed = Json::parse(r#""🎉""#).unwrap();
        assert_eq!(parsed.as_str(), Some("🎉"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for (text, needle) in [
            ("", "end of input"),
            ("{", "expected `\""),
            ("[1,", "end of input"),
            ("[1 2]", "expected `,` or `]`"),
            ("{\"a\" 1}", "expected `:`"),
            ("tru", "expected `true`"),
            ("\"unterminated", "unterminated"),
            ("\"bad \\x escape\"", "bad escape"),
            ("\"\\ud800 lonely\"", "unpaired high surrogate"),
            ("1e999", "overflows"),
            ("01x", "trailing characters"),
            ("{} {}", "trailing characters"),
            ("nan", "expected `true`, `false` or `null`"),
        ] {
            let err = Json::parse(text).unwrap_err();
            let formatted = err.to_string();
            assert!(
                formatted.contains(needle),
                "`{text}` should fail with `{needle}`, got `{formatted}`"
            );
        }
    }

    #[test]
    fn parsed_integers_keep_their_exact_text() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        // `-0` is not i64-canonical, so it stays a float and re-renders
        // byte-identically
        assert_eq!(Json::parse("-0").unwrap().render(), "-0");
        assert_eq!(Json::parse("1.5e3").unwrap(), Json::Num(1500.0));
    }

    fn small_outcome() -> CampaignOutcome {
        use crate::scenario::CampaignConfig;
        use crate::CampaignEngine;

        CampaignEngine::new(CampaignConfig {
            episodes: 3,
            samples: 120,
            threads: 2,
            devices: vec![edgehw::DeviceKind::RaspberryPi4],
            rewards: vec![crate::RewardSetting::balanced()],
            freezing: vec![true],
            ..CampaignConfig::default()
        })
        .unwrap()
        .run()
        .unwrap()
    }

    #[test]
    fn scenario_report_contains_the_headline_fields() {
        let outcome = small_outcome();
        let scenario = &outcome.scenarios[0];
        let report = scenario_json(scenario);
        for needle in [
            r#""scenario":"raspberry_pi_4/balanced/frozen""#,
            r#""device":"Raspberry PI""#,
            r#""device_slug":"raspberry_pi_4""#,
            r#""cache":{"hits":"#,
            r#""valid_ratio":"#,
            r#""accuracy_fairness_frontier":"#,
            r#""wall_clock_ms":"#,
        ] {
            assert!(report.contains(needle), "missing {needle} in {report}");
        }
        let campaign_report = campaign_json(&outcome);
        assert!(campaign_report.contains(r#""scenario_count":1"#));
        assert!(campaign_report.contains(r#""threads":2"#));
    }

    #[test]
    fn typed_reports_round_trip_bit_exactly() {
        let outcome = small_outcome();
        let scenario_text = scenario_json(&outcome.scenarios[0]);
        let parsed = ScenarioReport::parse(&scenario_text).unwrap();
        assert_eq!(parsed.to_json().render(), scenario_text);
        assert_eq!(parsed.device_slug, "raspberry_pi_4");

        let campaign_text = campaign_json(&outcome);
        let parsed = CampaignReport::parse(&campaign_text).unwrap();
        assert_eq!(parsed.to_json().render(), campaign_text);
        assert_eq!(parsed.scenarios.len(), 1);
        assert_eq!(parsed.cache.hits, outcome.cache.hits);
    }

    #[test]
    fn nan_metrics_round_trip_through_null() {
        // a report whose metric went NaN renders the metric as `null`;
        // parsing must hand back NaN (not an opaque schema error), and
        // re-rendering must reproduce the document byte-for-byte
        let outcome = small_outcome();
        let mut report = ScenarioReport::from_outcome(&outcome.scenarios[0]);
        report.valid_ratio = f64::NAN;
        report.wall_clock_ms = f64::INFINITY;
        let text = report.to_json().render();
        assert!(text.contains(r#""valid_ratio":null"#), "{text}");

        let parsed = ScenarioReport::parse(&text).unwrap();
        assert!(parsed.valid_ratio.is_nan());
        assert!(parsed.wall_clock_ms.is_nan(), "∞ collapses to null → NaN");
        assert_eq!(parsed.to_json().render(), text);

        // a non-numeric, non-null value in a numeric slot is still an error
        let err = ScenarioReport::parse(
            &text.replace(r#""valid_ratio":null"#, r#""valid_ratio":"broken""#),
        )
        .unwrap_err();
        assert!(err.to_string().contains("valid_ratio"), "{err}");
    }

    /// A partial report holding exactly the given scenarios of `outcome`.
    fn partial(outcome: &CampaignOutcome, indices: &[usize]) -> CampaignReport {
        let mut report = CampaignReport::from_outcome(outcome);
        report.scenarios = indices
            .iter()
            .map(|&index| report.scenarios[index].clone())
            .collect();
        report
    }

    fn two_scenario_outcome() -> CampaignOutcome {
        use crate::scenario::CampaignConfig;
        use crate::CampaignEngine;

        CampaignEngine::new(CampaignConfig {
            episodes: 3,
            samples: 120,
            threads: 2,
            devices: vec![edgehw::DeviceKind::RaspberryPi4],
            rewards: vec![crate::RewardSetting::balanced()],
            freezing: vec![true, false],
            ..CampaignConfig::default()
        })
        .unwrap()
        .run()
        .unwrap()
    }

    #[test]
    fn merge_fuses_partials_in_plan_order() {
        let outcome = two_scenario_outcome();
        let whole = CampaignReport::from_outcome(&outcome);
        let order: Vec<String> = whole.scenarios.iter().map(|s| s.scenario.clone()).collect();
        // partials arrive out of order; the merge restores plan order
        let parts = [partial(&outcome, &[1]), partial(&outcome, &[0])];
        let merged = CampaignReport::merge(&parts, &order).unwrap();
        assert_eq!(merged.scenarios, whole.scenarios);
        assert_eq!(merged.cache.hits, parts[0].cache.hits + parts[1].cache.hits);
        assert_eq!(merged.threads, whole.threads);
        // scenario payloads moved verbatim
        assert_eq!(
            merged.scenarios[0].to_json().render(),
            whole.scenarios[0].to_json().render()
        );
        // canonical forms of merged and whole agree byte-for-byte (the
        // aggregates differ — each partial recounted the shared cache)
        assert_eq!(
            merged.canonical().to_json().render(),
            whole.canonical().to_json().render()
        );
    }

    #[test]
    fn merge_rejects_duplicate_missing_and_unexpected_scenarios() {
        let outcome = two_scenario_outcome();
        let whole = CampaignReport::from_outcome(&outcome);
        let order: Vec<String> = whole.scenarios.iter().map(|s| s.scenario.clone()).collect();

        // the same scenario in two shards → typed duplicate error
        let err = CampaignReport::merge(
            &[partial(&outcome, &[0, 1]), partial(&outcome, &[1])],
            &order,
        )
        .unwrap_err();
        assert_eq!(
            err,
            ReportMergeError::DuplicateScenario(order[1].clone()),
            "{err}"
        );

        // a shard never reported → typed missing error
        let err = CampaignReport::merge(&[partial(&outcome, &[0])], &order).unwrap_err();
        assert_eq!(err, ReportMergeError::MissingScenario(order[1].clone()));

        // a scenario outside the plan → typed unexpected error
        let err = CampaignReport::merge(&[partial(&outcome, &[0, 1])], &order[..1]).unwrap_err();
        assert_eq!(err, ReportMergeError::UnexpectedScenario(order[1].clone()));
    }

    #[test]
    fn nan_metrics_survive_merge_byte_identically() {
        let outcome = two_scenario_outcome();
        let whole = CampaignReport::from_outcome(&outcome);
        let order: Vec<String> = whole.scenarios.iter().map(|s| s.scenario.clone()).collect();
        let mut left = partial(&outcome, &[0]);
        left.scenarios[0].valid_ratio = f64::NAN;
        left.scenarios[0].modelled_search_hours = f64::INFINITY;
        let before = left.scenarios[0].to_json().render();
        assert!(before.contains(r#""valid_ratio":null"#), "{before}");

        let merged = CampaignReport::merge(&[left, partial(&outcome, &[1])], &order).unwrap();
        assert!(merged.scenarios[0].valid_ratio.is_nan());
        assert_eq!(
            merged.scenarios[0].to_json().render(),
            before,
            "NaN scenario must re-render byte-identically after the merge"
        );
        // and the fused document round-trips as a whole
        let text = merged.to_json().render();
        assert_eq!(
            CampaignReport::parse(&text).unwrap().to_json().render(),
            text
        );
    }

    #[test]
    fn schema_violations_name_the_offending_path() {
        let err = CampaignReport::parse(r#"{"threads":2}"#).unwrap_err();
        assert!(matches!(err, ReportError::Schema { .. }), "{err:?}");
        assert!(err.to_string().contains("scenarios"), "{err}");

        let outcome = small_outcome();
        let text =
            campaign_json(&outcome).replace(r#""scenario_count":1"#, r#""scenario_count":5"#);
        let err = CampaignReport::parse(&text).unwrap_err();
        assert!(err.to_string().contains("scenario_count"), "{err}");
    }
}
