//! JSON campaign reports, hand-rolled.
//!
//! The offline build has no serde_json (see `vendor/README.md`), so this
//! module renders reports through a tiny [`Json`] value tree. Emission
//! rules: strings are escaped per RFC 8259, non-finite numbers become
//! `null` (JSON has no NaN/∞), and object keys keep insertion order so
//! reports diff cleanly across runs.

use fahana::{EpisodeRecord, ParetoPoint, SearchOutcome};

use crate::cache::CacheStats;
use crate::campaign::{CampaignOutcome, ScenarioOutcome};

/// A JSON value (construction side only — reports are written, not read).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite renders as `null`).
    Num(f64),
    /// An integer rendered without a decimal point.
    Int(i64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (index, (key, value)) in entries.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn episode_json(record: &EpisodeRecord) -> Json {
    Json::Obj(vec![
        ("episode".into(), Json::Int(record.episode as i64)),
        ("name".into(), Json::str(&record.name)),
        ("params".into(), Json::Int(record.params as i64)),
        (
            "trained_params".into(),
            Json::Int(record.trained_params as i64),
        ),
        ("storage_mb".into(), Json::Num(record.storage_mb)),
        ("latency_ms".into(), Json::Num(record.latency_ms)),
        ("accuracy".into(), Json::Num(record.accuracy)),
        ("unfairness".into(), Json::Num(record.unfairness)),
        ("reward".into(), Json::Num(record.reward)),
        ("valid".into(), Json::Bool(record.valid)),
    ])
}

fn frontier_json(points: &[ParetoPoint]) -> Json {
    Json::Arr(
        points
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".into(), Json::str(&p.label)),
                    ("maximize".into(), Json::Num(p.maximize)),
                    ("minimize".into(), Json::Num(p.minimize)),
                ])
            })
            .collect(),
    )
}

fn cache_json(stats: &CacheStats) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::Int(stats.hits as i64)),
        ("misses".into(), Json::Int(stats.misses as i64)),
        ("hit_rate".into(), Json::Num(stats.hit_rate())),
    ])
}

fn outcome_summary_json(outcome: &SearchOutcome) -> Vec<(String, Json)> {
    let best = |network: &Option<fahana::DiscoveredNetwork>| match network {
        Some(network) => episode_json(&network.record),
        None => Json::Null,
    };
    vec![
        ("episodes".into(), Json::Int(outcome.history.len() as i64)),
        ("valid_ratio".into(), Json::Num(outcome.valid_ratio)),
        (
            "space_log10_size".into(),
            Json::Num(outcome.space_log10_size),
        ),
        (
            "frozen_blocks".into(),
            Json::Int(outcome.frozen_blocks as i64),
        ),
        (
            "searchable_slots".into(),
            Json::Int(outcome.searchable_slots as i64),
        ),
        (
            "modelled_search_hours".into(),
            Json::Num(outcome.modelled_search_hours),
        ),
        (
            "modelled_search_time".into(),
            Json::str(&outcome.modelled_search_time),
        ),
        ("best".into(), best(&outcome.best)),
        ("best_small".into(), best(&outcome.best_small)),
        ("fairest".into(), best(&outcome.fairest)),
        (
            "accuracy_fairness_frontier".into(),
            frontier_json(&outcome.accuracy_fairness_frontier()),
        ),
        (
            "reward_size_frontier".into(),
            frontier_json(&outcome.reward_size_frontier()),
        ),
    ]
}

/// The full entry list of one scenario's report (shared by the standalone
/// scenario reports and the embedded array in the campaign report, so the
/// two can never diverge).
fn scenario_entries(scenario: &ScenarioOutcome) -> Vec<(String, Json)> {
    let mut entries = vec![
        ("scenario".into(), Json::str(&scenario.scenario.name)),
        ("device".into(), Json::str(scenario.scenario.device.label())),
        ("reward".into(), Json::str(&scenario.scenario.reward.name)),
        ("alpha".into(), Json::Num(scenario.scenario.reward.alpha)),
        ("beta".into(), Json::Num(scenario.scenario.reward.beta)),
        (
            "use_freezing".into(),
            Json::Bool(scenario.scenario.use_freezing),
        ),
        (
            "wall_clock_ms".into(),
            Json::Num(scenario.wall_clock.as_secs_f64() * 1e3),
        ),
        ("cache".into(), cache_json(&scenario.cache)),
    ];
    entries.extend(outcome_summary_json(&scenario.outcome));
    entries
}

/// Renders one scenario's report.
pub fn scenario_json(scenario: &ScenarioOutcome) -> String {
    Json::Obj(scenario_entries(scenario)).render()
}

/// Renders the whole campaign report (aggregates plus every scenario).
pub fn campaign_json(outcome: &CampaignOutcome) -> String {
    Json::Obj(vec![
        ("threads".into(), Json::Int(outcome.threads as i64)),
        (
            "wall_clock_ms".into(),
            Json::Num(outcome.wall_clock.as_secs_f64() * 1e3),
        ),
        ("cache".into(), cache_json(&outcome.cache)),
        (
            "cache_entries".into(),
            Json::Int(outcome.cache_entries as i64),
        ),
        (
            "scenario_count".into(),
            Json::Int(outcome.scenarios.len() as i64),
        ),
        (
            "scenarios".into(),
            Json::Arr(
                outcome
                    .scenarios
                    .iter()
                    .map(|s| Json::Obj(scenario_entries(s)))
                    .collect(),
            ),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let value = Json::str("a\"b\\c\nd\te\u{1}");
        let expected = "\"a\\\"b\\\\c\\nd\\te\\u0001\"";
        assert_eq!(value.render(), expected);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Int(-3).render(), "-3");
    }

    #[test]
    fn containers_render_compactly_in_order() {
        let value = Json::Obj(vec![
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("a".into(), Json::Int(1)),
        ]);
        assert_eq!(value.render(), r#"{"b":[true,null],"a":1}"#);
    }

    #[test]
    fn scenario_report_contains_the_headline_fields() {
        use crate::scenario::CampaignConfig;
        use crate::CampaignEngine;

        let outcome = CampaignEngine::new(CampaignConfig {
            episodes: 3,
            samples: 120,
            threads: 2,
            devices: vec![edgehw::DeviceKind::RaspberryPi4],
            rewards: vec![crate::RewardSetting::balanced()],
            freezing: vec![true],
            ..CampaignConfig::default()
        })
        .unwrap()
        .run()
        .unwrap();
        let scenario = &outcome.scenarios[0];
        let report = scenario_json(scenario);
        for needle in [
            r#""scenario":"raspberry_pi_4/balanced/frozen""#,
            r#""device":"Raspberry PI""#,
            r#""cache":{"hits":"#,
            r#""valid_ratio":"#,
            r#""accuracy_fairness_frontier":"#,
            r#""wall_clock_ms":"#,
        ] {
            assert!(report.contains(needle), "missing {needle} in {report}");
        }
        let campaign_report = campaign_json(&outcome);
        assert!(campaign_report.contains(r#""scenario_count":1"#));
        assert!(campaign_report.contains(r#""threads":2"#));
    }
}
