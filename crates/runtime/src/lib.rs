//! `fahana-runtime` — parallel, cache-aware FaHaNa search campaigns.
//!
//! The paper runs *one* search against *one* device and *one* reward
//! setting; real deployments (and the follow-up literature on scenario
//! diversity) need sweeps over many device profiles, reward weightings and
//! search-space configurations. This crate turns the single-search engine
//! of [`fahana`] into a campaign system:
//!
//! * [`pool`] — a std-only work-stealing thread pool with a helping
//!   `map`, safe for nested parallelism (scenario-level fan-out *and*
//!   episode-batch fan-out share one pool without deadlocking);
//! * [`cache`] — an architecture-fingerprint-keyed evaluation cache behind
//!   an `RwLock`, memoising [`evaluator::SurrogateEvaluator`] results so
//!   scenarios that re-visit the same child architecture (same controller
//!   seed, different device/reward) never re-evaluate it;
//! * [`scenario`] — the declarative scenario grid (device × reward ×
//!   freezing) and the campaign config-file parser;
//! * [`campaign`] — the engine that expands a grid and runs every scenario
//!   on the pool, sharing per-device latency tables
//!   ([`edgehw::SharedBlockLatencyTable`]) and the evaluation cache;
//! * [`plan`] / [`shard`] — the plan → partition half of sharded
//!   execution: a [`CampaignPlan`] enumerates grid cells deterministically
//!   and slices them into `N` shards by stable name hash — or into
//!   arbitrary explicit cell sets ([`CellAssignment`],
//!   `fahana-campaign --cells`) — so independent worker processes
//!   (fanned out by the `fahana-shard` coordinator, which retries failed
//!   workers and rebalances their unfinished cells) jointly cover the
//!   grid exactly once and their partial reports and cache snapshots
//!   merge back bit-identically to a single-process run;
//! * [`fsutil`] — crash-safe staging writes ([`write_atomic`]) shared by
//!   every artifact emitter, so a worker killed mid-write never leaves a
//!   torn report for a retrying coordinator to trip over;
//! * [`report`] — hand-rolled JSON reports (best architecture, Pareto
//!   frontier, wall-clock, cache hit-rate) for each scenario and the
//!   campaign as a whole, with a parser and typed schema structs so
//!   reports round-trip;
//! * [`snapshot`] — a versioned, checksummed on-disk format for the
//!   evaluation cache, so campaigns warm-start from prior runs
//!   (`fahana-campaign --cache-in/--cache-out`);
//! * [`store`] — the campaign artifact store: ingested reports indexed by
//!   device × reward × freezing, answering "best architecture for device
//!   X under constraint Y" queries (the `fahana-query` binary) with
//!   cross-campaign Pareto-frontier merging;
//! * [`serve`] — the long-lived serving front-end: the `fahana-serve`
//!   HTTP/1.1 daemon over the artifact store, sharing the exact query core
//!   with the CLI and handling connections on the same thread pool;
//! * [`telemetry`] — the observability side channel: a lock-cheap
//!   [`MetricsRegistry`] (counters, gauges, fixed-bucket latency
//!   histograms; Prometheus text + JSON renderings) and a JSONL
//!   [`TraceSink`] (`--trace-out`), instrumented through the campaign
//!   engine, the pool, the shard coordinator and the serve stack —
//!   guaranteed never to change any artifact byte.
//!
//! Determinism is a hard guarantee: a scenario's [`fahana::SearchOutcome`]
//! is bit-identical whether it runs serially, through the pool, with the
//! cache enabled or disabled, cold or warm-started from a snapshot (see
//! `tests/determinism.rs`).

pub mod cache;
pub mod campaign;
pub mod fsutil;
pub mod plan;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod serve;
pub mod shard;
pub mod snapshot;
pub mod store;
pub mod telemetry;

pub use cache::{CacheStats, CachedEvaluator, EvalCache, ShardStats, DEFAULT_CACHE_SHARDS};
pub use campaign::{CampaignEngine, CampaignOutcome, PooledBatchEvaluator, ScenarioOutcome};
pub use fsutil::write_atomic;
pub use plan::CampaignPlan;
pub use pool::{PoolMonitor, PoolStats, ThreadPool};
pub use report::{
    campaign_json, scenario_json, CampaignReport, Json, ReportError, ReportMergeError,
    ScenarioReport,
};
pub use scenario::{CampaignConfig, RewardSetting, Scenario};
pub use serve::{ReactorBackend, ResponseCache, ServeOptions, Server, ServerHandle, StoreView};
pub use shard::{shard_of, CellAssignment, ShardAssignment, ShardSpec};
pub use snapshot::{CacheSnapshot, MergeOutcome, SnapshotError};
pub use store::{
    answer_query, catalog_json, leaderboard, ArtifactStore, Candidate, Leaderboard, QueryAnswer,
    StoreError, StoreQuery, StoredCampaign,
};
pub use telemetry::{MetricsRegistry, Telemetry, TraceSink};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Error type of the campaign runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The campaign configuration (file or grid) is invalid.
    InvalidConfig(String),
    /// A scenario's search failed.
    Scenario {
        /// Name of the failing scenario.
        name: String,
        /// The underlying search error, formatted.
        message: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::InvalidConfig(msg) => write!(f, "invalid campaign config: {msg}"),
            RuntimeError::Scenario { name, message } => {
                write!(f, "scenario `{name}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
