//! `fahana-shard` — fan a campaign out across worker processes and merge
//! the partials back into one verified whole.
//!
//! ```text
//! fahana-shard --shards N [--config FILE] [--out DIR] [--threads N]
//!              [--episodes N] [--seed N] [--parallel-episodes]
//!              [--cache-out FILE] [--store DIR] [--store-id ID]
//!              [--ingest-url HOST:PORT] [--canonical] [--json]
//!              [--keep-partials] [--worker-bin PATH]
//! ```
//!
//! The coordinator half of sharded execution (plan → partition → execute
//! → merge):
//!
//! 1. derive the [`CampaignPlan`] from the config — the same plan every
//!    worker derives, so nothing but the config and `I/N` crosses the
//!    process boundary;
//! 2. spawn `N` `fahana-campaign --shard I/N` workers, each writing a
//!    partial report and cache snapshot into its own directory;
//! 3. merge: partial cache snapshots union ([`CacheSnapshot::merge`]),
//!    partial reports fuse in plan order ([`CampaignReport::merge`]);
//! 4. publish: write the merged `campaign.json` (and `--cache-out`
//!    snapshot), optionally ingest into an artifact store (`--store`) or
//!    POST to a running `fahana-serve` (`--ingest-url`, reusing one
//!    keep-alive connection).
//!
//! The merge is verification, not just bookkeeping: scenario overlaps or
//! gaps between shards abort with a typed error, and the merged canonical
//! report is byte-identical to a single-process run of the same config
//! (pinned by `tests/determinism.rs` and the CI sharded smoke job).
//!
//! Workers default to the `fahana-campaign` binary sitting next to this
//! one; `--worker-bin` (or the `FAHANA_CAMPAIGN_BIN` environment
//! variable) points elsewhere — e.g. at a release build — without moving
//! files around.

use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, ExitCode, Stdio};

use fahana_runtime::serve::client_roundtrip;
use fahana_runtime::{
    ArtifactStore, CacheSnapshot, CampaignConfig, CampaignPlan, CampaignReport, Json,
};

struct Cli {
    shards: usize,
    config_path: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    threads: Option<usize>,
    episodes: Option<usize>,
    seed: Option<u64>,
    parallel_episodes: bool,
    cache_out: Option<PathBuf>,
    store_dir: Option<PathBuf>,
    store_id: Option<String>,
    ingest_url: Option<String>,
    canonical: bool,
    json: bool,
    keep_partials: bool,
    worker_bin: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: fahana-shard --shards N [--config FILE] [--out DIR] \
     [--threads N] [--episodes N] [--seed N] [--parallel-episodes] \
     [--cache-out FILE] [--store DIR] [--store-id ID] \
     [--ingest-url HOST:PORT] [--canonical] [--json] [--keep-partials] \
     [--worker-bin PATH]"
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        shards: 0,
        config_path: None,
        out_dir: None,
        threads: None,
        episodes: None,
        seed: None,
        parallel_episodes: false,
        cache_out: None,
        store_dir: None,
        store_id: None,
        ingest_url: None,
        canonical: false,
        json: false,
        keep_partials: false,
        worker_bin: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        let number = |flag: &str, value: &str| -> Result<usize, String> {
            value
                .parse()
                .map_err(|_| format!("{flag} expects a number, got `{value}`"))
        };
        match arg.as_str() {
            "--shards" => {
                let value = value_of("--shards")?;
                cli.shards = number("--shards", value)?;
            }
            "--config" => cli.config_path = Some(PathBuf::from(value_of("--config")?)),
            "--out" => cli.out_dir = Some(PathBuf::from(value_of("--out")?)),
            "--threads" => {
                let value = value_of("--threads")?;
                cli.threads = Some(number("--threads", value)?);
            }
            "--episodes" => {
                let value = value_of("--episodes")?;
                cli.episodes = Some(number("--episodes", value)?);
            }
            "--seed" => {
                let value = value_of("--seed")?;
                cli.seed = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--seed expects a number, got `{value}`"))?,
                );
            }
            "--parallel-episodes" => cli.parallel_episodes = true,
            "--cache-out" => cli.cache_out = Some(PathBuf::from(value_of("--cache-out")?)),
            "--store" => cli.store_dir = Some(PathBuf::from(value_of("--store")?)),
            "--store-id" => {
                // fail now, not after N worker campaigns have run — and the
                // accepted charset is URL-safe, so the id can go into the
                // `POST /ingest?id=` query string verbatim
                let value = value_of("--store-id")?;
                if value.is_empty()
                    || !value
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
                {
                    return Err(format!(
                        "--store-id must use letters, digits, `-`, `_` or `.`, got `{value}`"
                    ));
                }
                cli.store_id = Some(value.to_string());
            }
            "--ingest-url" => cli.ingest_url = Some(value_of("--ingest-url")?.to_string()),
            "--canonical" => cli.canonical = true,
            "--json" => cli.json = true,
            "--keep-partials" => cli.keep_partials = true,
            "--worker-bin" => cli.worker_bin = Some(PathBuf::from(value_of("--worker-bin")?)),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if cli.shards == 0 {
        return Err(format!("--shards N (N >= 1) is required\n{}", usage()));
    }
    Ok(cli)
}

/// The `fahana-campaign` binary workers run: `--worker-bin`, then the
/// `FAHANA_CAMPAIGN_BIN` environment variable, then the sibling of this
/// executable.
fn worker_binary(cli: &Cli) -> Result<PathBuf, String> {
    if let Some(path) = &cli.worker_bin {
        return Ok(path.clone());
    }
    if let Some(path) = std::env::var_os("FAHANA_CAMPAIGN_BIN") {
        return Ok(PathBuf::from(path));
    }
    let me = std::env::current_exe().map_err(|e| format!("cannot locate this binary: {e}"))?;
    let sibling = me.with_file_name(format!("fahana-campaign{}", std::env::consts::EXE_SUFFIX));
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "no fahana-campaign next to {} — pass --worker-bin or set FAHANA_CAMPAIGN_BIN",
            me.display()
        ))
    }
}

fn run(cli: Cli) -> Result<(), String> {
    let config = match &cli.config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let mut config = CampaignConfig::parse(&text).map_err(|e| e.to_string())?;
            apply_overrides(&mut config, &cli);
            config
        }
        None => {
            let mut config = CampaignConfig::default();
            apply_overrides(&mut config, &cli);
            config
        }
    };
    // the coordinator derives the plan only to know the merge order and
    // to fail fast on an invalid grid; workers re-derive it themselves
    let plan = CampaignPlan::new(config).map_err(|e| e.to_string())?;
    if !plan.config().use_cache {
        // workers are always asked for --cache-out, which a disabled cache
        // cannot honor; fail here instead of N times in the workers
        return Err(
            "sharded runs need the evaluation cache (`cache = off` in the config \
                    conflicts with merging per-shard snapshots)"
                .into(),
        );
    }
    let worker_bin = worker_binary(&cli)?;

    let work_dir = match &cli.out_dir {
        Some(dir) => dir.clone(),
        None => std::env::temp_dir().join(format!("fahana-shard-{}", std::process::id())),
    };
    let shards_dir = work_dir.join("shards");
    std::fs::create_dir_all(&shards_dir)
        .map_err(|e| format!("cannot create {}: {e}", shards_dir.display()))?;

    eprintln!(
        "fanning {} scenarios out across {} worker processes ({})",
        plan.len(),
        cli.shards,
        worker_bin.display()
    );
    let mut workers: Vec<(usize, PathBuf, std::process::Child)> = Vec::with_capacity(cli.shards);
    for index in 0..cli.shards {
        let shard_dir = shards_dir.join(format!("shard-{}", index + 1));
        std::fs::create_dir_all(&shard_dir)
            .map_err(|e| format!("cannot create {}: {e}", shard_dir.display()))?;
        let mut command = Command::new(&worker_bin);
        command
            .arg("--shard")
            .arg(format!("{}/{}", index + 1, cli.shards))
            .arg("--out")
            .arg(&shard_dir)
            .arg("--cache-out")
            .arg(shard_dir.join("cache.fsnap"));
        if let Some(path) = &cli.config_path {
            command.arg("--config").arg(path);
        }
        if let Some(threads) = cli.threads {
            command.arg("--threads").arg(threads.to_string());
        }
        if let Some(episodes) = cli.episodes {
            command.arg("--episodes").arg(episodes.to_string());
        }
        if let Some(seed) = cli.seed {
            command.arg("--seed").arg(seed.to_string());
        }
        if cli.parallel_episodes {
            command.arg("--parallel-episodes");
        }
        let child = match command.stdout(Stdio::null()).stderr(Stdio::piped()).spawn() {
            Ok(child) => child,
            Err(e) => {
                // do not leave already-spawned workers running as orphans
                for (_, _, child) in workers.iter_mut() {
                    child.kill().ok();
                    child.wait().ok();
                }
                return Err(format!("cannot spawn {}: {e}", worker_bin.display()));
            }
        };
        workers.push((index + 1, shard_dir, child));
    }

    // collect every worker before reporting a failure: the first error is
    // remembered, the still-running siblings are killed and reaped, and
    // only then does the coordinator bail — no orphan keeps burning CPU
    // on a campaign nobody will merge
    let mut parts = Vec::with_capacity(cli.shards);
    let mut merged_snapshot = CacheSnapshot::new();
    let mut failure: Option<String> = None;
    for (shard, shard_dir, mut child) in workers {
        if failure.is_some() {
            child.kill().ok();
            child.wait().ok();
            continue;
        }
        let collect = |merged_snapshot: &mut CacheSnapshot,
                       parts: &mut Vec<CampaignReport>|
         -> Result<(), String> {
            let output = child
                .wait_with_output()
                .map_err(|e| format!("shard {shard}/{}: wait failed: {e}", cli.shards))?;
            if !output.status.success() {
                return Err(format!(
                    "shard {shard}/{} failed with {}\n{}",
                    cli.shards,
                    output.status,
                    String::from_utf8_lossy(&output.stderr)
                ));
            }
            let report_path = shard_dir.join("campaign.json");
            let text = std::fs::read_to_string(&report_path)
                .map_err(|e| format!("cannot read {}: {e}", report_path.display()))?;
            parts.push(
                CampaignReport::parse(&text)
                    .map_err(|e| format!("shard {shard} report {}: {e}", report_path.display()))?,
            );
            let snapshot_path = shard_dir.join("cache.fsnap");
            let snapshot = CacheSnapshot::load(&snapshot_path)
                .map_err(|e| format!("cannot load {}: {e}", snapshot_path.display()))?;
            let outcome = merged_snapshot.merge(&snapshot);
            if outcome.conflicts > 0 {
                // deterministic evaluation means identical keys carry
                // identical values; a conflict is a fingerprint collision
                // or build skew
                eprintln!(
                    "warning: shard {shard} snapshot had {} conflicting entries (kept first sighting)",
                    outcome.conflicts
                );
            }
            Ok(())
        };
        if let Err(message) = collect(&mut merged_snapshot, &mut parts) {
            failure = Some(message);
        }
    }
    if let Some(message) = failure {
        return Err(message);
    }

    let mut merged =
        CampaignReport::merge(&parts, &plan.order()).map_err(|e| format!("merge failed: {e}"))?;
    // the per-part sum double-counts entries shards evaluated in common;
    // the merged snapshot knows the true distinct count
    merged.cache_entries = merged_snapshot.len() as u64;
    if cli.canonical {
        merged = merged.canonical();
    }
    let merged_json = merged.to_json().render();

    // the merged report only lands on disk when the caller asked for an
    // output directory; publish-only runs keep it in memory (advertising
    // a temp path that the cleanup below would delete again helps nobody)
    match &cli.out_dir {
        Some(_) => {
            let campaign_path = work_dir.join("campaign.json");
            std::fs::write(&campaign_path, &merged_json)
                .map_err(|e| format!("cannot write {}: {e}", campaign_path.display()))?;
            eprintln!(
                "merged {} partial reports ({} scenarios) into {}",
                parts.len(),
                merged.scenarios.len(),
                campaign_path.display()
            );
        }
        None => eprintln!(
            "merged {} partial reports ({} scenarios)",
            parts.len(),
            merged.scenarios.len(),
        ),
    }

    if let Some(path) = &cli.cache_out {
        merged_snapshot
            .save(path)
            .map_err(|e| format!("cannot save merged cache snapshot: {e}"))?;
        eprintln!(
            "merged cache snapshot: {} entries to {}",
            merged_snapshot.len(),
            path.display()
        );
    }

    let id = cli
        .store_id
        .clone()
        .unwrap_or_else(|| format!("sharded-seed{}", plan.config().seed));
    if let Some(dir) = &cli.store_dir {
        let store = ArtifactStore::open(dir).map_err(|e| e.to_string())?;
        // suffix on collision (repeated nightly runs): never discard a
        // whole N-worker campaign over a taken id
        let stored = store
            .ingest_with_suffix(&id, &merged_json)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "ingested merged campaign as `{}` into the artifact store at {}",
            stored.id,
            store.root().display()
        );
    }
    if let Some(url) = &cli.ingest_url {
        // one keep-alive connection carries the publish (with the same
        // duplicate-id suffix fallback as the --store path — a repeated
        // nightly publish must not discard a whole N-worker campaign over
        // a 409) and its verification read-back
        let mut stream = TcpStream::connect(url.as_str())
            .map_err(|e| format!("cannot connect to {url}: {e}"))?;
        let mut suffix = 1;
        let published_id = loop {
            let attempt_id = if suffix == 1 {
                id.clone()
            } else {
                format!("{id}-{suffix}")
            };
            let target = format!("/ingest?id={attempt_id}");
            let (status, body) =
                client_roundtrip(&mut stream, "POST", &target, merged_json.as_bytes())
                    .map_err(|e| format!("POST {target} to {url}: {e}"))?;
            match status {
                201 => break attempt_id,
                409 => suffix += 1,
                _ => return Err(format!("POST {target} to {url} answered {status}: {body}")),
            }
        };
        let (status, body) = client_roundtrip(&mut stream, "GET", "/healthz", b"")
            .map_err(|e| format!("GET /healthz on {url}: {e}"))?;
        let campaigns = Json::parse(&body)
            .ok()
            .and_then(|health| health.get("campaigns").and_then(Json::as_i64))
            .unwrap_or(-1);
        eprintln!(
            "published merged campaign as `{published_id}` to {url} \
             (healthz {status}: {campaigns} campaigns served)"
        );
    }

    if !cli.keep_partials {
        std::fs::remove_dir_all(&shards_dir).ok();
        if cli.out_dir.is_none() {
            // nobody asked for the merged files on disk; do not leak a
            // per-pid temp directory on every publish-only invocation
            std::fs::remove_dir_all(&work_dir).ok();
        }
    }
    if cli.json {
        println!("{merged_json}");
    }
    Ok(())
}

fn apply_overrides(config: &mut CampaignConfig, cli: &Cli) {
    if let Some(threads) = cli.threads {
        config.threads = threads;
    }
    if let Some(episodes) = cli.episodes {
        config.episodes = episodes;
    }
    if let Some(seed) = cli.seed {
        config.seed = seed;
    }
    if cli.parallel_episodes {
        config.parallel_episodes = true;
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fahana-shard: {message}");
            ExitCode::FAILURE
        }
    }
}
