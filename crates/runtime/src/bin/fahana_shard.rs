//! `fahana-shard` — fan a campaign out across worker processes, survive
//! worker failures, and merge the partials back into one verified whole.
//!
//! ```text
//! fahana-shard --shards N [--config FILE] [--out DIR] [--threads N]
//!              [--episodes N] [--seed N] [--parallel-episodes]
//!              [--max-attempts N] [--cache-out FILE] [--store DIR]
//!              [--store-id ID] [--ingest-url HOST:PORT] [--canonical]
//!              [--json] [--keep-partials] [--worker-bin PATH]
//!              [--trace-out FILE]
//! ```
//!
//! The coordinator half of sharded execution (plan → partition → execute
//! → merge), built around a fault-tolerant scheduler:
//!
//! 1. derive the [`CampaignPlan`] from the config — the same plan every
//!    worker derives, so nothing but the config and an assignment crosses
//!    the process boundary;
//! 2. spawn `N` `fahana-campaign --shard I/N` workers, each writing a
//!    partial report and cache snapshot into its own per-attempt
//!    directory;
//! 3. recover: a worker that dies, or exits cleanly with a missing,
//!    torn or wrong-cells report, is a *failed attempt* — it is retried
//!    (fresh directory, up to `--max-attempts` attempts per task) while
//!    shards that already succeeded are salvaged verbatim and never
//!    re-run. A shard that exhausts its attempts has its unfinished cells
//!    rebalanced across as many replacement workers as there were
//!    survivors, respawned as explicit `--cells` assignments
//!    ([`CellAssignment`]). Only when replacements fail too does the run
//!    error — naming exactly the cells that never completed;
//! 4. merge: each completed task's artifacts are merged exactly once —
//!    cache snapshots union ([`CacheSnapshot::merge`]), reports fuse in
//!    plan order ([`CampaignReport::merge`]);
//! 5. publish: write the merged `campaign.json` (and `--cache-out`
//!    snapshot), optionally ingest into an artifact store (`--store`) or
//!    POST to a running `fahana-serve` (`--ingest-url`, reusing one
//!    keep-alive connection).
//!
//! The merge is verification, not just bookkeeping: a worker's report
//! must cover exactly its assigned cells, scenario overlaps or gaps
//! between tasks abort with a typed error, and the merged canonical
//! report is byte-identical to a single-process run of the same config —
//! including runs that crashed and recovered (pinned by
//! `tests/shard_cli.rs` and the CI injected-failure smoke job).
//!
//! Workers default to the `fahana-campaign` binary sitting next to this
//! one; `--worker-bin` (or the `FAHANA_CAMPAIGN_BIN` environment
//! variable) points elsewhere — e.g. at a release build — without moving
//! files around.
//!
//! Every attempt the scheduler reaps is reported as one structured
//! stderr line (`attempt: task=… attempt=…/… outcome=… duration_ms=…`,
//! outcome `ok`/`retry`/`exhausted`) so retries and rebalances are
//! visible live, not just inferable from attempt directories afterwards.
//! `--trace-out FILE` additionally appends JSONL trace records
//! (`shard_attempt` and `shard_wave` spans, a `rebalance` event) to the
//! sink — a pure side channel: the merged artifacts are byte-identical
//! with tracing on or off.

use std::collections::BTreeSet;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Instant;

use fahana_runtime::serve::client_roundtrip;
use fahana_runtime::{
    write_atomic, ArtifactStore, CacheSnapshot, CampaignConfig, CampaignPlan, CampaignReport,
    CellAssignment, Json, Telemetry,
};

struct Cli {
    shards: usize,
    config_path: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    threads: Option<usize>,
    episodes: Option<usize>,
    seed: Option<u64>,
    parallel_episodes: bool,
    max_attempts: usize,
    cache_out: Option<PathBuf>,
    store_dir: Option<PathBuf>,
    store_id: Option<String>,
    ingest_url: Option<String>,
    canonical: bool,
    json: bool,
    keep_partials: bool,
    worker_bin: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: fahana-shard --shards N [--config FILE] [--out DIR] \
     [--threads N] [--episodes N] [--seed N] [--parallel-episodes] \
     [--max-attempts N] [--cache-out FILE] [--store DIR] [--store-id ID] \
     [--ingest-url HOST:PORT] [--canonical] [--json] [--keep-partials] \
     [--worker-bin PATH] [--trace-out FILE]"
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        shards: 0,
        config_path: None,
        out_dir: None,
        threads: None,
        episodes: None,
        seed: None,
        parallel_episodes: false,
        max_attempts: 2,
        cache_out: None,
        store_dir: None,
        store_id: None,
        ingest_url: None,
        canonical: false,
        json: false,
        keep_partials: false,
        worker_bin: None,
        trace_out: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        let number = |flag: &str, value: &str| -> Result<usize, String> {
            value
                .parse()
                .map_err(|_| format!("{flag} expects a number, got `{value}`"))
        };
        match arg.as_str() {
            "--shards" => {
                let value = value_of("--shards")?;
                cli.shards = number("--shards", value)?;
            }
            "--config" => cli.config_path = Some(PathBuf::from(value_of("--config")?)),
            "--out" => cli.out_dir = Some(PathBuf::from(value_of("--out")?)),
            "--threads" => {
                let value = value_of("--threads")?;
                cli.threads = Some(number("--threads", value)?);
            }
            "--episodes" => {
                let value = value_of("--episodes")?;
                cli.episodes = Some(number("--episodes", value)?);
            }
            "--seed" => {
                let value = value_of("--seed")?;
                cli.seed = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--seed expects a number, got `{value}`"))?,
                );
            }
            "--parallel-episodes" => cli.parallel_episodes = true,
            "--max-attempts" => {
                let value = value_of("--max-attempts")?;
                cli.max_attempts = number("--max-attempts", value)?;
                if cli.max_attempts == 0 {
                    return Err("--max-attempts must be at least 1".into());
                }
            }
            "--cache-out" => cli.cache_out = Some(PathBuf::from(value_of("--cache-out")?)),
            "--store" => cli.store_dir = Some(PathBuf::from(value_of("--store")?)),
            "--store-id" => {
                // fail now, not after N worker campaigns have run — and the
                // accepted charset is URL-safe, so the id can go into the
                // `POST /ingest?id=` query string verbatim
                let value = value_of("--store-id")?;
                if value.is_empty()
                    || !value
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
                {
                    return Err(format!(
                        "--store-id must use letters, digits, `-`, `_` or `.`, got `{value}`"
                    ));
                }
                cli.store_id = Some(value.to_string());
            }
            "--ingest-url" => cli.ingest_url = Some(value_of("--ingest-url")?.to_string()),
            "--canonical" => cli.canonical = true,
            "--json" => cli.json = true,
            "--keep-partials" => cli.keep_partials = true,
            "--worker-bin" => cli.worker_bin = Some(PathBuf::from(value_of("--worker-bin")?)),
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value_of("--trace-out")?)),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if cli.shards == 0 {
        return Err(format!("--shards N (N >= 1) is required\n{}", usage()));
    }
    Ok(cli)
}

/// The `fahana-campaign` binary workers run: `--worker-bin`, then the
/// `FAHANA_CAMPAIGN_BIN` environment variable, then the sibling of this
/// executable.
fn worker_binary(cli: &Cli) -> Result<PathBuf, String> {
    if let Some(path) = &cli.worker_bin {
        return Ok(path.clone());
    }
    if let Some(path) = std::env::var_os("FAHANA_CAMPAIGN_BIN") {
        return Ok(PathBuf::from(path));
    }
    let me = std::env::current_exe().map_err(|e| format!("cannot locate this binary: {e}"))?;
    let sibling = me.with_file_name(format!("fahana-campaign{}", std::env::consts::EXE_SUFFIX));
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "no fahana-campaign next to {} — pass --worker-bin or set FAHANA_CAMPAIGN_BIN",
            me.display()
        ))
    }
}

/// How a task's share of the plan is expressed on the worker CLI.
enum TaskMode {
    /// `--shard I/N`: the worker re-derives the hash slice itself.
    Hash { index: usize, total: usize },
    /// `--cells FILE`: an explicit assignment file the coordinator wrote.
    Cells { path: PathBuf },
}

/// One schedulable unit of work: a set of plan cells, the CLI form that
/// expresses it, and how many attempts it has consumed.
struct Task {
    /// Directory-safe label (`shard-2`, `rebalance-1`).
    label: String,
    mode: TaskMode,
    /// The plan cells this task must cover, in plan order.
    cells: Vec<String>,
    /// Attempts consumed so far (successful or not).
    attempts: usize,
}

/// A live worker attempt: the child process, its attempt directory, and
/// the thread draining its stderr (so a chatty worker can never block on
/// a full pipe while the coordinator polls other children).
struct Running {
    task: Task,
    dir: PathBuf,
    child: Child,
    stderr: std::thread::JoinHandle<String>,
    /// When this attempt was spawned — the per-attempt duration reported
    /// on reap is spawn-to-exit, not just child CPU time.
    started: Instant,
}

/// Kills and reaps every still-running worker (used when the coordinator
/// bails hard: no orphan may keep burning CPU on a campaign nobody will
/// merge).
fn kill_all(running: &mut [Running]) {
    for run in running.iter_mut() {
        run.child.kill().ok();
        run.child.wait().ok();
    }
}

/// Everything a spawn needs that does not vary per task.
struct Scheduler<'a> {
    worker_bin: &'a Path,
    shards_dir: &'a Path,
    cli: &'a Cli,
    telemetry: &'a Telemetry,
}

impl Scheduler<'_> {
    /// Spawns one attempt of `task` into a fresh per-attempt directory.
    /// Fresh directories are what makes "merge exactly once" structural:
    /// artifacts of a failed attempt — even complete ones — are never in
    /// the directory a later attempt reports from.
    fn spawn(&self, task: Task) -> Result<Running, String> {
        let attempt_dir =
            self.shards_dir
                .join(format!("{}.attempt-{}", task.label, task.attempts + 1));
        std::fs::create_dir_all(&attempt_dir)
            .map_err(|e| format!("cannot create {}: {e}", attempt_dir.display()))?;
        let mut command = Command::new(self.worker_bin);
        match &task.mode {
            TaskMode::Hash { index, total } => {
                command
                    .arg("--shard")
                    .arg(format!("{}/{}", index + 1, total));
            }
            TaskMode::Cells { path } => {
                command.arg("--cells").arg(path);
            }
        }
        command
            .arg("--out")
            .arg(&attempt_dir)
            .arg("--cache-out")
            .arg(attempt_dir.join("cache.fsnap"));
        if let Some(path) = &self.cli.config_path {
            command.arg("--config").arg(path);
        }
        if let Some(threads) = self.cli.threads {
            command.arg("--threads").arg(threads.to_string());
        }
        if let Some(episodes) = self.cli.episodes {
            command.arg("--episodes").arg(episodes.to_string());
        }
        if let Some(seed) = self.cli.seed {
            command.arg("--seed").arg(seed.to_string());
        }
        if self.cli.parallel_episodes {
            command.arg("--parallel-episodes");
        }
        let mut child = command
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", self.worker_bin.display()))?;
        let mut pipe = child.stderr.take().expect("stderr is piped");
        let stderr = std::thread::spawn(move || {
            let mut text = String::new();
            std::io::Read::read_to_string(&mut pipe, &mut text).ok();
            text
        });
        Ok(Running {
            task,
            dir: attempt_dir,
            child,
            stderr,
            // fahana-lint: allow(wall-clock) attempt age is used for stderr context only; merged artifacts stay byte-identical
            started: Instant::now(),
        })
    }

    /// Validates and loads one finished attempt's artifacts. Any failure
    /// here — missing or unparsable report (a worker killed mid-write, or
    /// one that lied about succeeding), wrong cell coverage, unreadable
    /// snapshot — marks the *attempt* failed and retriable; it is never a
    /// merge error.
    fn collect(&self, task: &Task, dir: &Path) -> Result<(CampaignReport, CacheSnapshot), String> {
        let report_path = dir.join("campaign.json");
        let text = std::fs::read_to_string(&report_path)
            .map_err(|e| format!("cannot read {}: {e}", report_path.display()))?;
        let report = CampaignReport::parse(&text)
            .map_err(|e| format!("report {}: {e}", report_path.display()))?;
        // sorted lists, not sets: a corrupt report that names the same
        // scenario twice must fail *this* check (and be retried), not
        // survive into the final merge as a fatal duplicate-scenario error
        let mut produced = report.scenario_names();
        produced.sort_unstable();
        let mut expected: Vec<&str> = task.cells.iter().map(String::as_str).collect();
        expected.sort_unstable();
        if produced != expected {
            return Err(format!(
                "report {} covers cells {:?}, expected {:?}",
                report_path.display(),
                produced,
                expected
            ));
        }
        let snapshot_path = dir.join("cache.fsnap");
        let snapshot = CacheSnapshot::load(&snapshot_path)
            .map_err(|e| format!("cannot load {}: {e}", snapshot_path.display()))?;
        Ok((report, snapshot))
    }

    /// Runs `tasks` to completion: all attempts run in parallel, children
    /// are reaped in *completion* order, and a failed task is respawned
    /// the moment it is reaped — its retry runs concurrently with the
    /// still-running siblings, so one slow shard never delays another
    /// shard's recovery — until it succeeds or exhausts `--max-attempts`.
    /// Each task that succeeds has its artifacts merged exactly once,
    /// right when its winning attempt is collected. Returns the tasks
    /// that never succeeded.
    ///
    /// `wave` names this scheduling round (`initial`, `rebalance`) in the
    /// trace sink's `shard_wave` span.
    fn drive(
        &self,
        wave: &str,
        tasks: Vec<Task>,
        parts: &mut Vec<CampaignReport>,
        merged_snapshot: &mut CacheSnapshot,
    ) -> Result<Vec<Task>, String> {
        // fahana-lint: allow(wall-clock) wave timing feeds the trace side channel; merged artifacts stay byte-identical
        let wave_started = Instant::now();
        let wave_tasks = tasks.len();
        let mut attempts_reaped = 0u64;
        let mut exhausted = Vec::new();
        let mut running: Vec<Running> = Vec::with_capacity(tasks.len());
        for task in tasks {
            match self.spawn(task) {
                Ok(run) => running.push(run),
                Err(message) => {
                    // a binary that cannot even spawn will not spawn
                    // better on retry: reap what is running and bail
                    kill_all(&mut running);
                    return Err(message);
                }
            }
        }
        while !running.is_empty() {
            // poll for any finished child (a wait on one specific child
            // would block recovery behind an arbitrary sibling)
            let finished = running.iter_mut().position(|run| {
                // a try_wait error means the child is unreachable; reap
                // it now and let wait() below surface the error
                !matches!(run.child.try_wait(), Ok(None))
            });
            let Some(index) = finished else {
                std::thread::sleep(std::time::Duration::from_millis(25));
                continue;
            };
            let mut run = running.swap_remove(index);
            run.task.attempts += 1;
            let duration = run.started.elapsed();
            let status = run.child.wait();
            let stderr = run.stderr.join().unwrap_or_default();
            let failure = match status {
                Err(e) => Some(format!("wait failed: {e}")),
                Ok(status) if !status.success() => {
                    Some(format!("exited with {}\n{}", status, stderr.trim_end()))
                }
                Ok(_) => match self.collect(&run.task, &run.dir) {
                    Ok((report, snapshot)) => {
                        let outcome = merged_snapshot.merge(&snapshot);
                        if outcome.conflicts > 0 {
                            // deterministic evaluation means identical
                            // keys carry identical values; a conflict
                            // is a fingerprint collision or build skew
                            eprintln!(
                                "warning: {} snapshot had {} conflicting entries \
                                 (kept first sighting)",
                                run.task.label, outcome.conflicts
                            );
                        }
                        parts.push(report);
                        None
                    }
                    Err(message) => Some(message),
                },
            };
            attempts_reaped += 1;
            let outcome = match &failure {
                None => "ok",
                Some(_) if run.task.attempts < self.cli.max_attempts => "retry",
                Some(_) => "exhausted",
            };
            let dur_ms = duration.as_secs_f64() * 1e3;
            // one structured line per attempt, success or not: retries and
            // rebalances are visible live on stderr, not only in the trace
            eprintln!(
                "attempt: task={} attempt={}/{} outcome={outcome} duration_ms={dur_ms:.1}",
                run.task.label, run.task.attempts, self.cli.max_attempts
            );
            if let Some(trace) = self.telemetry.trace() {
                trace.span(
                    "shard_attempt",
                    dur_ms,
                    vec![
                        ("task".into(), Json::str(&run.task.label)),
                        ("attempt".into(), Json::Int(run.task.attempts as i64)),
                        ("outcome".into(), Json::str(outcome)),
                        ("cells".into(), Json::Int(run.task.cells.len() as i64)),
                    ],
                );
            }
            let Some(message) = failure else { continue };
            let task = run.task;
            if task.attempts < self.cli.max_attempts {
                eprintln!(
                    "warning: {} attempt {} of {} failed, retrying: {message}",
                    task.label, task.attempts, self.cli.max_attempts
                );
                match self.spawn(task) {
                    Ok(retry) => running.push(retry),
                    Err(message) => {
                        kill_all(&mut running);
                        return Err(message);
                    }
                }
            } else {
                eprintln!(
                    "warning: {} failed all {} attempts, giving it up: {message}",
                    task.label, self.cli.max_attempts
                );
                exhausted.push(task);
            }
        }
        if let Some(trace) = self.telemetry.trace() {
            trace.span(
                "shard_wave",
                wave_started.elapsed().as_secs_f64() * 1e3,
                vec![
                    ("wave".into(), Json::str(wave)),
                    ("tasks".into(), Json::Int(wave_tasks as i64)),
                    ("attempts".into(), Json::Int(attempts_reaped as i64)),
                    ("exhausted".into(), Json::Int(exhausted.len() as i64)),
                ],
            );
        }
        Ok(exhausted)
    }
}

/// Splits `cells` (plan order) round-robin across `workers` replacement
/// assignments, dropping empty ones.
fn rebalance_groups(cells: &[String], workers: usize) -> Vec<Vec<String>> {
    let workers = workers.max(1);
    let mut groups: Vec<Vec<String>> = vec![Vec::new(); workers];
    for (index, cell) in cells.iter().enumerate() {
        groups[index % workers].push(cell.clone());
    }
    groups.retain(|group| !group.is_empty());
    groups
}

fn run(cli: Cli) -> Result<(), String> {
    let config = match &cli.config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let mut config = CampaignConfig::parse(&text).map_err(|e| e.to_string())?;
            apply_overrides(&mut config, &cli);
            config
        }
        None => {
            let mut config = CampaignConfig::default();
            apply_overrides(&mut config, &cli);
            config
        }
    };
    // the coordinator derives the plan to know the merge order, to fail
    // fast on an invalid grid, and to know every task's cells (what
    // retry verification and rebalancing schedule over); workers
    // re-derive the scenarios themselves
    let plan = CampaignPlan::new(config).map_err(|e| e.to_string())?;
    if !plan.config().use_cache {
        // workers are always asked for --cache-out, which a disabled cache
        // cannot honor; fail here instead of N times in the workers
        return Err(
            "sharded runs need the evaluation cache (`cache = off` in the config \
                    conflicts with merging per-shard snapshots)"
                .into(),
        );
    }
    let worker_bin = worker_binary(&cli)?;
    // the trace sink is a side channel: merged artifacts are byte-identical
    // with or without it (pinned by tests/determinism.rs)
    let telemetry = match &cli.trace_out {
        Some(path) => Telemetry::with_trace(path)
            .map_err(|e| format!("cannot create trace sink {}: {e}", path.display()))?,
        None => Telemetry::disabled(),
    };

    let work_dir = match &cli.out_dir {
        Some(dir) => dir.clone(),
        None => std::env::temp_dir().join(format!("fahana-shard-{}", std::process::id())),
    };
    let shards_dir = work_dir.join("shards");
    std::fs::create_dir_all(&shards_dir)
        .map_err(|e| format!("cannot create {}: {e}", shards_dir.display()))?;

    let scheduler = Scheduler {
        worker_bin: &worker_bin,
        shards_dir: &shards_dir,
        cli: &cli,
        telemetry: &telemetry,
    };
    let order = plan.order();
    let initial: Vec<Task> = (0..cli.shards)
        .map(|index| {
            let spec = fahana_runtime::ShardSpec::new(index, cli.shards)
                .expect("index < shards by construction");
            Task {
                label: format!("shard-{}", index + 1),
                mode: TaskMode::Hash {
                    index,
                    total: cli.shards,
                },
                cells: plan.slice(spec).into_iter().map(|s| s.name).collect(),
                attempts: 0,
            }
        })
        .collect();

    eprintln!(
        "fanning {} scenarios out across {} worker processes ({}, up to {} attempts each)",
        plan.len(),
        cli.shards,
        worker_bin.display(),
        cli.max_attempts,
    );
    let mut parts: Vec<CampaignReport> = Vec::with_capacity(cli.shards);
    let mut merged_snapshot = CacheSnapshot::new();
    let exhausted = scheduler.drive("initial", initial, &mut parts, &mut merged_snapshot)?;

    if !exhausted.is_empty() {
        // every task that succeeded contributed exactly one part; its
        // artifacts are salvaged as-is and its cells never re-run
        let survivors = parts.len();
        let unfinished: BTreeSet<&str> = exhausted
            .iter()
            .flat_map(|task| task.cells.iter().map(String::as_str))
            .collect();
        let unfinished: Vec<String> = order
            .iter()
            .filter(|name| unfinished.contains(name.as_str()))
            .cloned()
            .collect();
        let groups = rebalance_groups(&unfinished, survivors);
        eprintln!(
            "rebalancing {} unfinished cells across {} replacement workers \
             (salvaged {} completed shards)",
            unfinished.len(),
            groups.len(),
            survivors,
        );
        if let Some(trace) = telemetry.trace() {
            trace.event(
                "rebalance",
                vec![
                    (
                        "unfinished_cells".into(),
                        Json::Int(unfinished.len() as i64),
                    ),
                    ("replacements".into(), Json::Int(groups.len() as i64)),
                    ("salvaged".into(), Json::Int(survivors as i64)),
                ],
            );
        }
        let mut replacements = Vec::new();
        for (index, group) in groups.into_iter().enumerate() {
            let label = format!("rebalance-{}", index + 1);
            let assignment =
                CellAssignment::new(group.clone()).expect("plan-order groups have no duplicates");
            let path = shards_dir.join(format!("{label}.cells"));
            write_atomic(&path, assignment.render())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            replacements.push(Task {
                label,
                mode: TaskMode::Cells { path },
                cells: group,
                attempts: 0,
            });
        }
        let failed =
            scheduler.drive("rebalance", replacements, &mut parts, &mut merged_snapshot)?;
        if !failed.is_empty() {
            let never: BTreeSet<&str> = failed
                .iter()
                .flat_map(|task| task.cells.iter().map(String::as_str))
                .collect();
            let never: Vec<&str> = order
                .iter()
                .map(String::as_str)
                .filter(|name| never.contains(name))
                .collect();
            return Err(format!(
                "{} cells never completed after {} attempts and rebalancing: {}",
                never.len(),
                cli.max_attempts,
                never.join(", ")
            ));
        }
    }

    let mut merged =
        CampaignReport::merge(&parts, &order).map_err(|e| format!("merge failed: {e}"))?;
    // the per-part sum double-counts entries shards evaluated in common;
    // the merged snapshot knows the true distinct count
    merged.cache_entries = merged_snapshot.len() as u64;
    if cli.canonical {
        merged = merged.canonical();
    }
    let merged_json = merged.to_json().render();

    // the merged report only lands on disk when the caller asked for an
    // output directory; publish-only runs keep it in memory (advertising
    // a temp path that the cleanup below would delete again helps nobody)
    match &cli.out_dir {
        Some(_) => {
            let campaign_path = work_dir.join("campaign.json");
            write_atomic(&campaign_path, &merged_json)
                .map_err(|e| format!("cannot write {}: {e}", campaign_path.display()))?;
            eprintln!(
                "merged {} partial reports ({} scenarios) into {}",
                parts.len(),
                merged.scenarios.len(),
                campaign_path.display()
            );
        }
        None => eprintln!(
            "merged {} partial reports ({} scenarios)",
            parts.len(),
            merged.scenarios.len(),
        ),
    }

    if let Some(path) = &cli.cache_out {
        merged_snapshot
            .save(path)
            .map_err(|e| format!("cannot save merged cache snapshot: {e}"))?;
        eprintln!(
            "merged cache snapshot: {} entries to {}",
            merged_snapshot.len(),
            path.display()
        );
    }

    let id = cli
        .store_id
        .clone()
        .unwrap_or_else(|| format!("sharded-seed{}", plan.config().seed));
    if let Some(dir) = &cli.store_dir {
        let store = ArtifactStore::open(dir).map_err(|e| e.to_string())?;
        // suffix on collision (repeated nightly runs): never discard a
        // whole N-worker campaign over a taken id
        let stored = store
            .ingest_with_suffix(&id, &merged_json)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "ingested merged campaign as `{}` into the artifact store at {}",
            stored.id,
            store.root().display()
        );
    }
    if let Some(url) = &cli.ingest_url {
        // one keep-alive connection carries the publish (with the same
        // duplicate-id suffix fallback as the --store path — a repeated
        // nightly publish must not discard a whole N-worker campaign over
        // a 409) and its verification read-back
        let mut stream = TcpStream::connect(url.as_str())
            .map_err(|e| format!("cannot connect to {url}: {e}"))?;
        let mut suffix = 1;
        let published_id = loop {
            let attempt_id = if suffix == 1 {
                id.clone()
            } else {
                format!("{id}-{suffix}")
            };
            let target = format!("/ingest?id={attempt_id}");
            let (status, body) =
                client_roundtrip(&mut stream, "POST", &target, merged_json.as_bytes())
                    .map_err(|e| format!("POST {target} to {url}: {e}"))?;
            match status {
                201 => break attempt_id,
                409 => suffix += 1,
                _ => return Err(format!("POST {target} to {url} answered {status}: {body}")),
            }
        };
        let (status, body) = client_roundtrip(&mut stream, "GET", "/healthz", b"")
            .map_err(|e| format!("GET /healthz on {url}: {e}"))?;
        let campaigns = Json::parse(&body)
            .ok()
            .and_then(|health| health.get("campaigns").and_then(Json::as_i64))
            .unwrap_or(-1);
        eprintln!(
            "published merged campaign as `{published_id}` to {url} \
             (healthz {status}: {campaigns} campaigns served)"
        );
    }

    if !cli.keep_partials {
        std::fs::remove_dir_all(&shards_dir).ok();
        if cli.out_dir.is_none() {
            // nobody asked for the merged files on disk; do not leak a
            // per-pid temp directory on every publish-only invocation
            std::fs::remove_dir_all(&work_dir).ok();
        }
    }
    if cli.json {
        println!("{merged_json}");
    }
    Ok(())
}

fn apply_overrides(config: &mut CampaignConfig, cli: &Cli) {
    if let Some(threads) = cli.threads {
        config.threads = threads;
    }
    if let Some(episodes) = cli.episodes {
        config.episodes = episodes;
    }
    if let Some(seed) = cli.seed {
        config.seed = seed;
    }
    if cli.parallel_episodes {
        config.parallel_episodes = true;
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fahana-shard: {message}");
            ExitCode::FAILURE
        }
    }
}
