//! `fahana-loadgen` — a closed-loop load generator for `fahana-serve`.
//!
//! ```text
//! fahana-loadgen --addr HOST:PORT [--duration-secs N] [--workers N]
//!                [--out FILE] [--seed N]
//! ```
//!
//! Each worker holds one kept-alive connection (reconnecting if the
//! server drops it) and issues requests back to back — a closed loop, so
//! offered load tracks what the server can absorb instead of piling up.
//! Targets are drawn from a weighted mix of the read endpoints; the mix
//! and the per-worker draw sequence are fixed by `--seed`, so two runs
//! against the same store offer the same request stream.
//!
//! Results land in a JSON report (default `BENCH_serve.json`): request
//! and error counts, throughput, and exact latency percentiles
//! (p50/p90/p99/max) computed over every sample — no histogram buckets,
//! no estimation.

use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fahana_runtime::serve::http::client_exchange;
use fahana_runtime::{write_atomic, Json};

/// The weighted endpoint mix, roughly matching a dashboard-plus-planner
/// read workload. Weights sum to 100.
const MIX: &[(&str, u32)] = &[
    ("/query?device=raspberry_pi_4&max_latency_ms=50", 20),
    ("/query?device=odroid_xu4", 15),
    ("/catalog", 25),
    ("/leaderboard/raspberry_pi_4?top=5", 20),
    ("/campaigns", 10),
    ("/healthz", 10),
];

struct Cli {
    addr: Option<String>,
    duration: Duration,
    workers: usize,
    out: PathBuf,
    seed: u64,
}

fn usage() -> &'static str {
    "usage: fahana-loadgen --addr HOST:PORT [--duration-secs N] [--workers N] [--out FILE] \
     [--seed N]"
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        addr: None,
        duration: Duration::from_secs(5),
        workers: 4,
        out: PathBuf::from("BENCH_serve.json"),
        seed: 42,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--addr" => cli.addr = Some(value_of("--addr")?.to_string()),
            "--duration-secs" => {
                let secs: u64 = value_of("--duration-secs")?
                    .parse()
                    .map_err(|_| "--duration-secs expects a number".to_string())?;
                if secs == 0 {
                    return Err("--duration-secs must be positive".into());
                }
                cli.duration = Duration::from_secs(secs);
            }
            "--workers" => {
                cli.workers = value_of("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a number".to_string())?;
                if cli.workers == 0 {
                    return Err("--workers must be positive".into());
                }
            }
            "--out" => cli.out = PathBuf::from(value_of("--out")?),
            "--seed" => {
                cli.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if cli.addr.is_none() {
        return Err(format!("--addr is required\n{}", usage()));
    }
    Ok(cli)
}

/// What one worker measured: per-endpoint request counts (indexed as
/// [`MIX`]), latency samples in microseconds, and error tallies.
#[derive(Default)]
struct WorkerTally {
    by_endpoint: Vec<u64>,
    latencies_us: Vec<u64>,
    errors: u64,
    errors_5xx: u64,
    /// Connections re-established (the server rotates kept-alive
    /// connections after its per-connection request cap; not an error).
    reconnects: u64,
}

/// A splitmix-style step: deterministic, seedable, and good enough to
/// shuffle an endpoint mix (this is a load pattern, not cryptography).
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let x = (*state >> 29) ^ *state;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Picks a target from the weighted mix.
fn pick(state: &mut u64) -> usize {
    let total: u32 = MIX.iter().map(|(_, weight)| weight).sum();
    let mut draw = (next_rand(state) % total as u64) as u32;
    for (index, (_, weight)) in MIX.iter().enumerate() {
        if draw < *weight {
            return index;
        }
        draw -= weight;
    }
    MIX.len() - 1
}

/// One closed-loop worker: keep one connection alive, fire requests until
/// `stop`, reconnect when the server (legitimately) drops the connection.
fn worker_loop(addr: &str, seed: u64, stop: &AtomicBool) -> WorkerTally {
    let mut tally = WorkerTally {
        by_endpoint: vec![0; MIX.len()],
        ..WorkerTally::default()
    };
    let mut state = seed;
    let mut connection: Option<TcpStream> = None;
    while !stop.load(Ordering::Acquire) {
        let stream = match &mut connection {
            Some(stream) => stream,
            None => match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
                    // measure the server, not Nagle + delayed-ACK
                    stream.set_nodelay(true).ok();
                    connection.insert(stream)
                }
                Err(_) => {
                    tally.errors += 1;
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
            },
        };
        let choice = pick(&mut state);
        let started = Instant::now();
        match client_exchange(stream, "GET", MIX[choice].0, &[]) {
            Ok(response) => {
                tally.by_endpoint[choice] += 1;
                tally
                    .latencies_us
                    .push(started.elapsed().as_micros() as u64);
                if response.status >= 500 {
                    tally.errors_5xx += 1;
                } else if response.status >= 400 {
                    tally.errors += 1;
                }
                // the server announces rotation (per-connection request
                // cap) on the last response; reconnect without an error
                if response.header("connection") == Some("close") {
                    tally.reconnects += 1;
                    connection = None;
                }
            }
            Err(_) => {
                // connection died under us (timeout, shutdown, reset):
                // the request got no answer, so this one is an error
                tally.errors += 1;
                connection = None;
            }
        }
    }
    tally
}

/// Exact quantile over a sorted sample set (nearest-rank).
fn quantile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64 / 1000.0
}

fn run(cli: Cli) -> Result<(), String> {
    let addr = cli.addr.expect("validated in parse_cli");
    // fail fast (and outside the measured window) if nothing is listening
    TcpStream::connect(&addr).map_err(|e| format!("cannot reach {addr}: {e}"))?;

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let workers: Vec<_> = (0..cli.workers)
        .map(|index| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let seed = cli
                .seed
                .wrapping_add(index as u64)
                .wrapping_mul(0x9E3779B97F4A7C15);
            std::thread::spawn(move || worker_loop(&addr, seed, &stop))
        })
        .collect();
    std::thread::sleep(cli.duration);
    stop.store(true, Ordering::Release);
    let tallies: Vec<WorkerTally> = workers
        .into_iter()
        .map(|worker| worker.join().expect("loadgen worker panicked"))
        .collect();
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|tally| tally.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let requests: u64 = latencies.len() as u64;
    let errors: u64 = tallies.iter().map(|tally| tally.errors).sum();
    let errors_5xx: u64 = tallies.iter().map(|tally| tally.errors_5xx).sum();
    let reconnects: u64 = tallies.iter().map(|tally| tally.reconnects).sum();
    let throughput = requests as f64 / elapsed.as_secs_f64();

    let endpoints = MIX
        .iter()
        .enumerate()
        .map(|(index, (target, weight))| {
            let count: u64 = tallies.iter().map(|tally| tally.by_endpoint[index]).sum();
            Json::Obj(vec![
                ("target".into(), Json::str(*target)),
                ("weight".into(), Json::Int(*weight as i64)),
                ("requests".into(), Json::Int(count as i64)),
            ])
        })
        .collect();

    let report = Json::Obj(vec![
        ("addr".into(), Json::str(addr.clone())),
        ("workers".into(), Json::Int(cli.workers as i64)),
        ("seed".into(), Json::Int(cli.seed as i64)),
        ("duration_secs".into(), Json::Num(elapsed.as_secs_f64())),
        ("requests".into(), Json::Int(requests as i64)),
        ("errors".into(), Json::Int(errors as i64)),
        ("errors_5xx".into(), Json::Int(errors_5xx as i64)),
        ("reconnects".into(), Json::Int(reconnects as i64)),
        ("throughput_rps".into(), Json::Num(throughput)),
        (
            "latency_ms".into(),
            Json::Obj(vec![
                ("p50".into(), Json::Num(quantile_us(&latencies, 0.50))),
                ("p90".into(), Json::Num(quantile_us(&latencies, 0.90))),
                ("p99".into(), Json::Num(quantile_us(&latencies, 0.99))),
                (
                    "max".into(),
                    Json::Num(latencies.last().map_or(0.0, |&us| us as f64 / 1000.0)),
                ),
            ]),
        ),
        ("endpoints".into(), Json::Arr(endpoints)),
    ]);
    write_atomic(&cli.out, report.render().as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", cli.out.display()))?;
    eprintln!(
        "fahana-loadgen: {requests} requests in {:.2}s ({throughput:.0} req/s, {errors} errors, \
         {errors_5xx} 5xx, {reconnects} reconnects) -> {}",
        elapsed.as_secs_f64(),
        cli.out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fahana-loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}
