//! `fahana-loadgen` — a closed-loop load generator for `fahana-serve`.
//!
//! ```text
//! fahana-loadgen --addr HOST:PORT [--duration-secs N] [--workers N]
//!                [--idle-frac F] [--idle-interval-ms MS] [--section NAME]
//!                [--out FILE] [--seed N]
//! ```
//!
//! Each worker holds one kept-alive connection (reconnecting if the
//! server drops it) and issues requests back to back — a closed loop, so
//! offered load tracks what the server can absorb instead of piling up.
//! Targets are drawn from a weighted mix of the read endpoints; the mix
//! and the per-worker draw sequence are fixed by `--seed`, so two runs
//! against the same store offer the same request stream.
//!
//! `--idle-frac` switches that fraction of the workers into *idle-heavy*
//! mode: they keep their connection open but send only one request every
//! `--idle-interval-ms`, modelling the edge-deployment shape the reactor
//! exists for — thousands of mostly-idle keep-alive clients over a tiny
//! worker pool (`--workers` ≫ the server's `--threads`).
//!
//! Results land in a *sectioned* JSON report (default `BENCH_serve.json`,
//! schema `fahana-loadgen/v2`): each run writes its measurements —
//! request/error counts, throughput, exact p50/p90/p99/max latency over
//! every sample (no histogram estimation) — under `--section`, merging
//! with the sections already in the file so a closed-loop burst and a
//! high-concurrency soak can live side by side.

use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fahana_runtime::serve::http::client_exchange;
use fahana_runtime::{write_atomic, Json};

/// The weighted endpoint mix, roughly matching a dashboard-plus-planner
/// read workload. Weights sum to 100.
const MIX: &[(&str, u32)] = &[
    ("/query?device=raspberry_pi_4&max_latency_ms=50", 20),
    ("/query?device=odroid_xu4", 15),
    ("/catalog", 25),
    ("/leaderboard/raspberry_pi_4?top=5", 20),
    ("/campaigns", 10),
    ("/healthz", 10),
];

struct Cli {
    addr: Option<String>,
    duration: Duration,
    workers: usize,
    idle_frac: f64,
    idle_interval: Duration,
    section: String,
    out: PathBuf,
    seed: u64,
}

fn usage() -> &'static str {
    "usage: fahana-loadgen --addr HOST:PORT [--duration-secs N] [--workers N] [--idle-frac F] \
     [--idle-interval-ms MS] [--section NAME] [--out FILE] [--seed N]"
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        addr: None,
        duration: Duration::from_secs(5),
        workers: 4,
        idle_frac: 0.0,
        idle_interval: Duration::from_millis(1000),
        section: "closed_loop".into(),
        out: PathBuf::from("BENCH_serve.json"),
        seed: 42,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--addr" => cli.addr = Some(value_of("--addr")?.to_string()),
            "--duration-secs" => {
                let secs: u64 = value_of("--duration-secs")?
                    .parse()
                    .map_err(|_| "--duration-secs expects a number".to_string())?;
                if secs == 0 {
                    return Err("--duration-secs must be positive".into());
                }
                cli.duration = Duration::from_secs(secs);
            }
            "--workers" => {
                cli.workers = value_of("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a number".to_string())?;
                if cli.workers == 0 {
                    return Err("--workers must be positive".into());
                }
            }
            "--idle-frac" => {
                let frac: f64 = value_of("--idle-frac")?
                    .parse()
                    .map_err(|_| "--idle-frac expects a number".to_string())?;
                if !(0.0..=1.0).contains(&frac) {
                    return Err("--idle-frac must be between 0 and 1".into());
                }
                cli.idle_frac = frac;
            }
            "--idle-interval-ms" => {
                let ms: u64 = value_of("--idle-interval-ms")?
                    .parse()
                    .map_err(|_| "--idle-interval-ms expects a number".to_string())?;
                if ms == 0 {
                    return Err("--idle-interval-ms must be positive".into());
                }
                cli.idle_interval = Duration::from_millis(ms);
            }
            "--section" => {
                let name = value_of("--section")?.to_string();
                if name.is_empty() {
                    return Err("--section must not be empty".into());
                }
                cli.section = name;
            }
            "--out" => cli.out = PathBuf::from(value_of("--out")?),
            "--seed" => {
                cli.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if cli.addr.is_none() {
        return Err(format!("--addr is required\n{}", usage()));
    }
    Ok(cli)
}

/// What one worker measured: per-endpoint request counts (indexed as
/// [`MIX`]), latency samples in microseconds, and error tallies.
#[derive(Default)]
struct WorkerTally {
    by_endpoint: Vec<u64>,
    latencies_us: Vec<u64>,
    errors: u64,
    errors_5xx: u64,
    /// Connections re-established (the server rotates kept-alive
    /// connections after its per-connection request cap; not an error).
    reconnects: u64,
}

/// A splitmix-style step: deterministic, seedable, and good enough to
/// shuffle an endpoint mix (this is a load pattern, not cryptography).
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let x = (*state >> 29) ^ *state;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Picks a target from the weighted mix.
fn pick(state: &mut u64) -> usize {
    let total: u32 = MIX.iter().map(|(_, weight)| weight).sum();
    let mut draw = (next_rand(state) % total as u64) as u32;
    for (index, (_, weight)) in MIX.iter().enumerate() {
        if draw < *weight {
            return index;
        }
        draw -= weight;
    }
    MIX.len() - 1
}

/// One worker: keep one connection alive, fire requests until `stop`,
/// reconnect when the server (legitimately) drops the connection. With
/// `idle_interval` set the worker is idle-heavy: after each request it
/// *holds the connection open* and sleeps out the interval, so it spends
/// almost all of its life as a parked keep-alive connection.
fn worker_loop(
    addr: &str,
    seed: u64,
    idle_interval: Option<Duration>,
    stop: &AtomicBool,
) -> WorkerTally {
    let mut tally = WorkerTally {
        by_endpoint: vec![0; MIX.len()],
        ..WorkerTally::default()
    };
    let mut state = seed;
    let mut connection: Option<TcpStream> = None;
    while !stop.load(Ordering::Acquire) {
        let stream = match &mut connection {
            Some(stream) => stream,
            None => match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
                    // measure the server, not Nagle + delayed-ACK
                    stream.set_nodelay(true).ok();
                    connection.insert(stream)
                }
                Err(_) => {
                    tally.errors += 1;
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
            },
        };
        let choice = pick(&mut state);
        let started = Instant::now();
        match client_exchange(stream, "GET", MIX[choice].0, &[]) {
            Ok(response) => {
                tally.by_endpoint[choice] += 1;
                tally
                    .latencies_us
                    .push(started.elapsed().as_micros() as u64);
                if response.status >= 500 {
                    tally.errors_5xx += 1;
                } else if response.status >= 400 {
                    tally.errors += 1;
                }
                // the server announces rotation (per-connection request
                // cap) on the last response; reconnect without an error
                if response.header("connection") == Some("close") {
                    tally.reconnects += 1;
                    connection = None;
                }
            }
            Err(_) => {
                // connection died under us (timeout, shutdown, reset):
                // the request got no answer, so this one is an error
                tally.errors += 1;
                connection = None;
            }
        }
        if let Some(interval) = idle_interval {
            // sleep in slices so `stop` still ends the run promptly
            let resting = Instant::now();
            while resting.elapsed() < interval && !stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    tally
}

/// Exact quantile over a sorted sample set (nearest-rank).
fn quantile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64 / 1000.0
}

/// Folds this run's section into whatever sections `path` already holds
/// (schema `fahana-loadgen/v2`). A v1 flat report, an unparseable file,
/// or no file at all starts the section map fresh.
fn merged_report(path: &PathBuf, name: &str, section: Json) -> Json {
    let mut sections: Vec<(String, Json)> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .filter(|old| old.get("schema").and_then(Json::as_str) == Some("fahana-loadgen/v2"))
        .and_then(|old| match old.get("sections") {
            Some(Json::Obj(entries)) => Some(entries.clone()),
            _ => None,
        })
        .unwrap_or_default();
    sections.retain(|(existing, _)| existing != name);
    sections.push((name.to_string(), section));
    Json::Obj(vec![
        ("schema".into(), Json::str("fahana-loadgen/v2")),
        ("sections".into(), Json::Obj(sections)),
    ])
}

fn run(cli: Cli) -> Result<(), String> {
    let addr = cli.addr.expect("validated in parse_cli");
    // fail fast (and outside the measured window) if nothing is listening
    TcpStream::connect(&addr).map_err(|e| format!("cannot reach {addr}: {e}"))?;

    // idle-heavy workers model parked keep-alive clients; the rest stay
    // closed-loop. --idle-frac 1 parks everyone (pure concurrency soak).
    let idle_workers = (cli.workers as f64 * cli.idle_frac).round() as usize;
    let idle_workers = idle_workers.min(cli.workers);
    let active_workers = cli.workers - idle_workers;

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let workers: Vec<_> = (0..cli.workers)
        .map(|index| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let seed = cli
                .seed
                .wrapping_add(index as u64)
                .wrapping_mul(0x9E3779B97F4A7C15);
            let idle_interval = (index < idle_workers).then_some(cli.idle_interval);
            std::thread::spawn(move || worker_loop(&addr, seed, idle_interval, &stop))
        })
        .collect();
    std::thread::sleep(cli.duration);
    stop.store(true, Ordering::Release);
    let tallies: Vec<WorkerTally> = workers
        .into_iter()
        .map(|worker| worker.join().expect("loadgen worker panicked"))
        .collect();
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|tally| tally.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let requests: u64 = latencies.len() as u64;
    let errors: u64 = tallies.iter().map(|tally| tally.errors).sum();
    let errors_5xx: u64 = tallies.iter().map(|tally| tally.errors_5xx).sum();
    let reconnects: u64 = tallies.iter().map(|tally| tally.reconnects).sum();
    let throughput = requests as f64 / elapsed.as_secs_f64();

    let endpoints = MIX
        .iter()
        .enumerate()
        .map(|(index, (target, weight))| {
            let count: u64 = tallies.iter().map(|tally| tally.by_endpoint[index]).sum();
            Json::Obj(vec![
                ("target".into(), Json::str(*target)),
                ("weight".into(), Json::Int(*weight as i64)),
                ("requests".into(), Json::Int(count as i64)),
            ])
        })
        .collect();

    let section = Json::Obj(vec![
        ("addr".into(), Json::str(addr.clone())),
        ("workers".into(), Json::Int(cli.workers as i64)),
        ("active_workers".into(), Json::Int(active_workers as i64)),
        ("idle_workers".into(), Json::Int(idle_workers as i64)),
        ("idle_frac".into(), Json::Num(cli.idle_frac)),
        (
            "idle_interval_ms".into(),
            Json::Int(cli.idle_interval.as_millis() as i64),
        ),
        ("seed".into(), Json::Int(cli.seed as i64)),
        ("duration_secs".into(), Json::Num(elapsed.as_secs_f64())),
        ("requests".into(), Json::Int(requests as i64)),
        ("errors".into(), Json::Int(errors as i64)),
        ("errors_5xx".into(), Json::Int(errors_5xx as i64)),
        ("reconnects".into(), Json::Int(reconnects as i64)),
        ("throughput_rps".into(), Json::Num(throughput)),
        (
            "latency_ms".into(),
            Json::Obj(vec![
                ("p50".into(), Json::Num(quantile_us(&latencies, 0.50))),
                ("p90".into(), Json::Num(quantile_us(&latencies, 0.90))),
                ("p99".into(), Json::Num(quantile_us(&latencies, 0.99))),
                (
                    "max".into(),
                    Json::Num(latencies.last().map_or(0.0, |&us| us as f64 / 1000.0)),
                ),
            ]),
        ),
        ("endpoints".into(), Json::Arr(endpoints)),
    ]);
    let report = merged_report(&cli.out, &cli.section, section);
    write_atomic(&cli.out, report.render().as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", cli.out.display()))?;
    eprintln!(
        "fahana-loadgen: [{}] {requests} requests in {:.2}s ({throughput:.0} req/s, {errors} \
         errors, {errors_5xx} 5xx, {reconnects} reconnects, {active_workers} active + \
         {idle_workers} idle workers) -> {}",
        cli.section,
        elapsed.as_secs_f64(),
        cli.out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fahana-loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}
