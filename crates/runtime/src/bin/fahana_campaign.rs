//! `fahana-campaign` — run a FaHaNa scenario grid from a declarative
//! config and emit per-scenario JSON reports.
//!
//! ```text
//! fahana-campaign [--config FILE] [--out DIR] [--threads N]
//!                 [--episodes N] [--seed N] [--no-cache]
//!                 [--cache-in FILE] [--cache-out FILE] [--cache-compact]
//!                 [--store DIR] [--store-id ID] [--shard I/N]
//!                 [--cells FILE] [--canonical] [--parallel-episodes]
//!                 [--trace-out FILE] [--metrics-out FILE]
//!                 [--json] [--print-example]
//! ```
//!
//! Without `--config`, the paper-flavoured default grid runs: 2 devices
//! (Raspberry Pi 4, Odroid XU-4) × 2 reward settings (balanced,
//! fairness-heavy) × freezing on/off = 8 scenarios.
//!
//! `--cache-in` warm-starts the evaluation cache from a snapshot written
//! by a previous `--cache-out`; outcomes stay bit-identical to a cold run,
//! only cheaper. `--cache-compact` additionally GCs the written snapshot:
//! only entries the configured search space actually consulted survive,
//! so a shrunken-but-equivalent snapshot replaces one bloated by old
//! grids. `--store` ingests the campaign report into an artifact store
//! that `fahana-query` can answer questions from.
//!
//! `--shard I/N` runs this process as worker `I` of an `N`-way sharded
//! campaign: only the grid cells the stable name-hash partition assigns
//! to shard `I` execute, and the report/cache snapshot written are the
//! partials the `fahana-shard` coordinator merges. `--cells FILE` is the
//! explicit-assignment worker mode behind fault-tolerant rescheduling:
//! the file names the exact plan cells to run (one per line, `#`
//! comments allowed), which is how a coordinator hands a dead shard's
//! unfinished cells to a replacement worker. `--canonical` emits the
//! deterministic projection of reports (wall-clock and cache counters
//! zeroed), which is what makes single-process and merged sharded reports
//! diffable byte-for-byte.
//!
//! All report writes are staged to a unique temporary file and renamed
//! into place, so a worker killed at any instant never leaves a
//! partially written `campaign.json` for a retrying coordinator to
//! misread.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use fahana_runtime::{
    write_atomic, ArtifactStore, CacheSnapshot, CampaignConfig, CampaignEngine, CampaignPlan,
    CampaignReport, CellAssignment, EvalCache, ShardAssignment, ShardSpec, Telemetry,
};

struct Cli {
    config_path: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    threads: Option<usize>,
    episodes: Option<usize>,
    seed: Option<u64>,
    no_cache: bool,
    cache_in: Option<PathBuf>,
    cache_out: Option<PathBuf>,
    cache_compact: bool,
    store_dir: Option<PathBuf>,
    store_id: Option<String>,
    shard: Option<ShardSpec>,
    cells: Option<PathBuf>,
    canonical: bool,
    parallel_episodes: bool,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    json: bool,
    print_example: bool,
}

fn usage() -> &'static str {
    "usage: fahana-campaign [--config FILE] [--out DIR] [--threads N] \
     [--episodes N] [--seed N] [--no-cache] [--cache-in FILE] \
     [--cache-out FILE] [--cache-compact] [--store DIR] [--store-id ID] \
     [--shard I/N] [--cells FILE] [--canonical] [--parallel-episodes] \
     [--trace-out FILE] [--metrics-out FILE] [--json] [--print-example]"
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        config_path: None,
        out_dir: None,
        threads: None,
        episodes: None,
        seed: None,
        no_cache: false,
        cache_in: None,
        cache_out: None,
        cache_compact: false,
        store_dir: None,
        store_id: None,
        shard: None,
        cells: None,
        canonical: false,
        parallel_episodes: false,
        trace_out: None,
        metrics_out: None,
        json: false,
        print_example: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--config" => cli.config_path = Some(PathBuf::from(value_of("--config")?)),
            "--out" => cli.out_dir = Some(PathBuf::from(value_of("--out")?)),
            "--threads" => {
                cli.threads = Some(
                    value_of("--threads")?
                        .parse()
                        .map_err(|_| "--threads expects a number".to_string())?,
                )
            }
            "--episodes" => {
                cli.episodes = Some(
                    value_of("--episodes")?
                        .parse()
                        .map_err(|_| "--episodes expects a number".to_string())?,
                )
            }
            "--seed" => {
                cli.seed = Some(
                    value_of("--seed")?
                        .parse()
                        .map_err(|_| "--seed expects a number".to_string())?,
                )
            }
            "--no-cache" => cli.no_cache = true,
            "--cache-in" => cli.cache_in = Some(PathBuf::from(value_of("--cache-in")?)),
            "--cache-out" => cli.cache_out = Some(PathBuf::from(value_of("--cache-out")?)),
            "--cache-compact" => cli.cache_compact = true,
            "--shard" => {
                let value = value_of("--shard")?;
                cli.shard =
                    Some(value.parse().map_err(|_| {
                        format!("--shard expects I/N with 1 <= I <= N, got `{value}`")
                    })?);
            }
            "--cells" => cli.cells = Some(PathBuf::from(value_of("--cells")?)),
            "--canonical" => cli.canonical = true,
            "--store" => cli.store_dir = Some(PathBuf::from(value_of("--store")?)),
            "--store-id" => {
                // fail now, not after the campaign has run for hours
                let value = value_of("--store-id")?;
                if value.is_empty()
                    || !value
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
                {
                    return Err(format!(
                        "--store-id must use letters, digits, `-`, `_` or `.`, got `{value}`"
                    ));
                }
                cli.store_id = Some(value.to_string());
            }
            "--parallel-episodes" => cli.parallel_episodes = true,
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value_of("--trace-out")?)),
            "--metrics-out" => cli.metrics_out = Some(PathBuf::from(value_of("--metrics-out")?)),
            "--json" => cli.json = true,
            "--print-example" => cli.print_example = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if cli.shard.is_some() && cli.cells.is_some() {
        return Err(format!(
            "--shard and --cells both assign this worker's cells; pass one\n{}",
            usage()
        ));
    }
    Ok(cli)
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Where an injected test crash strikes (see [`injected_fail_point`]).
enum FailPoint {
    /// Die before any work — the common "worker never came up" failure.
    Spawn,
    /// Finish the run, write every artifact, then exit non-zero — the
    /// nasty case where a retried shard's first attempt left complete
    /// artifacts behind and a naive coordinator would merge them twice.
    AfterWrite,
    /// Write a truncated `campaign.json` and claim success — what a
    /// pre-atomic-write worker killed mid-write used to leave behind.
    TornReport,
}

/// Test-only crash injection for the fault-tolerance suite (see
/// `tests/shard_cli.rs` and the CI injected-failure smoke run). Inert
/// unless `FAHANA_TEST_FAIL_SHARD` is set:
///
/// * `FAHANA_TEST_FAIL_SHARD` — comma-separated targets: a 1-based hash
///   shard index (crashes the matching `--shard I/N` worker) and/or the
///   word `cells` (crashes any `--cells` worker);
/// * `FAHANA_TEST_FAIL_MARKER` — fail once: the first matching worker to
///   create this marker file crashes, later attempts run clean;
/// * `FAHANA_TEST_FAIL_POINT` — `spawn` (default), `after-write`, or
///   `torn-report`.
fn injected_fail_point(cli: &Cli) -> Option<FailPoint> {
    let targets = std::env::var("FAHANA_TEST_FAIL_SHARD").ok()?;
    let matched = targets.split(',').map(str::trim).any(|target| match cli {
        Cli {
            shard: Some(spec), ..
        } => target == (spec.index() + 1).to_string(),
        Cli { cells: Some(_), .. } => target == "cells",
        _ => false,
    });
    if !matched {
        return None;
    }
    if let Ok(marker) = std::env::var("FAHANA_TEST_FAIL_MARKER") {
        // fail-once semantics: only the attempt that wins the marker file
        // crashes; create_new makes the claim atomic across racing workers
        if std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&marker)
            .is_err()
        {
            return None;
        }
    }
    match std::env::var("FAHANA_TEST_FAIL_POINT").as_deref() {
        Ok("after-write") => Some(FailPoint::AfterWrite),
        Ok("torn-report") => Some(FailPoint::TornReport),
        _ => Some(FailPoint::Spawn),
    }
}

fn run(cli: Cli) -> Result<(), String> {
    if cli.print_example {
        print!("{}", CampaignConfig::example());
        return Ok(());
    }

    let mut config = match &cli.config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            CampaignConfig::parse(&text).map_err(|e| e.to_string())?
        }
        None => CampaignConfig::default(),
    };
    if let Some(threads) = cli.threads {
        config.threads = threads;
    }
    if let Some(episodes) = cli.episodes {
        config.episodes = episodes;
    }
    if let Some(seed) = cli.seed {
        config.seed = seed;
    }
    if cli.no_cache {
        config.use_cache = false;
    }
    if cli.parallel_episodes {
        config.parallel_episodes = true;
    }
    // check the *effective* setting: the cache can also be disabled by
    // `cache = off` in the config file, and a snapshot absorbed into a
    // disabled cache would silently never be consulted
    if !config.use_cache && (cli.cache_in.is_some() || cli.cache_out.is_some()) {
        return Err(
            "the evaluation cache is disabled (--no-cache or `cache = off`), \
             which conflicts with --cache-in/--cache-out"
                .into(),
        );
    }
    if cli.cache_compact && (cli.cache_in.is_none() || cli.cache_out.is_none()) {
        return Err(
            "--cache-compact garbage-collects a snapshot through a run, \
             so it needs both --cache-in (what to compact) and --cache-out \
             (where the compacted snapshot goes)"
                .into(),
        );
    }

    // compaction tracks which entries the run consults; that tracking is
    // what lets the written snapshot drop everything the configured grid
    // no longer reaches
    let cache = Arc::new(if cli.cache_compact {
        EvalCache::with_tracking()
    } else {
        EvalCache::new()
    });
    if let Some(path) = &cli.cache_in {
        let snapshot = CacheSnapshot::load(path)
            .map_err(|e| format!("cannot load {}: {e}", path.display()))?;
        let absorbed = cache.absorb(&snapshot);
        eprintln!(
            "warm start: absorbed {absorbed} of {} cached evaluations from {}",
            snapshot.len(),
            path.display()
        );
    }

    let fail_point = injected_fail_point(&cli);
    if matches!(fail_point, Some(FailPoint::Spawn)) {
        return Err("injected test failure (FAHANA_TEST_FAIL_SHARD) before any work".into());
    }
    if matches!(fail_point, Some(FailPoint::TornReport)) {
        // simulate a pre-atomic-write worker killed mid-write: a torn
        // campaign.json on disk and a successful exit code — the
        // coordinator must treat the unparsable report as a failed
        // attempt, never as merge input
        if let Some(dir) = &cli.out_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            std::fs::write(dir.join("campaign.json"), br#"{"threads":2,"wall_cl"#)
                .map_err(|e| e.to_string())?;
        }
        return Ok(());
    }

    let plan = CampaignPlan::new(config).map_err(|e| e.to_string())?;
    let assignment = match (cli.shard, &cli.cells) {
        (Some(shard), None) => Some(ShardAssignment::Hash(shard)),
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let cells = CellAssignment::parse(&text)
                .map_err(|e| format!("cell assignment {}: {e}", path.display()))?;
            Some(ShardAssignment::Cells(cells))
        }
        (None, None) => None,
        (Some(_), Some(_)) => unreachable!("rejected by parse_cli"),
    };
    let scenarios = match &assignment {
        Some(assignment) => {
            let slice = plan
                .slice_assignment(assignment)
                .map_err(|e| e.to_string())?;
            eprintln!(
                "{assignment}: running {} of {} scenarios",
                slice.len(),
                plan.len()
            );
            slice
        }
        None => plan.scenarios().to_vec(),
    };
    let mut engine = CampaignEngine::new(plan.config().clone()).map_err(|e| e.to_string())?;
    // telemetry is a pure side channel: with or without it, every report
    // and snapshot byte below is identical (pinned by tests/determinism.rs)
    let telemetry = match &cli.trace_out {
        Some(path) => Telemetry::with_trace(path)
            .map_err(|e| format!("cannot create trace sink {}: {e}", path.display()))?,
        None => Telemetry::disabled(),
    };
    engine.set_telemetry(telemetry);
    eprintln!(
        "running {} scenarios on {} worker threads (cache {}, episode batching {})",
        scenarios.len(),
        engine.threads(),
        if engine.config().use_cache {
            "on"
        } else {
            "off"
        },
        if engine.config().parallel_episodes {
            "pooled"
        } else {
            "inline"
        },
    );
    let outcome = engine
        .run_scenarios(scenarios, Arc::clone(&cache))
        .map_err(|e| e.to_string())?;

    eprintln!(
        "{:<40} {:>7} {:>7} {:>9} {:>9} {:>8}",
        "scenario", "valid%", "best R", "wall ms", "hit-rate", "entries"
    );
    for scenario in &outcome.scenarios {
        let best = scenario
            .outcome
            .best
            .as_ref()
            .map(|b| format!("{:.3}", b.record.reward))
            .unwrap_or_else(|| "-".into());
        eprintln!(
            "{:<40} {:>6.1}% {:>7} {:>9.1} {:>8.1}% {:>8}",
            scenario.scenario.name,
            scenario.outcome.valid_ratio * 100.0,
            best,
            scenario.wall_clock.as_secs_f64() * 1e3,
            scenario.cache.hit_rate() * 100.0,
            scenario.cache.hits + scenario.cache.misses,
        );
    }
    eprintln!(
        "campaign: {:.1} ms wall-clock, cache hit-rate {:.1}% over {} lookups ({} entries)",
        outcome.wall_clock.as_secs_f64() * 1e3,
        outcome.cache.hit_rate() * 100.0,
        outcome.cache.hits + outcome.cache.misses,
        outcome.cache_entries,
    );
    eprintln!(
        "cache: {} hits, {} misses ({:.1}% hit-rate), {} entries, {} absorbed from snapshots",
        outcome.cache.hits,
        outcome.cache.misses,
        outcome.cache.hit_rate() * 100.0,
        outcome.cache_entries,
        cache.absorbed(),
    );

    // one typed report is the source for every emission; --canonical
    // swaps in its deterministic projection (what sharded smoke jobs diff)
    let mut report = CampaignReport::from_outcome(&outcome);
    if cli.canonical {
        report = report.canonical();
    }

    if let Some(dir) = &cli.out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        // staged + renamed, never written in place: a worker killed here
        // must not leave a torn report a retrying coordinator could read
        let campaign_path = dir.join("campaign.json");
        write_atomic(&campaign_path, report.to_json().render())
            .map_err(|e| format!("cannot write {}: {e}", campaign_path.display()))?;
        for scenario in &report.scenarios {
            let path = dir.join(format!("{}.json", sanitize(&scenario.scenario)));
            write_atomic(&path, scenario.to_json().render())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        eprintln!(
            "wrote campaign.json and {} scenario reports to {}",
            report.scenarios.len(),
            dir.display()
        );
    }
    if let Some(path) = &cli.cache_out {
        let snapshot = if cli.cache_compact {
            let compacted = cache
                .snapshot_touched()
                .expect("--cache-compact runs over a tracking cache");
            let total = cache.len();
            eprintln!(
                "compacted cache snapshot: kept {} of {} entries \
                 (dropped {} unreachable from the configured grid)",
                compacted.len(),
                total,
                total - compacted.len(),
            );
            compacted
        } else {
            cache.snapshot()
        };
        snapshot
            .save(path)
            .map_err(|e| format!("cannot save cache snapshot: {e}"))?;
        eprintln!(
            "persisted {} cached evaluations to {}",
            snapshot.len(),
            path.display()
        );
    }
    if let Some(dir) = &cli.store_dir {
        let store = ArtifactStore::open(dir).map_err(|e| e.to_string())?;
        let id = cli
            .store_id
            .clone()
            .unwrap_or_else(|| format!("campaign-seed{}", engine.config().seed));
        // suffix on collision (e.g. repeated smoke runs with one id)
        let stored = store
            .ingest_with_suffix(&id, &report.to_json().render())
            .map_err(|e| e.to_string())?;
        eprintln!(
            "ingested campaign as `{}` into the artifact store at {}",
            stored.id,
            store.root().display()
        );
    }
    if let Some(path) = &cli.metrics_out {
        write_atomic(path, engine.telemetry().metrics().to_json().render())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote final metrics snapshot to {}", path.display());
    }
    if cli.json {
        println!("{}", report.to_json().render());
    }
    if matches!(fail_point, Some(FailPoint::AfterWrite)) {
        return Err(
            "injected test failure (FAHANA_TEST_FAIL_SHARD) after all artifacts were written"
                .into(),
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fahana-campaign: {message}");
            ExitCode::FAILURE
        }
    }
}
