//! `fahana-campaign` — run a FaHaNa scenario grid from a declarative
//! config and emit per-scenario JSON reports.
//!
//! ```text
//! fahana-campaign [--config FILE] [--out DIR] [--threads N]
//!                 [--episodes N] [--seed N] [--no-cache]
//!                 [--cache-in FILE] [--cache-out FILE]
//!                 [--store DIR] [--store-id ID]
//!                 [--parallel-episodes] [--json] [--print-example]
//! ```
//!
//! Without `--config`, the paper-flavoured default grid runs: 2 devices
//! (Raspberry Pi 4, Odroid XU-4) × 2 reward settings (balanced,
//! fairness-heavy) × freezing on/off = 8 scenarios.
//!
//! `--cache-in` warm-starts the evaluation cache from a snapshot written
//! by a previous `--cache-out`; outcomes stay bit-identical to a cold run,
//! only cheaper. `--store` ingests the campaign report into an artifact
//! store that `fahana-query` can answer questions from.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use fahana_runtime::{
    campaign_json, scenario_json, ArtifactStore, CacheSnapshot, CampaignConfig, CampaignEngine,
    EvalCache,
};

struct Cli {
    config_path: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    threads: Option<usize>,
    episodes: Option<usize>,
    seed: Option<u64>,
    no_cache: bool,
    cache_in: Option<PathBuf>,
    cache_out: Option<PathBuf>,
    store_dir: Option<PathBuf>,
    store_id: Option<String>,
    parallel_episodes: bool,
    json: bool,
    print_example: bool,
}

fn usage() -> &'static str {
    "usage: fahana-campaign [--config FILE] [--out DIR] [--threads N] \
     [--episodes N] [--seed N] [--no-cache] [--cache-in FILE] \
     [--cache-out FILE] [--store DIR] [--store-id ID] [--parallel-episodes] \
     [--json] [--print-example]"
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        config_path: None,
        out_dir: None,
        threads: None,
        episodes: None,
        seed: None,
        no_cache: false,
        cache_in: None,
        cache_out: None,
        store_dir: None,
        store_id: None,
        parallel_episodes: false,
        json: false,
        print_example: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--config" => cli.config_path = Some(PathBuf::from(value_of("--config")?)),
            "--out" => cli.out_dir = Some(PathBuf::from(value_of("--out")?)),
            "--threads" => {
                cli.threads = Some(
                    value_of("--threads")?
                        .parse()
                        .map_err(|_| "--threads expects a number".to_string())?,
                )
            }
            "--episodes" => {
                cli.episodes = Some(
                    value_of("--episodes")?
                        .parse()
                        .map_err(|_| "--episodes expects a number".to_string())?,
                )
            }
            "--seed" => {
                cli.seed = Some(
                    value_of("--seed")?
                        .parse()
                        .map_err(|_| "--seed expects a number".to_string())?,
                )
            }
            "--no-cache" => cli.no_cache = true,
            "--cache-in" => cli.cache_in = Some(PathBuf::from(value_of("--cache-in")?)),
            "--cache-out" => cli.cache_out = Some(PathBuf::from(value_of("--cache-out")?)),
            "--store" => cli.store_dir = Some(PathBuf::from(value_of("--store")?)),
            "--store-id" => {
                // fail now, not after the campaign has run for hours
                let value = value_of("--store-id")?;
                if value.is_empty()
                    || !value
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
                {
                    return Err(format!(
                        "--store-id must use letters, digits, `-`, `_` or `.`, got `{value}`"
                    ));
                }
                cli.store_id = Some(value.to_string());
            }
            "--parallel-episodes" => cli.parallel_episodes = true,
            "--json" => cli.json = true,
            "--print-example" => cli.print_example = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(cli)
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn run(cli: Cli) -> Result<(), String> {
    if cli.print_example {
        print!("{}", CampaignConfig::example());
        return Ok(());
    }

    let mut config = match &cli.config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            CampaignConfig::parse(&text).map_err(|e| e.to_string())?
        }
        None => CampaignConfig::default(),
    };
    if let Some(threads) = cli.threads {
        config.threads = threads;
    }
    if let Some(episodes) = cli.episodes {
        config.episodes = episodes;
    }
    if let Some(seed) = cli.seed {
        config.seed = seed;
    }
    if cli.no_cache {
        config.use_cache = false;
    }
    if cli.parallel_episodes {
        config.parallel_episodes = true;
    }
    // check the *effective* setting: the cache can also be disabled by
    // `cache = off` in the config file, and a snapshot absorbed into a
    // disabled cache would silently never be consulted
    if !config.use_cache && (cli.cache_in.is_some() || cli.cache_out.is_some()) {
        return Err(
            "the evaluation cache is disabled (--no-cache or `cache = off`), \
             which conflicts with --cache-in/--cache-out"
                .into(),
        );
    }

    let cache = Arc::new(EvalCache::new());
    if let Some(path) = &cli.cache_in {
        let snapshot = CacheSnapshot::load(path)
            .map_err(|e| format!("cannot load {}: {e}", path.display()))?;
        let absorbed = cache.absorb(&snapshot);
        eprintln!(
            "warm start: absorbed {absorbed} of {} cached evaluations from {}",
            snapshot.len(),
            path.display()
        );
    }

    let engine = CampaignEngine::new(config).map_err(|e| e.to_string())?;
    eprintln!(
        "running {} scenarios on {} worker threads (cache {}, episode batching {})",
        engine.config().scenario_count(),
        engine.threads(),
        if engine.config().use_cache {
            "on"
        } else {
            "off"
        },
        if engine.config().parallel_episodes {
            "pooled"
        } else {
            "inline"
        },
    );
    let outcome = engine
        .run_with_cache(Arc::clone(&cache))
        .map_err(|e| e.to_string())?;

    eprintln!(
        "{:<40} {:>7} {:>7} {:>9} {:>9} {:>8}",
        "scenario", "valid%", "best R", "wall ms", "hit-rate", "entries"
    );
    for scenario in &outcome.scenarios {
        let best = scenario
            .outcome
            .best
            .as_ref()
            .map(|b| format!("{:.3}", b.record.reward))
            .unwrap_or_else(|| "-".into());
        eprintln!(
            "{:<40} {:>6.1}% {:>7} {:>9.1} {:>8.1}% {:>8}",
            scenario.scenario.name,
            scenario.outcome.valid_ratio * 100.0,
            best,
            scenario.wall_clock.as_secs_f64() * 1e3,
            scenario.cache.hit_rate() * 100.0,
            scenario.cache.hits + scenario.cache.misses,
        );
    }
    eprintln!(
        "campaign: {:.1} ms wall-clock, cache hit-rate {:.1}% over {} lookups ({} entries)",
        outcome.wall_clock.as_secs_f64() * 1e3,
        outcome.cache.hit_rate() * 100.0,
        outcome.cache.hits + outcome.cache.misses,
        outcome.cache_entries,
    );

    if let Some(dir) = &cli.out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let campaign_path = dir.join("campaign.json");
        std::fs::write(&campaign_path, campaign_json(&outcome))
            .map_err(|e| format!("cannot write {}: {e}", campaign_path.display()))?;
        for scenario in &outcome.scenarios {
            let path = dir.join(format!("{}.json", sanitize(&scenario.scenario.name)));
            std::fs::write(&path, scenario_json(scenario))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        eprintln!(
            "wrote campaign.json and {} scenario reports to {}",
            outcome.scenarios.len(),
            dir.display()
        );
    }
    if let Some(path) = &cli.cache_out {
        let snapshot = cache.snapshot();
        snapshot
            .save(path)
            .map_err(|e| format!("cannot save cache snapshot: {e}"))?;
        eprintln!(
            "persisted {} cached evaluations to {}",
            snapshot.len(),
            path.display()
        );
    }
    if let Some(dir) = &cli.store_dir {
        let store = ArtifactStore::open(dir).map_err(|e| e.to_string())?;
        let id = cli
            .store_id
            .clone()
            .unwrap_or_else(|| format!("campaign-seed{}", engine.config().seed));
        let report = campaign_json(&outcome);
        let stored = match store.ingest(&id, &report) {
            Ok(stored) => stored,
            // same id already ingested (e.g. repeated smoke runs): suffix it
            Err(fahana_runtime::StoreError::DuplicateId(_)) => {
                let mut suffix = 2;
                loop {
                    match store.ingest(&format!("{id}-{suffix}"), &report) {
                        Ok(stored) => break stored,
                        Err(fahana_runtime::StoreError::DuplicateId(_)) => suffix += 1,
                        Err(e) => return Err(e.to_string()),
                    }
                }
            }
            Err(e) => return Err(e.to_string()),
        };
        eprintln!(
            "ingested campaign as `{}` into the artifact store at {}",
            stored.id,
            store.root().display()
        );
    }
    if cli.json {
        println!("{}", campaign_json(&outcome));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fahana-campaign: {message}");
            ExitCode::FAILURE
        }
    }
}
