//! `fahana-serve` — serve a campaign artifact store over HTTP.
//!
//! ```text
//! fahana-serve --store DIR [--addr HOST:PORT] [--threads N] [--ingest FILE]...
//!              [--max-inflight N] [--read-timeout-ms MS] [--max-body-bytes N]
//!              [--cache-capacity N] [--reactor-backend auto|epoll|poll]
//!              [--sndbuf BYTES] [--trace-out FILE]
//! ```
//!
//! A long-lived daemon answering the same questions as `fahana-query`,
//! without a process spawn or store re-scan per question:
//!
//! ```text
//! curl 'http://127.0.0.1:7878/healthz'
//! curl 'http://127.0.0.1:7878/query?device=raspberry_pi_4&max_latency_ms=50'
//! curl 'http://127.0.0.1:7878/leaderboard/raspberry_pi_4?top=5'
//! curl -X POST --data-binary @campaign.json 'http://127.0.0.1:7878/ingest?id=run-42'
//! ```
//!
//! `--ingest` pre-loads report files at startup (same semantics as
//! `fahana-query --ingest`); `POST /ingest` adds more while running.
//!
//! Read responses are cached per store generation (`--cache-capacity`,
//! 0 disables). The daemon sheds load instead of queueing unboundedly:
//! past `--max-inflight` concurrent connections, new ones are answered
//! `503` with a `Retry-After` header; a connection that dribbles its
//! request in slower than `--read-timeout-ms` gets a `408`; a body larger
//! than `--max-body-bytes` gets a `413` without being buffered.
//!
//! Connections are owned by a nonblocking readiness reactor (epoll on
//! Linux, `poll(2)` elsewhere — force one with `--reactor-backend`), so
//! `--threads` sizes the *request-handling* pool only: thousands of idle
//! keep-alive connections park off-worker. `--sndbuf` shrinks each
//! socket's kernel send buffer (test-facing, exercises partial writes).
//!
//! The daemon self-reports: `GET /metrics` serves the metrics registry in
//! the Prometheus text format (per-endpoint request counts and latency
//! histograms, pool counters, cache hit/miss totals, store generation)
//! and `GET /statusz` a JSON status document with per-endpoint latency
//! percentiles. `--trace-out` additionally appends structured JSONL trace
//! records.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use fahana_runtime::{ArtifactStore, ReactorBackend, ServeOptions, Server, StoreView, Telemetry};

struct Cli {
    store_dir: Option<PathBuf>,
    addr: String,
    options: ServeOptions,
    ingest: Vec<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: fahana-serve --store DIR [--addr HOST:PORT] [--threads N] [--ingest FILE]... \
     [--max-inflight N] [--read-timeout-ms MS] [--max-body-bytes N] [--cache-capacity N] \
     [--reactor-backend auto|epoll|poll] [--sndbuf BYTES] [--trace-out FILE]"
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        store_dir: None,
        addr: "127.0.0.1:7878".into(),
        options: ServeOptions::default(),
        ingest: Vec::new(),
        trace_out: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        let number = |flag: &str, value: &str| -> Result<usize, String> {
            value
                .parse()
                .map_err(|_| format!("{flag} expects a number"))
        };
        match arg.as_str() {
            "--store" => cli.store_dir = Some(PathBuf::from(value_of("--store")?)),
            "--addr" => cli.addr = value_of("--addr")?.to_string(),
            "--threads" => {
                cli.options.threads = number("--threads", value_of("--threads")?)?;
            }
            "--max-inflight" => {
                cli.options.max_inflight = number("--max-inflight", value_of("--max-inflight")?)?;
            }
            "--read-timeout-ms" => {
                let ms = number("--read-timeout-ms", value_of("--read-timeout-ms")?)?;
                if ms == 0 {
                    return Err("--read-timeout-ms must be positive".into());
                }
                cli.options.read_timeout = Duration::from_millis(ms as u64);
            }
            "--max-body-bytes" => {
                cli.options.max_body_bytes =
                    number("--max-body-bytes", value_of("--max-body-bytes")?)?;
            }
            "--cache-capacity" => {
                cli.options.cache_capacity =
                    number("--cache-capacity", value_of("--cache-capacity")?)?;
            }
            "--reactor-backend" => {
                cli.options.backend = ReactorBackend::parse(value_of("--reactor-backend")?)?;
            }
            "--sndbuf" => {
                let bytes = number("--sndbuf", value_of("--sndbuf")?)?;
                if bytes == 0 {
                    return Err("--sndbuf must be positive".into());
                }
                cli.options.sndbuf = Some(bytes);
            }
            "--ingest" => cli.ingest.push(PathBuf::from(value_of("--ingest")?)),
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value_of("--trace-out")?)),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if cli.store_dir.is_none() {
        return Err(format!("--store is required\n{}", usage()));
    }
    Ok(cli)
}

fn run(cli: Cli) -> Result<(), String> {
    let store = ArtifactStore::open(cli.store_dir.expect("validated in parse_cli"))
        .map_err(|e| e.to_string())?;
    if !cli.ingest.is_empty() {
        let stored = store.ingest_files(&cli.ingest).map_err(|e| e.to_string())?;
        for (path, campaign) in cli.ingest.iter().zip(stored.iter()) {
            eprintln!(
                "ingested {} as `{}` ({} scenarios)",
                path.display(),
                campaign.id,
                campaign.report.scenarios.len()
            );
        }
    }

    let view = StoreView::open(store).map_err(|e| e.to_string())?;
    let campaigns = view.campaigns().len();
    let mut server = Server::bind_with(cli.addr.as_str(), view, cli.options)
        .map_err(|e| format!("cannot bind {}: {e}", cli.addr))?;
    if let Some(path) = &cli.trace_out {
        let telemetry = Telemetry::with_trace(path)
            .map_err(|e| format!("cannot create trace sink {}: {e}", path.display()))?;
        server.set_telemetry(telemetry);
    }
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    if let Some(trace) = server.obs().telemetry().trace() {
        trace.event(
            "serve_start",
            vec![
                ("addr".into(), fahana_runtime::Json::str(addr.to_string())),
                (
                    "campaigns".into(),
                    fahana_runtime::Json::Int(campaigns as i64),
                ),
                (
                    "threads".into(),
                    fahana_runtime::Json::Int(cli.options.threads as i64),
                ),
                (
                    "max_inflight".into(),
                    fahana_runtime::Json::Int(cli.options.max_inflight as i64),
                ),
            ],
        );
    }
    eprintln!(
        "fahana-serve: listening on http://{addr} ({campaigns} campaigns, {} worker threads, \
         {} max in-flight, cache {})",
        cli.options.threads, cli.options.max_inflight, cli.options.cache_capacity
    );
    server.run().map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fahana-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
