//! `fahana-query` — answer "best architecture for device X under
//! constraint Y" from a campaign artifact store.
//!
//! ```text
//! fahana-query --store DIR [--ingest FILE]...
//!              [--device SLUG] [--reward NAME] [--freezing on|off]
//!              [--max-latency-ms X] [--max-unfairness X]
//!              [--min-accuracy X] [--max-params N]
//!              [--top N] [--list] [--json]
//! ```
//!
//! The store is a directory of ingested campaign reports (see
//! `fahana-campaign --store`, or pass `--ingest` here to add reports
//! first). Every query consults *all* ingested campaigns: candidate
//! architectures are ranked by reward, and the accuracy/unfairness Pareto
//! frontiers of every matching scenario are merged into one cross-campaign
//! frontier.
//!
//! Exit codes are script-friendly: `0` — answered (even if constraints
//! admit no candidate); `1` — runtime failure; `2` — usage error,
//! including a device slug this build does not know; `4` — the device is
//! known but the store holds no scenarios for it (the 404 of the CLI
//! world: previously indistinguishable from an empty-but-covered answer).

use std::path::PathBuf;
use std::process::ExitCode;

use fahana_runtime::{ArtifactStore, StoreQuery};

struct Cli {
    store_dir: Option<PathBuf>,
    ingest: Vec<PathBuf>,
    query: StoreQuery,
    top: usize,
    list: bool,
    json: bool,
}

fn usage() -> &'static str {
    "usage: fahana-query --store DIR [--ingest FILE]... [--device SLUG] \
     [--reward NAME] [--freezing on|off] [--max-latency-ms X] \
     [--max-unfairness X] [--min-accuracy X] [--max-params N] [--top N] \
     [--list] [--json]"
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        store_dir: None,
        ingest: Vec::new(),
        query: StoreQuery::default(),
        top: 10,
        list: false,
        json: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--store" => cli.store_dir = Some(PathBuf::from(value_of("--store")?)),
            "--ingest" => cli.ingest.push(PathBuf::from(value_of("--ingest")?)),
            // filter flags share one parsing path (`StoreQuery::set`) with
            // the fahana-serve daemon's URL query parameters: `--max-latency-ms`
            // is the filter key `max_latency_ms`
            "--device" | "--reward" | "--freezing" | "--max-latency-ms" | "--max-unfairness"
            | "--min-accuracy" | "--max-params" => {
                let key = arg.trim_start_matches("--").replace('-', "_");
                let value = value_of(arg)?;
                cli.query.set(&key, value)?;
            }
            "--top" => {
                let value = value_of("--top")?;
                cli.top = value
                    .parse()
                    .map_err(|_| format!("--top expects an integer, got `{value}`"))?;
            }
            "--list" => cli.list = true,
            "--json" => cli.json = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if cli.store_dir.is_none() {
        return Err(format!("--store is required\n{}", usage()));
    }
    Ok(cli)
}

/// Exit code for a device that is known to the build but absent from the
/// store — scripts can tell "no data for this device" (4) apart from "no
/// candidate satisfies the constraints" (0, empty answer) and from a slug
/// typo (2, usage error).
const EXIT_DEVICE_NOT_IN_STORE: u8 = 4;

fn run(cli: Cli) -> Result<ExitCode, String> {
    let store = ArtifactStore::open(cli.store_dir.expect("validated in parse_cli"))
        .map_err(|e| e.to_string())?;

    if !cli.ingest.is_empty() {
        // batch API: the catalog is rebuilt once, not once per file
        let stored = store.ingest_files(&cli.ingest).map_err(|e| e.to_string())?;
        for (path, campaign) in cli.ingest.iter().zip(stored.iter()) {
            eprintln!(
                "ingested {} as `{}` ({} scenarios)",
                path.display(),
                campaign.id,
                campaign.report.scenarios.len()
            );
        }
    }

    if cli.list {
        let campaigns = store.campaigns().map_err(|e| e.to_string())?;
        if campaigns.is_empty() {
            eprintln!("store is empty — ingest reports with --ingest or fahana-campaign --store");
            return Ok(ExitCode::SUCCESS);
        }
        for campaign in &campaigns {
            println!(
                "{}: {} scenarios, {} threads, {:.1} ms wall-clock",
                campaign.id,
                campaign.report.scenarios.len(),
                campaign.report.threads,
                campaign.report.wall_clock_ms,
            );
            for scenario in &campaign.report.scenarios {
                println!(
                    "  {} (best: {})",
                    scenario.scenario,
                    scenario
                        .best
                        .as_ref()
                        .map(|b| b.name.as_str())
                        .unwrap_or("-")
                );
            }
        }
        return Ok(ExitCode::SUCCESS);
    }

    let campaigns = store.campaigns().map_err(|e| e.to_string())?;
    let answer = fahana_runtime::answer_query(&campaigns, &cli.query);

    // a device the store covers in *no* scenario at all means it simply
    // has no data for that (perfectly valid) device — a different
    // situation from reward/freezing/constraint filters narrowing a
    // covered device down to nothing, and one scripts need to detect
    // without parsing JSON. Coverage is checked against the device alone,
    // so other filters can never fake a "device missing" signal.
    let exit = match cli.query.device {
        Some(device)
            if !campaigns.iter().any(|campaign| {
                campaign
                    .report
                    .scenarios
                    .iter()
                    .any(|scenario| scenario.device_slug == device.slug())
            }) =>
        {
            eprintln!(
                "device `{}` is known but the store holds no scenarios for it",
                device.slug()
            );
            ExitCode::from(EXIT_DEVICE_NOT_IN_STORE)
        }
        _ => ExitCode::SUCCESS,
    };

    if cli.json {
        println!("{}", answer.to_json().render());
        return Ok(exit);
    }

    eprintln!(
        "consulted {} campaigns, {} matching scenarios",
        answer.campaigns_consulted, answer.scenarios_matched
    );
    if answer.candidates.is_empty() {
        println!("no architecture satisfies the constraints");
        return Ok(exit);
    }
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>7}  provenance",
        "architecture", "params", "lat ms", "acc", "unfair", "reward"
    );
    for candidate in answer.candidates.iter().take(cli.top) {
        println!(
            "{:<28} {:>9} {:>9.1} {:>9.4} {:>9.4} {:>7.3}  {}/{} ({})",
            candidate.record.name,
            candidate.record.params,
            candidate.record.latency_ms,
            candidate.record.accuracy,
            candidate.record.unfairness,
            candidate.record.reward,
            candidate.campaign,
            candidate.scenario,
            candidate.role,
        );
    }
    if let Some(best) = &answer.best {
        println!(
            "best: {} ({:.4} accuracy, {:.4} unfairness, {:.1} ms) from {}/{}",
            best.record.name,
            best.record.accuracy,
            best.record.unfairness,
            best.record.latency_ms,
            best.campaign,
            best.scenario,
        );
    }
    println!(
        "merged accuracy/unfairness frontier: {} points",
        answer.frontier.len()
    );
    Ok(exit)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(cli) {
        Ok(exit) => exit,
        Err(message) => {
            eprintln!("fahana-query: {message}");
            ExitCode::FAILURE
        }
    }
}
