//! Architecture-fingerprint-keyed evaluation cache.
//!
//! The surrogate evaluator is a pure function of (architecture, frozen
//! block count, surrogate configuration). Scenario grids exploit that
//! heavily: two scenarios differing only in device profile or reward
//! weights drive their controllers through *identical* decision streams
//! (same master seed), so they request evaluations for identical child
//! architectures. The cache memoises those requests behind an `RwLock`
//! shared by every worker; a hit returns the stored
//! [`FairnessEvaluation`], which is bit-identical to what re-evaluation
//! would produce.
//!
//! Keys are 128-bit FNV-style fingerprints over the architecture's full
//! structure (name included — the surrogate's noise term depends on it),
//! the frozen-block count and the evaluator's configuration, so evaluators
//! calibrated for different datasets never alias.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use archspace::Architecture;
use evaluator::{Evaluate, FairnessEvaluation, SurrogateEvaluator};

/// A 128-bit structural fingerprint accumulator (two independent FNV-1a
/// streams with distinct offset bases).
#[derive(Debug, Clone, Copy)]
struct Fingerprint {
    lo: u64,
    hi: u64,
}

impl Fingerprint {
    fn new() -> Self {
        Fingerprint {
            lo: 0xcbf2_9ce4_8422_2325,
            hi: 0x6c62_272e_07bb_0142,
        }
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.lo = (self.lo ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.hi = (self.hi ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.hi = self.hi.rotate_left(17);
        }
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &byte in bytes {
            self.lo = (self.lo ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.hi = (self.hi ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.hi = self.hi.rotate_left(17);
        }
    }

    fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    fn finish(self) -> (u64, u64) {
        (self.lo, self.hi)
    }
}

/// The cache key: evaluator fingerprint × architecture structure × frozen
/// block count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub(crate) lo: u64,
    pub(crate) hi: u64,
}

impl CacheKey {
    fn for_request(evaluator_fingerprint: u64, arch: &Architecture, frozen_blocks: usize) -> Self {
        let mut fp = Fingerprint::new();
        fp.write_u64(evaluator_fingerprint);
        fp.write_u64(frozen_blocks as u64);
        fp.write_bytes(arch.name().as_bytes());
        fp.write_u64(arch.classes() as u64);
        fp.write_u64(arch.input_size() as u64);
        let stem = arch.stem();
        fp.write_u64(stem.out_channels as u64);
        fp.write_u64(stem.kernel as u64);
        fp.write_u64(u64::from(stem.pool));
        fp.write_u64(arch.blocks().len() as u64);
        for block in arch.blocks() {
            fp.write_bytes(block.kind.label().as_bytes());
            fp.write_u64(block.ch_in as u64);
            fp.write_u64(block.ch_mid as u64);
            fp.write_u64(block.ch_out as u64);
            fp.write_u64(block.kernel as u64);
            fp.write_u64(u64::from(block.skipped));
            fp.write_u64(u64::from(block.downsample));
        }
        let (lo, hi) = fp.finish();
        CacheKey { lo, hi }
    }
}

/// Hit/miss counters of a cache (or of one evaluator's view of it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache was never hit).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe evaluation memo shared by many [`CachedEvaluator`]s.
#[derive(Debug, Default)]
pub struct EvalCache {
    entries: RwLock<HashMap<CacheKey, FairnessEvaluation>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Entries added by snapshot absorption (warm starts / shard merges) —
    /// kept separate from [`CacheStats`] because those counters are part
    /// of the serialized report schema and only describe live lookups.
    absorbed: AtomicU64,
    /// When present, every key a lookup touched (hit or fresh insert) is
    /// recorded — the reachability set snapshot compaction retains.
    /// Absorbed-but-never-consulted entries are deliberately *not*
    /// recorded; they are exactly what compaction drops.
    touched: Option<Mutex<HashSet<CacheKey>>>,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// An empty cache that records which keys lookups touch, for
    /// snapshot compaction
    /// ([`EvalCache::snapshot_touched`](crate::snapshot)). Tracking costs
    /// one mutex insert per lookup, so it is opt-in.
    pub fn with_tracking() -> Self {
        EvalCache {
            touched: Some(Mutex::new(HashSet::new())),
            ..EvalCache::default()
        }
    }

    /// Whether this cache records touched keys.
    pub fn is_tracking(&self) -> bool {
        self.touched.is_some()
    }

    fn record_touch(&self, key: CacheKey) {
        if let Some(touched) = &self.touched {
            touched.lock().expect("touch set poisoned").insert(key);
        }
    }

    /// Every touched entry (key + evaluation), or `None` without tracking.
    pub(crate) fn touched_entries(&self) -> Option<Vec<(CacheKey, FairnessEvaluation)>> {
        let touched = self.touched.as_ref()?;
        let touched = touched.lock().expect("touch set poisoned");
        let entries = self.entries.read().expect("eval cache poisoned");
        Some(
            touched
                .iter()
                .filter_map(|key| {
                    entries
                        .get(key)
                        .map(|evaluation| (*key, evaluation.clone()))
                })
                .collect(),
        )
    }

    /// Number of memoised evaluations.
    pub fn len(&self) -> usize {
        self.entries.read().expect("eval cache poisoned").len()
    }

    /// Whether the cache holds no evaluation yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate hit/miss counters across every evaluator using this cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Total entries added through snapshot absorption
    /// ([`EvalCache::absorb`](crate::snapshot)) — how much of the cache
    /// came from warm starts rather than this run's evaluations.
    pub fn absorbed(&self) -> u64 {
        self.absorbed.load(Ordering::Relaxed)
    }

    pub(crate) fn record_absorbed(&self, added: usize) {
        self.absorbed.fetch_add(added as u64, Ordering::Relaxed);
    }

    fn get(&self, key: &CacheKey) -> Option<FairnessEvaluation> {
        let hit = self
            .entries
            .read()
            .expect("eval cache poisoned")
            .get(key)
            .cloned();
        if hit.is_some() {
            self.record_touch(*key);
        }
        hit
    }

    fn insert(&self, key: CacheKey, evaluation: FairnessEvaluation) {
        self.entries
            .write()
            .expect("eval cache poisoned")
            .insert(key, evaluation);
        self.record_touch(key);
    }

    /// Copies every entry out, for snapshotting (see [`crate::snapshot`]).
    pub(crate) fn export_entries(&self) -> Vec<(CacheKey, FairnessEvaluation)> {
        self.entries
            .read()
            .expect("eval cache poisoned")
            .iter()
            .map(|(key, evaluation)| (*key, evaluation.clone()))
            .collect()
    }

    /// Inserts entries that are not already memoised (existing entries
    /// win, so a warm-start can never change live results). Returns the
    /// number of entries actually added.
    pub(crate) fn import_entries(
        &self,
        entries: impl IntoIterator<Item = (CacheKey, FairnessEvaluation)>,
    ) -> usize {
        let mut map = self.entries.write().expect("eval cache poisoned");
        let mut added = 0;
        for (key, evaluation) in entries {
            if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(key) {
                slot.insert(evaluation);
                added += 1;
            }
        }
        added
    }
}

/// An [`Evaluate`] decorator that memoises its inner evaluator through a
/// shared [`EvalCache`].
///
/// Clones share the cache *and* this instance's local hit/miss counters,
/// so a scenario that fans one logical evaluator out across pool workers
/// still reports one coherent per-scenario hit-rate.
#[derive(Debug, Clone)]
pub struct CachedEvaluator<E> {
    inner: E,
    cache: Arc<EvalCache>,
    evaluator_fingerprint: u64,
    local_hits: Arc<AtomicU64>,
    local_misses: Arc<AtomicU64>,
}

impl<E> CachedEvaluator<E> {
    /// Wraps `inner`, namespacing its entries under
    /// `evaluator_fingerprint` (hash whatever configuration distinguishes
    /// two evaluators that would disagree about the same architecture).
    pub fn new(inner: E, cache: Arc<EvalCache>, evaluator_fingerprint: u64) -> Self {
        CachedEvaluator {
            inner,
            cache,
            evaluator_fingerprint,
            local_hits: Arc::new(AtomicU64::new(0)),
            local_misses: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// Hit/miss counters of this evaluator (shared with its clones),
    /// independent of other evaluators using the same cache.
    pub fn local_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.local_hits.load(Ordering::Relaxed),
            misses: self.local_misses.load(Ordering::Relaxed),
        }
    }
}

impl CachedEvaluator<SurrogateEvaluator> {
    /// Wraps a surrogate, fingerprinting its full configuration so
    /// surrogates calibrated on different datasets or seeds never share
    /// entries.
    pub fn surrogate(inner: SurrogateEvaluator, cache: Arc<EvalCache>) -> Self {
        let config = *inner.config();
        let mut fp = Fingerprint::new();
        fp.write_f64(config.minority_fraction);
        fp.write_f64(config.imbalance_ratio);
        fp.write_f64(config.reference_imbalance);
        fp.write_f64(config.noise_scale);
        fp.write_u64(config.seed);
        let (lo, hi) = fp.finish();
        CachedEvaluator::new(inner, cache, lo ^ hi.rotate_left(31))
    }
}

impl<E: Evaluate> Evaluate for CachedEvaluator<E> {
    fn evaluate_with_frozen(
        &mut self,
        arch: &Architecture,
        frozen_blocks: usize,
    ) -> evaluator::Result<FairnessEvaluation> {
        let key = CacheKey::for_request(self.evaluator_fingerprint, arch, frozen_blocks);
        if let Some(hit) = self.cache.get(&key) {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            self.local_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let evaluation = self.inner.evaluate_with_frozen(arch, frozen_blocks)?;
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        self.local_misses.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key, evaluation.clone());
        Ok(evaluation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archspace::zoo;
    use evaluator::SurrogateConfig;

    #[test]
    fn cached_results_are_bit_identical_to_uncached() {
        let cache = Arc::new(EvalCache::new());
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        let mut plain = SurrogateEvaluator::default();
        for arch in [zoo::paper_fahana_small(5, 64), zoo::mobilenet_v2(5, 64)] {
            // miss, then hit — all three must agree exactly
            let first = cached.evaluate_with_frozen(&arch, 2).unwrap();
            let second = cached.evaluate_with_frozen(&arch, 2).unwrap();
            let reference = plain.evaluate_with_frozen(&arch, 2).unwrap();
            assert_eq!(first, reference);
            assert_eq!(second, reference);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(cache.len(), 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn frozen_block_count_is_part_of_the_key() {
        let cache = Arc::new(EvalCache::new());
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        let arch = zoo::mobilenet_v2(5, 64);
        let frozen0 = cached.evaluate_with_frozen(&arch, 0).unwrap();
        let frozen5 = cached.evaluate_with_frozen(&arch, 5).unwrap();
        assert_ne!(frozen0.trained_params, frozen5.trained_params);
        assert_eq!(
            cache.stats().misses,
            2,
            "different frozen counts must not alias"
        );
    }

    #[test]
    fn different_surrogate_configs_do_not_alias() {
        let cache = Arc::new(EvalCache::new());
        let unbalanced = SurrogateEvaluator::default();
        let balanced = SurrogateEvaluator::new(SurrogateConfig {
            imbalance_ratio: 1.1,
            ..SurrogateConfig::default()
        });
        let arch = zoo::mobilenet_v2(5, 64);
        let mut a = CachedEvaluator::surrogate(unbalanced, cache.clone());
        let mut b = CachedEvaluator::surrogate(balanced, cache.clone());
        let from_a = a.evaluate_with_frozen(&arch, 0).unwrap();
        let from_b = b.evaluate_with_frozen(&arch, 0).unwrap();
        assert_ne!(from_a.report, from_b.report);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clones_share_cache_and_local_counters() {
        let cache = Arc::new(EvalCache::new());
        let original = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache);
        let mut clone = original.clone();
        let arch = zoo::paper_fahana_small(5, 64);
        clone.evaluate_with_frozen(&arch, 0).unwrap();
        clone.evaluate_with_frozen(&arch, 0).unwrap();
        assert_eq!(original.local_stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(original.cache().len(), 1);
    }

    #[test]
    fn architecture_name_participates_in_the_key() {
        // the surrogate's noise depends on the name, so two structurally
        // equal children with different names are different cache entries
        let cache = Arc::new(EvalCache::new());
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        let mut a = zoo::paper_fahana_small(5, 64);
        a.set_name("child-a");
        let mut b = zoo::paper_fahana_small(5, 64);
        b.set_name("child-b");
        cached.evaluate_with_frozen(&a, 0).unwrap();
        cached.evaluate_with_frozen(&b, 0).unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn tracking_records_consulted_keys_only_when_enabled() {
        assert!(!EvalCache::new().is_tracking());
        assert!(EvalCache::new().touched_entries().is_none());

        let cache = Arc::new(EvalCache::with_tracking());
        assert!(cache.is_tracking());
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        let arch = zoo::paper_fahana_small(5, 64);
        cached.evaluate_with_frozen(&arch, 0).unwrap(); // miss: inserted → touched
        cached.evaluate_with_frozen(&arch, 0).unwrap(); // hit: same key
        let touched = cache.touched_entries().unwrap();
        assert_eq!(touched.len(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalCache>();
        assert_send_sync::<CachedEvaluator<SurrogateEvaluator>>();
        assert_send_sync::<CacheStats>();
    }
}
