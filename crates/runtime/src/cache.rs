//! Architecture-fingerprint-keyed evaluation cache.
//!
//! The surrogate evaluator is a pure function of (architecture, frozen
//! block count, surrogate configuration). Scenario grids exploit that
//! heavily: two scenarios differing only in device profile or reward
//! weights drive their controllers through *identical* decision streams
//! (same master seed), so they request evaluations for identical child
//! architectures. The cache memoises those requests behind an `RwLock`
//! shared by every worker; a hit returns the stored
//! [`FairnessEvaluation`], which is bit-identical to what re-evaluation
//! would produce.
//!
//! Keys are 128-bit FNV-style fingerprints over the architecture's full
//! structure (name included — the surrogate's noise term depends on it),
//! the frozen-block count and the evaluator's configuration, so evaluators
//! calibrated for different datasets never alias.
//!
//! Internally the map is split into a power-of-two number of independently
//! locked shards selected by the key fingerprint, so workers hammering the
//! cache from many threads rarely serialise on one lock. Sharding is an
//! implementation detail: lookups, snapshots and statistics behave exactly
//! as a single map would, and per-shard hit/miss/contention counters are
//! exported for telemetry via [`EvalCache::shard_stats`].

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, TryLockError};

use archspace::Architecture;
use evaluator::{Evaluate, FairnessEvaluation, SurrogateEvaluator};

/// A 128-bit structural fingerprint accumulator (two independent FNV-1a
/// streams with distinct offset bases).
#[derive(Debug, Clone, Copy)]
struct Fingerprint {
    lo: u64,
    hi: u64,
}

impl Fingerprint {
    fn new() -> Self {
        Fingerprint {
            lo: 0xcbf2_9ce4_8422_2325,
            hi: 0x6c62_272e_07bb_0142,
        }
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.lo = (self.lo ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.hi = (self.hi ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.hi = self.hi.rotate_left(17);
        }
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &byte in bytes {
            self.lo = (self.lo ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.hi = (self.hi ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.hi = self.hi.rotate_left(17);
        }
    }

    fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    fn finish(self) -> (u64, u64) {
        (self.lo, self.hi)
    }
}

/// The cache key: evaluator fingerprint × architecture structure × frozen
/// block count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub(crate) lo: u64,
    pub(crate) hi: u64,
}

impl CacheKey {
    fn for_request(evaluator_fingerprint: u64, arch: &Architecture, frozen_blocks: usize) -> Self {
        let mut fp = Fingerprint::new();
        fp.write_u64(evaluator_fingerprint);
        fp.write_u64(frozen_blocks as u64);
        fp.write_bytes(arch.name().as_bytes());
        fp.write_u64(arch.classes() as u64);
        fp.write_u64(arch.input_size() as u64);
        let stem = arch.stem();
        fp.write_u64(stem.out_channels as u64);
        fp.write_u64(stem.kernel as u64);
        fp.write_u64(u64::from(stem.pool));
        fp.write_u64(arch.blocks().len() as u64);
        for block in arch.blocks() {
            fp.write_bytes(block.kind.label().as_bytes());
            fp.write_u64(block.ch_in as u64);
            fp.write_u64(block.ch_mid as u64);
            fp.write_u64(block.ch_out as u64);
            fp.write_u64(block.kernel as u64);
            fp.write_u64(u64::from(block.skipped));
            fp.write_u64(u64::from(block.downsample));
        }
        let (lo, hi) = fp.finish();
        CacheKey { lo, hi }
    }
}

/// Hit/miss counters of a cache (or of one evaluator's view of it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache was never hit).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counters and occupancy of one cache shard, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Entries currently memoised in this shard.
    pub entries: usize,
    /// Lookups this shard answered from memory.
    pub hits: u64,
    /// Lookups this shard had to evaluate.
    pub misses: u64,
    /// Lock acquisitions that found the shard lock already held.
    pub contended: u64,
}

/// One independently locked segment of the cache.
#[derive(Debug, Default)]
struct Shard {
    entries: RwLock<HashMap<CacheKey, FairnessEvaluation>>,
    /// Keys lookups touched in this shard; only locked when the owning
    /// cache has tracking enabled, so the untracked hot path never takes
    /// this mutex.
    touched: Mutex<HashSet<CacheKey>>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended: AtomicU64,
}

impl Shard {
    /// Read-locks the entry map, counting the acquisition as contended if
    /// the lock was not immediately available.
    fn read_entries(
        &self,
    ) -> std::sync::RwLockReadGuard<'_, HashMap<CacheKey, FairnessEvaluation>> {
        match self.entries.try_read() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.entries.read().expect("eval cache poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("eval cache poisoned"),
        }
    }

    /// Write-locks the entry map, counting contention like
    /// [`Shard::read_entries`].
    fn write_entries(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, HashMap<CacheKey, FairnessEvaluation>> {
        match self.entries.try_write() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.entries.write().expect("eval cache poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("eval cache poisoned"),
        }
    }
}

/// Default shard count: enough that a handful of pool workers rarely
/// collide, small enough that snapshot export stays cheap.
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// A thread-safe evaluation memo shared by many [`CachedEvaluator`]s.
#[derive(Debug)]
pub struct EvalCache {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is always a power of two.
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Entries added by snapshot absorption (warm starts / shard merges) —
    /// kept separate from [`CacheStats`] because those counters are part
    /// of the serialized report schema and only describe live lookups.
    absorbed: AtomicU64,
    /// When set, every key a lookup touched (hit or fresh insert) is
    /// recorded per shard — the reachability set snapshot compaction
    /// retains. Absorbed-but-never-consulted entries are deliberately
    /// *not* recorded; they are exactly what compaction drops.
    tracking: bool,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::build(DEFAULT_CACHE_SHARDS, false)
    }
}

impl EvalCache {
    /// An empty cache with the default shard count.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// An empty cache with `shards` lock segments (rounded up to a power
    /// of two, at least one).
    pub fn with_shards(shards: usize) -> Self {
        EvalCache::build(shards, false)
    }

    /// An empty cache that records which keys lookups touch, for
    /// snapshot compaction
    /// ([`EvalCache::snapshot_touched`](crate::snapshot)). Tracking costs
    /// one mutex insert per lookup on the touched shard, so it is opt-in;
    /// untracked caches never take the touch lock at all.
    pub fn with_tracking() -> Self {
        EvalCache::build(DEFAULT_CACHE_SHARDS, true)
    }

    /// An empty tracking cache with an explicit shard count.
    pub fn with_shards_tracking(shards: usize) -> Self {
        EvalCache::build(shards, true)
    }

    fn build(shards: usize, tracking: bool) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shards: Box<[Shard]> = (0..count).map(|_| Shard::default()).collect();
        EvalCache {
            mask: count - 1,
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            absorbed: AtomicU64::new(0),
            tracking,
        }
    }

    /// Whether this cache records touched keys.
    pub fn is_tracking(&self) -> bool {
        self.tracking
    }

    /// Number of lock segments the cache is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &CacheKey) -> &Shard {
        // `hi` mixes every input byte through a rotating FNV stream, so its
        // low bits are already well distributed across shards
        &self.shards[(key.hi as usize) & self.mask]
    }

    fn record_touch(&self, shard: &Shard, key: CacheKey) {
        if self.tracking {
            shard
                .touched
                .lock()
                .expect("touch set poisoned")
                .insert(key);
        }
    }

    /// Every touched entry (key + evaluation), or `None` without tracking.
    pub(crate) fn touched_entries(&self) -> Option<Vec<(CacheKey, FairnessEvaluation)>> {
        if !self.tracking {
            return None;
        }
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let touched = shard.touched.lock().expect("touch set poisoned");
            let entries = shard.read_entries();
            out.extend(touched.iter().filter_map(|key| {
                entries
                    .get(key)
                    .map(|evaluation| (*key, evaluation.clone()))
            }));
        }
        Some(out)
    }

    /// Number of memoised evaluations.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read_entries().len()).sum()
    }

    /// Whether the cache holds no evaluation yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read_entries().is_empty())
    }

    /// Aggregate hit/miss counters across every evaluator using this cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Per-shard occupancy and counters, in shard order — the raw feed for
    /// the campaign telemetry gauges.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| ShardStats {
                entries: shard.read_entries().len(),
                hits: shard.hits.load(Ordering::Relaxed),
                misses: shard.misses.load(Ordering::Relaxed),
                contended: shard.contended.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Total lock acquisitions across all shards that found the shard lock
    /// already held.
    pub fn contended(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.contended.load(Ordering::Relaxed))
            .sum()
    }

    /// Total entries added through snapshot absorption
    /// ([`EvalCache::absorb`](crate::snapshot)) — how much of the cache
    /// came from warm starts rather than this run's evaluations.
    pub fn absorbed(&self) -> u64 {
        self.absorbed.load(Ordering::Relaxed)
    }

    pub(crate) fn record_absorbed(&self, added: usize) {
        self.absorbed.fetch_add(added as u64, Ordering::Relaxed);
    }

    fn get(&self, key: &CacheKey) -> Option<FairnessEvaluation> {
        let shard = self.shard_for(key);
        let hit = shard.read_entries().get(key).cloned();
        if hit.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record_touch(shard, *key);
        }
        hit
    }

    /// Counts a miss against the global and per-shard counters. Callers
    /// invoke this only after the inner evaluation *succeeded*, so the
    /// serialized [`CacheStats`] keep meaning "lookups that evaluated".
    fn note_miss(&self, key: &CacheKey) {
        self.shard_for(key).misses.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn insert(&self, key: CacheKey, evaluation: FairnessEvaluation) {
        let shard = self.shard_for(&key);
        shard.write_entries().insert(key, evaluation);
        self.record_touch(shard, key);
    }

    /// Copies every entry out, for snapshotting (see [`crate::snapshot`]).
    /// Order follows shard iteration and is not deterministic; snapshot
    /// encoding sorts by key before serialising.
    pub(crate) fn export_entries(&self) -> Vec<(CacheKey, FairnessEvaluation)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let entries = shard.read_entries();
            out.extend(
                entries
                    .iter()
                    .map(|(key, evaluation)| (*key, evaluation.clone())),
            );
        }
        out
    }

    /// Inserts entries that are not already memoised (existing entries
    /// win, so a warm-start can never change live results). Returns the
    /// number of entries actually added.
    pub(crate) fn import_entries(
        &self,
        entries: impl IntoIterator<Item = (CacheKey, FairnessEvaluation)>,
    ) -> usize {
        // bucket by shard first so each shard lock is taken at most once
        let mut buckets: Vec<Vec<(CacheKey, FairnessEvaluation)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (key, evaluation) in entries {
            buckets[(key.hi as usize) & self.mask].push((key, evaluation));
        }
        let mut added = 0;
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            let mut map = shard.write_entries();
            for (key, evaluation) in bucket {
                if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(key) {
                    slot.insert(evaluation);
                    added += 1;
                }
            }
        }
        added
    }
}

/// An [`Evaluate`] decorator that memoises its inner evaluator through a
/// shared [`EvalCache`].
///
/// Clones share the cache *and* this instance's local hit/miss counters,
/// so a scenario that fans one logical evaluator out across pool workers
/// still reports one coherent per-scenario hit-rate.
#[derive(Debug, Clone)]
pub struct CachedEvaluator<E> {
    inner: E,
    cache: Arc<EvalCache>,
    evaluator_fingerprint: u64,
    local_hits: Arc<AtomicU64>,
    local_misses: Arc<AtomicU64>,
}

impl<E> CachedEvaluator<E> {
    /// Wraps `inner`, namespacing its entries under
    /// `evaluator_fingerprint` (hash whatever configuration distinguishes
    /// two evaluators that would disagree about the same architecture).
    pub fn new(inner: E, cache: Arc<EvalCache>, evaluator_fingerprint: u64) -> Self {
        CachedEvaluator {
            inner,
            cache,
            evaluator_fingerprint,
            local_hits: Arc::new(AtomicU64::new(0)),
            local_misses: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// Hit/miss counters of this evaluator (shared with its clones),
    /// independent of other evaluators using the same cache.
    pub fn local_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.local_hits.load(Ordering::Relaxed),
            misses: self.local_misses.load(Ordering::Relaxed),
        }
    }
}

impl CachedEvaluator<SurrogateEvaluator> {
    /// Wraps a surrogate, fingerprinting its full configuration so
    /// surrogates calibrated on different datasets or seeds never share
    /// entries.
    pub fn surrogate(inner: SurrogateEvaluator, cache: Arc<EvalCache>) -> Self {
        let config = *inner.config();
        let mut fp = Fingerprint::new();
        fp.write_f64(config.minority_fraction);
        fp.write_f64(config.imbalance_ratio);
        fp.write_f64(config.reference_imbalance);
        fp.write_f64(config.noise_scale);
        fp.write_u64(config.seed);
        let (lo, hi) = fp.finish();
        CachedEvaluator::new(inner, cache, lo ^ hi.rotate_left(31))
    }
}

impl<E: Evaluate> Evaluate for CachedEvaluator<E> {
    fn evaluate_with_frozen(
        &mut self,
        arch: &Architecture,
        frozen_blocks: usize,
    ) -> evaluator::Result<FairnessEvaluation> {
        let key = CacheKey::for_request(self.evaluator_fingerprint, arch, frozen_blocks);
        if let Some(hit) = self.cache.get(&key) {
            self.local_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let evaluation = self.inner.evaluate_with_frozen(arch, frozen_blocks)?;
        self.cache.note_miss(&key);
        self.local_misses.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key, evaluation.clone());
        Ok(evaluation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archspace::zoo;
    use evaluator::SurrogateConfig;

    #[test]
    fn cached_results_are_bit_identical_to_uncached() {
        let cache = Arc::new(EvalCache::new());
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        let mut plain = SurrogateEvaluator::default();
        for arch in [zoo::paper_fahana_small(5, 64), zoo::mobilenet_v2(5, 64)] {
            // miss, then hit — all three must agree exactly
            let first = cached.evaluate_with_frozen(&arch, 2).unwrap();
            let second = cached.evaluate_with_frozen(&arch, 2).unwrap();
            let reference = plain.evaluate_with_frozen(&arch, 2).unwrap();
            assert_eq!(first, reference);
            assert_eq!(second, reference);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(cache.len(), 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn frozen_block_count_is_part_of_the_key() {
        let cache = Arc::new(EvalCache::new());
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        let arch = zoo::mobilenet_v2(5, 64);
        let frozen0 = cached.evaluate_with_frozen(&arch, 0).unwrap();
        let frozen5 = cached.evaluate_with_frozen(&arch, 5).unwrap();
        assert_ne!(frozen0.trained_params, frozen5.trained_params);
        assert_eq!(
            cache.stats().misses,
            2,
            "different frozen counts must not alias"
        );
    }

    #[test]
    fn different_surrogate_configs_do_not_alias() {
        let cache = Arc::new(EvalCache::new());
        let unbalanced = SurrogateEvaluator::default();
        let balanced = SurrogateEvaluator::new(SurrogateConfig {
            imbalance_ratio: 1.1,
            ..SurrogateConfig::default()
        });
        let arch = zoo::mobilenet_v2(5, 64);
        let mut a = CachedEvaluator::surrogate(unbalanced, cache.clone());
        let mut b = CachedEvaluator::surrogate(balanced, cache.clone());
        let from_a = a.evaluate_with_frozen(&arch, 0).unwrap();
        let from_b = b.evaluate_with_frozen(&arch, 0).unwrap();
        assert_ne!(from_a.report, from_b.report);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clones_share_cache_and_local_counters() {
        let cache = Arc::new(EvalCache::new());
        let original = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache);
        let mut clone = original.clone();
        let arch = zoo::paper_fahana_small(5, 64);
        clone.evaluate_with_frozen(&arch, 0).unwrap();
        clone.evaluate_with_frozen(&arch, 0).unwrap();
        assert_eq!(original.local_stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(original.cache().len(), 1);
    }

    #[test]
    fn architecture_name_participates_in_the_key() {
        // the surrogate's noise depends on the name, so two structurally
        // equal children with different names are different cache entries
        let cache = Arc::new(EvalCache::new());
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        let mut a = zoo::paper_fahana_small(5, 64);
        a.set_name("child-a");
        let mut b = zoo::paper_fahana_small(5, 64);
        b.set_name("child-b");
        cached.evaluate_with_frozen(&a, 0).unwrap();
        cached.evaluate_with_frozen(&b, 0).unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn tracking_records_consulted_keys_only_when_enabled() {
        assert!(!EvalCache::new().is_tracking());
        assert!(EvalCache::new().touched_entries().is_none());

        let cache = Arc::new(EvalCache::with_tracking());
        assert!(cache.is_tracking());
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        let arch = zoo::paper_fahana_small(5, 64);
        cached.evaluate_with_frozen(&arch, 0).unwrap(); // miss: inserted → touched
        cached.evaluate_with_frozen(&arch, 0).unwrap(); // hit: same key
        let touched = cache.touched_entries().unwrap();
        assert_eq!(touched.len(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalCache>();
        assert_send_sync::<CachedEvaluator<SurrogateEvaluator>>();
        assert_send_sync::<CacheStats>();
    }

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        assert_eq!(EvalCache::new().shard_count(), DEFAULT_CACHE_SHARDS);
        assert_eq!(EvalCache::with_shards(1).shard_count(), 1);
        assert_eq!(EvalCache::with_shards(3).shard_count(), 4);
        assert_eq!(EvalCache::with_shards(16).shard_count(), 16);
        assert_eq!(EvalCache::with_shards(0).shard_count(), 1);
    }

    #[test]
    fn shard_stats_sum_to_global_stats() {
        let cache = Arc::new(EvalCache::with_shards(4));
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        for (i, arch) in [
            zoo::paper_fahana_small(5, 64),
            zoo::paper_fahana_fair(5, 64),
            zoo::mobilenet_v2(5, 64),
        ]
        .into_iter()
        .enumerate()
        {
            cached.evaluate_with_frozen(&arch, 0).unwrap();
            cached.evaluate_with_frozen(&arch, i).unwrap();
        }
        let shards = cache.shard_stats();
        assert_eq!(shards.len(), 4);
        let stats = cache.stats();
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), stats.hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), stats.misses);
        assert_eq!(shards.iter().map(|s| s.entries).sum::<usize>(), cache.len());
    }

    #[test]
    fn single_shard_cache_behaves_like_the_sharded_default() {
        let arch = zoo::paper_fahana_small(5, 64);
        let one = Arc::new(EvalCache::with_shards(1));
        let many = Arc::new(EvalCache::with_shards(32));
        let mut a = CachedEvaluator::surrogate(SurrogateEvaluator::default(), one.clone());
        let mut b = CachedEvaluator::surrogate(SurrogateEvaluator::default(), many.clone());
        let from_one = a.evaluate_with_frozen(&arch, 0).unwrap();
        let from_many = b.evaluate_with_frozen(&arch, 0).unwrap();
        assert_eq!(from_one, from_many);
        assert_eq!(one.stats(), many.stats());
        assert_eq!(one.len(), many.len());
    }

    #[test]
    fn tracking_cache_with_explicit_shards_records_touches() {
        let cache = Arc::new(EvalCache::with_shards_tracking(8));
        assert!(cache.is_tracking());
        let mut cached = CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache.clone());
        cached
            .evaluate_with_frozen(&zoo::paper_fahana_small(5, 64), 0)
            .unwrap();
        cached
            .evaluate_with_frozen(&zoo::mobilenet_v2(5, 64), 0)
            .unwrap();
        assert_eq!(cache.touched_entries().unwrap().len(), 2);
    }

    #[test]
    fn concurrent_lookups_agree_across_shards() {
        let cache = Arc::new(EvalCache::with_shards(4));
        let archs: Vec<_> = (0..12)
            .map(|i| {
                let mut a = zoo::paper_fahana_small(5, 64);
                a.set_name(format!("concurrent-{i}"));
                a
            })
            .collect();
        let mut serial = SurrogateEvaluator::default();
        let expected: Vec<_> = archs
            .iter()
            .map(|a| serial.evaluate_with_frozen(a, 0).unwrap())
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = cache.clone();
                let archs = archs.clone();
                std::thread::spawn(move || {
                    let mut cached =
                        CachedEvaluator::surrogate(SurrogateEvaluator::default(), cache);
                    archs
                        .iter()
                        .map(|a| cached.evaluate_with_frozen(a, 0).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), expected);
        }
        assert_eq!(cache.len(), archs.len());
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * archs.len() as u64);
    }
}
