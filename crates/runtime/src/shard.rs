//! Partitioning of campaign plans into shards: stable name-hash slices
//! and explicit cell-set assignments.
//!
//! A campaign grid is embarrassingly parallel: every cell is an
//! independent search, and cache snapshots ([`crate::CacheSnapshot`]) and
//! campaign reports ([`crate::CampaignReport`]) both merge. This module
//! supplies the partitioning half of the plan → partition → execute →
//! merge pipeline, in two forms unified by [`ShardAssignment`]:
//!
//! * [`ShardSpec`] names one shard of `N`, and [`shard_of`] assigns every
//!   scenario to exactly one shard by hashing its *name* — not its
//!   position — so adding or removing grid cells never reshuffles the
//!   cells that stayed. This is the default partition: workers need
//!   nothing but the config and `I/N`.
//! * [`CellAssignment`] is an explicit set of cell names — any subset of
//!   the plan, handed to any worker. This is what fault-tolerant
//!   rescheduling needs: when a shard's worker dies for good, its
//!   unfinished cells are rebalanced across replacement workers as
//!   explicit assignments (`fahana-campaign --cells FILE`) that no hash
//!   could describe.
//!
//! The hash assignment must be stable across processes, machines and
//! releases (a coordinator and its workers may not even share a binary),
//! so it uses a fixed FNV-1a hash rather than `std::hash`, whose output
//! is deliberately unstable.

use std::str::FromStr;

use crate::scenario::Scenario;
use crate::RuntimeError;

/// One shard of an `N`-way partition: `index` in `0..total`.
///
/// The CLI surface is 1-based (`--shard 1/3` … `--shard 3/3`, matching
/// how people count workers); the in-memory form is 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    index: usize,
    total: usize,
}

impl ShardSpec {
    /// A shard handle with 0-based `index` out of `total`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] when `total` is zero or `index`
    /// is out of range.
    pub fn new(index: usize, total: usize) -> crate::Result<Self> {
        if total == 0 {
            return Err(RuntimeError::InvalidConfig(
                "shard count must be positive".into(),
            ));
        }
        if index >= total {
            return Err(RuntimeError::InvalidConfig(format!(
                "shard index {index} out of range for {total} shards"
            )));
        }
        Ok(ShardSpec { index, total })
    }

    /// 0-based shard index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of shards in the partition.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether this shard owns the scenario.
    pub fn owns(&self, scenario: &Scenario) -> bool {
        shard_of(&scenario.name, self.total) == self.index
    }
}

impl FromStr for ShardSpec {
    type Err = RuntimeError;

    /// Parses the CLI form `I/N` with 1-based `I` (e.g. `2/3`).
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let bad = || {
            RuntimeError::InvalidConfig(format!(
                "shard spec `{text}` must look like I/N with 1 <= I <= N"
            ))
        };
        let (index, total) = text.split_once('/').ok_or_else(bad)?;
        let index: usize = index.trim().parse().map_err(|_| bad())?;
        let total: usize = total.trim().parse().map_err(|_| bad())?;
        if index == 0 {
            return Err(bad());
        }
        ShardSpec::new(index - 1, total).map_err(|_| bad())
    }
}

impl std::fmt::Display for ShardSpec {
    /// Renders the CLI form (`2/3` for index 1 of 3).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.total)
    }
}

/// An explicit set of plan cells (scenario names) assigned to one
/// worker.
///
/// The text form is one cell name per line; blank lines and `#` comments
/// are ignored, so assignment files stay hand-editable and
/// coordinator-annotatable. An empty assignment is valid (a replacement
/// worker may end up with nothing when there are more survivors than
/// unfinished cells); duplicate names are rejected — one cell must never
/// run twice within one assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellAssignment {
    cells: Vec<String>,
}

impl CellAssignment {
    /// An assignment over the given cell names (kept in the given order).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] when a name appears twice.
    pub fn new(cells: Vec<String>) -> crate::Result<Self> {
        let mut seen = std::collections::BTreeSet::new();
        for cell in &cells {
            if !seen.insert(cell.as_str()) {
                return Err(RuntimeError::InvalidConfig(format!(
                    "cell `{cell}` appears twice in the assignment"
                )));
            }
        }
        Ok(CellAssignment { cells })
    }

    /// Parses the text form (one name per line, `#` comments, blank lines
    /// ignored).
    ///
    /// # Errors
    ///
    /// As [`CellAssignment::new`].
    pub fn parse(text: &str) -> crate::Result<Self> {
        CellAssignment::new(
            text.lines()
                .map(str::trim)
                .filter(|line| !line.is_empty() && !line.starts_with('#'))
                .map(str::to_string)
                .collect(),
        )
    }

    /// Renders the text form [`CellAssignment::parse`] inverts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(cell);
            out.push('\n');
        }
        out
    }

    /// The assigned cell names, in assignment order.
    pub fn cells(&self) -> &[String] {
        &self.cells
    }

    /// Number of assigned cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the assignment holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// How a worker's share of the plan is expressed: the generalization from
/// pure hash partitions to arbitrary cell sets.
///
/// [`crate::CampaignPlan::slice_assignment`] resolves either form to the
/// concrete scenarios, and `fahana-campaign` accepts either on the CLI
/// (`--shard I/N` or `--cells FILE`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardAssignment {
    /// One slice of the stable name-hash partition.
    Hash(ShardSpec),
    /// An explicit cell set chosen by a coordinator.
    Cells(CellAssignment),
}

impl std::fmt::Display for ShardAssignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardAssignment::Hash(spec) => write!(f, "shard {spec}"),
            ShardAssignment::Cells(cells) => {
                write!(f, "explicit assignment ({} cells)", cells.len())
            }
        }
    }
}

/// The shard (0-based, `< total`) that owns a scenario name.
///
/// Stable FNV-1a over the name's bytes (the same
/// [`fnv1a`](crate::snapshot) the snapshot checksum uses — frozen by
/// contract, and the assignment itself is pinned by literal values in
/// this module's tests): the same name always lands on the same shard,
/// on every platform and in every release.
pub fn shard_of(scenario_name: &str, total: usize) -> usize {
    debug_assert!(total > 0, "shard_of needs a positive shard count");
    (crate::snapshot::fnv1a(scenario_name.as_bytes()) % total as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CampaignConfig;

    #[test]
    fn specs_parse_the_one_based_cli_form() {
        let spec: ShardSpec = "2/3".parse().unwrap();
        assert_eq!(spec.index(), 1);
        assert_eq!(spec.total(), 3);
        assert_eq!(spec.to_string(), "2/3");
        assert_eq!(
            "1/1".parse::<ShardSpec>().unwrap(),
            ShardSpec::new(0, 1).unwrap()
        );
        for bad in ["", "3", "0/3", "4/3", "a/b", "1/0", "1//2"] {
            assert!(
                bad.parse::<ShardSpec>().is_err(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn construction_rejects_out_of_range_shards() {
        assert!(ShardSpec::new(0, 0).is_err());
        assert!(ShardSpec::new(3, 3).is_err());
        assert!(ShardSpec::new(2, 3).is_ok());
    }

    #[test]
    fn every_scenario_lands_on_exactly_one_shard() {
        let scenarios = CampaignConfig::default().expand();
        for total in [1usize, 2, 3, 5, 8, 13] {
            for scenario in &scenarios {
                let owners: Vec<usize> = (0..total)
                    .filter(|&index| ShardSpec::new(index, total).unwrap().owns(scenario))
                    .collect();
                assert_eq!(
                    owners.len(),
                    1,
                    "{} must have exactly one owner of {total}, got {owners:?}",
                    scenario.name
                );
                assert_eq!(owners[0], shard_of(&scenario.name, total));
            }
        }
    }

    #[test]
    fn cell_assignments_round_trip_and_reject_duplicates() {
        let assignment = CellAssignment::parse(
            "# rebalanced by fahana-shard\n\
             raspberry_pi_4/balanced/frozen\n\
             \n\
             odroid_xu4/balanced/full\n",
        )
        .unwrap();
        assert_eq!(
            assignment.cells(),
            [
                "raspberry_pi_4/balanced/frozen".to_string(),
                "odroid_xu4/balanced/full".to_string(),
            ]
        );
        assert_eq!(assignment.len(), 2);
        assert!(!assignment.is_empty());
        // render → parse is lossless (comments and blanks aside)
        assert_eq!(
            CellAssignment::parse(&assignment.render()).unwrap(),
            assignment
        );

        // empty assignments are valid (a replacement worker may get none)
        let empty = CellAssignment::parse("# nothing left\n").unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.render(), "");

        let err = CellAssignment::parse("a/b/c\na/b/c\n").unwrap_err();
        assert!(err.to_string().contains("appears twice"), "{err}");
    }

    #[test]
    fn shard_assignments_describe_themselves() {
        let hash = ShardAssignment::Hash("2/3".parse().unwrap());
        assert_eq!(hash.to_string(), "shard 2/3");
        let cells = ShardAssignment::Cells(
            CellAssignment::new(vec!["a/b/c".into(), "d/e/f".into()]).unwrap(),
        );
        assert_eq!(cells.to_string(), "explicit assignment (2 cells)");
    }

    #[test]
    fn assignment_is_pinned() {
        // pinned values: the partition is part of the on-the-wire contract
        // between coordinator and workers (which may run different builds
        // on different machines), so it must never drift
        for (name, at2, at3, at8) in [
            ("raspberry_pi_4/balanced/frozen", 0, 1, 2),
            ("raspberry_pi_4/balanced/full", 1, 2, 5),
            ("raspberry_pi_4/fairness_heavy/frozen", 1, 0, 5),
            ("raspberry_pi_4/fairness_heavy/full", 0, 0, 6),
            ("odroid_xu4/balanced/frozen", 0, 0, 6),
            ("odroid_xu4/balanced/full", 1, 0, 1),
            ("odroid_xu4/fairness_heavy/frozen", 1, 0, 1),
            ("odroid_xu4/fairness_heavy/full", 0, 2, 2),
        ] {
            assert_eq!(shard_of(name, 2), at2, "{name} at N=2");
            assert_eq!(shard_of(name, 3), at3, "{name} at N=3");
            assert_eq!(shard_of(name, 8), at8, "{name} at N=8");
        }
    }
}
