//! A std-only work-stealing thread pool with a helping `map`.
//!
//! Design constraints, in order:
//!
//! 1. **No external dependencies** — the build environment has no registry
//!    access, so no rayon/crossbeam. Everything here is `std`.
//! 2. **Nested parallelism must not deadlock.** A campaign fans scenarios
//!    out on the pool, and each scenario may fan its episode batches out on
//!    the *same* pool. [`ThreadPool::map`] therefore never blocks idly: the
//!    calling thread joins the workforce and executes queued jobs (its own
//!    or anyone else's) until its batch completes.
//! 3. **Deterministic results.** Jobs write into index-addressed slots, so
//!    scheduling order never changes what `map` returns.
//!
//! Topology: one injector queue plus one deque per worker. `map` deals its
//! jobs round-robin across the worker deques; a worker pops its own deque
//! from the back (LIFO, cache-warm) and steals from the injector or other
//! workers' fronts (FIFO, oldest first) when empty.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queues: Vec<Mutex<VecDeque<Job>>>,
    injector: Mutex<VecDeque<Job>>,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Jobs a worker popped off its *own* deque (cache-warm path).
    local_pops: AtomicU64,
    /// Jobs taken from the shared injector queue.
    injector_pops: AtomicU64,
    /// Jobs stolen from another worker's deque.
    steals: AtomicU64,
}

impl PoolState {
    /// Pops one runnable job: the worker's own deque first (LIFO), then the
    /// injector, then the other workers' deques (FIFO steal).
    fn pop_any(&self, own: Option<usize>) -> Option<Job> {
        if let Some(me) = own {
            if let Some(job) = self.queues[me].lock().expect("queue poisoned").pop_back() {
                self.local_pops.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("injector poisoned").pop_front() {
            self.injector_pops.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
        let n = self.queues.len();
        let start = own.map(|me| me + 1).unwrap_or(0);
        for offset in 0..n {
            let victim = (start + offset) % n;
            if Some(victim) == own {
                continue;
            }
            if let Some(job) = self.queues[victim]
                .lock()
                .expect("queue poisoned")
                .pop_front()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Jobs currently queued (all worker deques plus the injector) —
    /// the pool's live backlog, exported as a gauge.
    fn queue_depth(&self) -> usize {
        let queued: usize = self
            .queues
            .iter()
            .map(|queue| queue.lock().expect("queue poisoned").len())
            .sum();
        queued + self.injector.lock().expect("injector poisoned").len()
    }

    fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.queues.len(),
            local_pops: self.local_pops.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the pool's scheduling counters.
///
/// `local_pops + injector_pops + steals` is the total number of jobs the
/// pool has executed; the steal share shows how often work had to migrate
/// off the deque it was dealt to (high steal ratios mean uneven job
/// costs — exactly what scenario grids with mixed device profiles
/// produce).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker thread count.
    pub threads: usize,
    /// Jobs a worker popped from its own deque.
    pub local_pops: u64,
    /// Jobs taken from the shared injector queue.
    pub injector_pops: u64,
    /// Jobs stolen from another worker's deque.
    pub steals: u64,
}

impl PoolStats {
    /// Total jobs executed through any path.
    pub fn executed(&self) -> u64 {
        self.local_pops + self.injector_pops + self.steals
    }
}

/// A cheap, cloneable observer of a pool's counters and live queue depth.
///
/// Holds only the shared state (not the worker handles), so a monitor in
/// a long-lived context — a serve connection, a metrics scrape — never
/// keeps the pool alive or risks a worker joining itself through an
/// `Arc<ThreadPool>` drop.
#[derive(Debug, Clone)]
pub struct PoolMonitor {
    state: Arc<PoolState>,
}

impl PoolMonitor {
    /// Current scheduling counters.
    pub fn stats(&self) -> PoolStats {
        self.state.stats()
    }

    /// Jobs currently queued and not yet started.
    pub fn queue_depth(&self) -> usize {
        self.state.queue_depth()
    }
}

/// A fixed-size work-stealing thread pool.
///
/// # Example
///
/// ```
/// use fahana_runtime::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.map((0..100u64).collect(), |_, n| n * n);
/// assert_eq!(squares[7], 49);
/// ```
#[derive(Debug)]
pub struct ThreadPool {
    state: Arc<PoolState>,
    workers: Vec<JoinHandle<()>>,
    next_queue: AtomicUsize,
}

impl std::fmt::Debug for PoolState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolState")
            .field("workers", &self.queues.len())
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let state = Arc::new(PoolState {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            local_pops: AtomicU64::new(0),
            injector_pops: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|me| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("fahana-worker-{me}"))
                    .spawn(move || Self::worker_loop(&state, me))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        ThreadPool {
            state,
            workers,
            next_queue: AtomicUsize::new(0),
        }
    }

    /// A pool sized to the machine (`available_parallelism`, at least 2).
    pub fn with_default_size() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2);
        ThreadPool::new(threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.state.queues.len()
    }

    /// A snapshot of the pool's scheduling counters.
    pub fn stats(&self) -> PoolStats {
        self.state.stats()
    }

    /// Jobs currently queued and not yet started.
    pub fn queue_depth(&self) -> usize {
        self.state.queue_depth()
    }

    /// A detached observer of this pool's counters (safe to hold in
    /// contexts that must not own the pool itself).
    pub fn monitor(&self) -> PoolMonitor {
        PoolMonitor {
            state: Arc::clone(&self.state),
        }
    }

    fn worker_loop(state: &PoolState, me: usize) {
        loop {
            if let Some(job) = state.pop_any(Some(me)) {
                // a panicking job must not kill the worker; map() re-raises
                // panics on the submitting thread
                let _ = catch_unwind(AssertUnwindSafe(job));
                continue;
            }
            if state.shutdown.load(Ordering::Acquire) {
                return;
            }
            let guard = state.sleep.lock().expect("sleep lock poisoned");
            // timed wait: a notification racing ahead of this wait only
            // costs one timeout, never a hang
            let _ = state
                .wake
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("sleep lock poisoned");
        }
    }

    /// Enqueues a fire-and-forget job.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.state
            .injector
            .lock()
            .expect("injector poisoned")
            .push_back(Box::new(job));
        self.state.wake.notify_all();
    }

    /// Applies `f` to every item concurrently and returns the results in
    /// item order.
    ///
    /// The calling thread helps drain the pool while it waits, so `map` may
    /// be invoked from inside a pool job (nested fan-out) without
    /// deadlocking. If `f` panics for any item, the panic is re-raised here
    /// after the whole batch has settled.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        let total = items.len();
        if total == 0 {
            return Vec::new();
        }
        let f = Arc::new(f);
        let results: Arc<Mutex<Vec<Option<std::thread::Result<R>>>>> =
            Arc::new(Mutex::new((0..total).map(|_| None).collect()));
        let pending = Arc::new(AtomicUsize::new(total));

        for (index, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let results = Arc::clone(&results);
            let pending = Arc::clone(&pending);
            let job: Job = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| f(index, item)));
                results.lock().expect("result slots poisoned")[index] = Some(outcome);
                pending.fetch_sub(1, Ordering::AcqRel);
            });
            let queue = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.threads();
            self.state.queues[queue]
                .lock()
                .expect("queue poisoned")
                .push_back(job);
        }
        self.state.wake.notify_all();

        // helping join: work instead of waiting
        while pending.load(Ordering::Acquire) > 0 {
            match self.state.pop_any(None) {
                Some(job) => {
                    let _ = catch_unwind(AssertUnwindSafe(job));
                }
                None => std::thread::sleep(Duration::from_micros(50)),
            }
        }

        let mut slots = results.lock().expect("result slots poisoned");
        slots
            .iter_mut()
            .map(|slot| match slot.take().expect("every slot is filled") {
                Ok(value) => value,
                Err(panic) => resume_unwind(panic),
            })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.wake.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn map_preserves_item_order() {
        let pool = ThreadPool::new(4);
        let doubled = pool.map((0..256u64).collect(), |_, n| n * 2);
        assert_eq!(doubled.len(), 256);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn map_runs_on_multiple_threads() {
        let pool = ThreadPool::new(4);
        let names = pool.map((0..64).collect::<Vec<u32>>(), |_, _| {
            std::thread::sleep(Duration::from_millis(2));
            std::thread::current()
                .name()
                .unwrap_or("caller")
                .to_string()
        });
        let distinct: HashSet<&String> = names.iter().collect();
        assert!(
            distinct.len() >= 2,
            "64 sleepy jobs should spread over >1 thread, saw {distinct:?}"
        );
    }

    #[test]
    fn nested_map_does_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(2));
        let inner_pool = Arc::clone(&pool);
        // more outer jobs than workers, each fanning out again on the pool
        let sums = pool.map((0..8u64).collect(), move |_, outer| {
            inner_pool
                .map((0..16u64).collect(), move |_, inner| outer * inner)
                .into_iter()
                .sum::<u64>()
        });
        for (outer, sum) in sums.iter().enumerate() {
            assert_eq!(*sum, outer as u64 * (0..16).sum::<u64>());
        }
    }

    #[test]
    fn map_propagates_panics_without_poisoning_the_pool() {
        let pool = ThreadPool::new(2);
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..8u32).collect(), |_, n| {
                if n == 3 {
                    panic!("job 3 exploded");
                }
                n
            })
        }));
        assert!(panicked.is_err());
        // the pool is still operational afterwards
        let ok = pool.map((0..8u32).collect(), |_, n| n + 1);
        assert_eq!(ok[7], 8);
    }

    #[test]
    fn spawn_executes_fire_and_forget_jobs() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counter.load(Ordering::Relaxed) < 32 {
            assert!(std::time::Instant::now() < deadline, "spawned jobs stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn stats_account_for_every_executed_job() {
        let pool = ThreadPool::new(3);
        let monitor = pool.monitor();
        assert_eq!(monitor.stats(), PoolStats::default().with_threads(3));

        pool.map((0..128u64).collect(), |_, n| {
            if n % 7 == 0 {
                std::thread::sleep(Duration::from_micros(200)); // uneven costs invite steals
            }
            n
        });
        let stats = monitor.stats();
        assert_eq!(stats.threads, 3);
        assert_eq!(
            stats.executed(),
            128,
            "every dealt job pops exactly once: {stats:?}"
        );
        // with the batch drained, nothing is left queued
        assert_eq!(monitor.queue_depth(), 0);

        // spawned jobs go through the injector
        let before = monitor.stats().injector_pops;
        let done = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&done);
        pool.spawn(move || {
            flag.fetch_add(1, Ordering::Relaxed);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::Relaxed) == 0 {
            assert!(std::time::Instant::now() < deadline, "spawned job stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(monitor.stats().injector_pops > before);
    }

    impl PoolStats {
        fn with_threads(mut self, threads: usize) -> PoolStats {
            self.threads = threads;
            self
        }
    }

    #[test]
    fn zero_threads_clamps_to_one_and_empty_map_returns_immediately() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let empty: Vec<u8> = pool.map(Vec::<u8>::new(), |_, b| b);
        assert!(empty.is_empty());
    }
}
