//! Crash-safe filesystem helpers shared by the binaries and the
//! persistence layers.
//!
//! Every durable artifact in this workspace — campaign reports, cache
//! snapshots, store catalogs — must never be observable half-written: a
//! worker killed mid-write would otherwise leave a torn file that a
//! retrying coordinator parses (or mis-diagnoses as corruption) on its
//! next pass. [`write_atomic`] is the one implementation of the staging
//! idiom: write the full contents to a uniquely named hidden sibling,
//! then rename it over the destination. Rename is atomic on POSIX
//! filesystems, so readers see either the old file or the complete new
//! one, never a prefix.
//!
//! The temporary name embeds the process id and a per-process counter, so
//! concurrent writers (several workers sharing a directory, or a retry
//! racing a straggler from a previous attempt) never stage into each
//! other's files. The leading dot matches the `.*.tmp` convention the
//! artifact store sweeps on open, so residue from a crashed writer is
//! garbage-collected rather than accumulated.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process staging counter: distinguishes concurrent writes from one
/// process the pid alone cannot.
static STAGING_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` atomically: the bytes are staged to a
/// unique hidden `.NAME.PID-SEQ.tmp` sibling and renamed into place, so
/// no reader — and no crash at any instant — ever observes a partially
/// written file at `path`.
///
/// # Errors
///
/// Any underlying `std::io::Error` from writing the staging file or
/// renaming it.
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "cannot write atomically to `{}`: no file name",
                path.display()
            ),
        )
    })?;
    let mut staged_name = std::ffi::OsString::from(".");
    staged_name.push(name);
    staged_name.push(format!(
        ".{}-{}.tmp",
        std::process::id(),
        STAGING_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let staged = path.with_file_name(staged_name);
    std::fs::write(&staged, contents)?;
    match std::fs::rename(&staged, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // the rename failed, so the staging file is orphaned — remove
            // it rather than leaking one per failed attempt
            std::fs::remove_file(&staged).ok();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_writes_land_complete_and_leave_no_residue() {
        let dir = std::env::temp_dir().join(format!("fahana-fsutil-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");

        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        // overwrite is equally atomic
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");

        // no staging residue survives a successful write
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "staging files leaked: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pathless_destinations_are_rejected() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}
