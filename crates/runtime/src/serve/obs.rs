//! Serve-side observability: per-endpoint request accounting behind
//! `GET /metrics` (Prometheus text) and `GET /statusz` (JSON).
//!
//! Endpoint labels are normalized to a fixed vocabulary (every
//! `/leaderboard/<device>` collapses to one label, unknown paths to
//! `other`), so a hostile client scanning random paths cannot balloon the
//! registry's cardinality.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::pool::PoolMonitor;
use crate::report::Json;
use crate::serve::cache::ResponseCache;
use crate::serve::view::StoreView;
use crate::telemetry::{Counter, Gauge, Histogram, Telemetry};

/// The reactor's hot-path instruments, resolved once at spawn so the
/// event loop never touches the registry lock per event.
#[derive(Debug, Clone)]
pub struct ReactorInstruments {
    /// `fahana_serve_parked_connections`: connections watched by the
    /// reactor without occupying a pool worker.
    pub parked: Gauge,
    /// `fahana_serve_reactor_wakeups_total`: loop iterations.
    pub wakeups: Counter,
    /// `fahana_serve_reactor_dispatches_total`: requests handed to the pool.
    pub dispatches: Counter,
    /// `fahana_serve_reactor_partial_writes_total`: WOULDBLOCK re-arms.
    pub partial_writes: Counter,
}

/// The server's telemetry context: the shared bundle plus serve-specific
/// bookkeeping (uptime epoch, per-endpoint histograms, the pool monitor
/// and response cache polled at scrape time).
#[derive(Debug)]
pub struct ServeTelemetry {
    telemetry: Telemetry,
    started: Instant,
    pool: Option<PoolMonitor>,
    /// The response cache whose hit/miss/eviction counters are mirrored
    /// into the registry at scrape time (same pattern as the pool).
    cache: Option<Arc<ResponseCache>>,
    /// Endpoint → its latency histogram, kept here (as well as in the
    /// registry) so `/statusz` can answer percentiles without re-parsing
    /// the Prometheus rendering.
    latencies: Mutex<BTreeMap<&'static str, Histogram>>,
}

/// Collapses a request path onto the bounded endpoint vocabulary used as
/// the `endpoint` label.
pub fn normalize_endpoint(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/query" => "/query",
        "/campaigns" => "/campaigns",
        "/catalog" => "/catalog",
        "/ingest" => "/ingest",
        "/metrics" => "/metrics",
        "/statusz" => "/statusz",
        path if path.starts_with("/leaderboard/") => "/leaderboard/{device}",
        _ => "other",
    }
}

impl ServeTelemetry {
    /// Wraps a telemetry bundle for serve-side use. `pool` and `cache`
    /// (when given) are polled at scrape time for queue depth, scheduling
    /// counters, and response-cache hit/miss/eviction totals.
    pub fn new(
        telemetry: Telemetry,
        pool: Option<PoolMonitor>,
        cache: Option<Arc<ResponseCache>>,
    ) -> ServeTelemetry {
        ServeTelemetry {
            telemetry,
            started: Instant::now(),
            pool,
            cache,
            latencies: Mutex::new(BTreeMap::new()),
        }
    }

    /// A context with a fresh registry and no trace sink.
    pub fn disabled() -> ServeTelemetry {
        ServeTelemetry::new(Telemetry::disabled(), None, None)
    }

    /// The underlying bundle (for trace access).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Records one served request: the per-endpoint counter and latency
    /// histogram, plus body byte totals.
    pub fn record_request(
        &self,
        path: &str,
        status: u16,
        duration: Duration,
        bytes_in: usize,
        bytes_out: usize,
    ) {
        let endpoint = normalize_endpoint(path);
        let metrics = self.telemetry.metrics();
        metrics
            .counter_with(
                "fahana_http_requests_total",
                "requests served, by endpoint and status",
                &[("endpoint", endpoint), ("status", &status.to_string())],
            )
            .inc();
        let latency = metrics.histogram_with(
            "fahana_http_request_ms",
            "request handling latency, by endpoint",
            &[("endpoint", endpoint)],
        );
        latency.observe(duration);
        super::unpoison(self.latencies.lock())
            .entry(endpoint)
            .or_insert(latency);
        metrics
            .counter(
                "fahana_http_request_body_bytes_total",
                "request body bytes received",
            )
            .add(bytes_in as u64);
        metrics
            .counter(
                "fahana_http_response_bytes_total",
                "response bytes written (head and body)",
            )
            .add(bytes_out as u64);
    }

    /// Records a finished connection: how many requests it carried and how
    /// many of those reused the connection (keep-alive).
    pub fn record_connection(&self, requests_served: usize) {
        let metrics = self.telemetry.metrics();
        metrics
            .counter("fahana_http_connections_total", "connections accepted")
            .inc();
        if requests_served > 1 {
            metrics
                .counter(
                    "fahana_http_keepalive_reuse_total",
                    "requests served over an already-used (kept-alive) connection",
                )
                .add(requests_served as u64 - 1);
        }
    }

    /// Records an accept-loop failure (a connection the server never got
    /// to serve). The accept loop backs off briefly after counting one so
    /// a persistent local error cannot spin the loop hot.
    pub fn record_accept_error(&self) {
        self.telemetry
            .metrics()
            .counter(
                "fahana_serve_accept_errors_total",
                "accept() failures (connection never served)",
            )
            .inc();
    }

    /// Records a connection rejected at the door because the server was at
    /// its in-flight connection limit (answered 503 + Retry-After).
    pub fn record_rejected(&self) {
        self.telemetry
            .metrics()
            .counter(
                "fahana_serve_rejected_total",
                "connections rejected with 503 at the in-flight limit",
            )
            .inc();
    }

    /// Creates the reactor's instrument bundle and pins the readiness
    /// backend (`epoll` or `poll`) as a labeled constant gauge so a
    /// scrape can tell which code path is live.
    pub fn reactor_instruments(&self, backend: &'static str) -> ReactorInstruments {
        let metrics = self.telemetry.metrics();
        metrics
            .gauge_with(
                "fahana_serve_reactor_backend",
                "readiness backend in use (constant 1, labeled)",
                &[("backend", backend)],
            )
            .set(1);
        ReactorInstruments {
            parked: metrics.gauge(
                "fahana_serve_parked_connections",
                "keep-alive connections held by the reactor without a pool worker",
            ),
            wakeups: metrics.counter(
                "fahana_serve_reactor_wakeups_total",
                "reactor loop iterations (readiness, timer, or self-pipe wakes)",
            ),
            dispatches: metrics.counter(
                "fahana_serve_reactor_dispatches_total",
                "complete requests handed from the reactor to the pool",
            ),
            partial_writes: metrics.counter(
                "fahana_serve_reactor_partial_writes_total",
                "response writes that hit WOULDBLOCK and re-armed for write readiness",
            ),
        }
    }

    /// Records a connection cut by the reactor's deadline wheel, by kind
    /// (`idle`, `slowloris`, `write_stall`, `drain`).
    pub fn record_deadline_expiry(&self, kind: &'static str) {
        self.telemetry
            .metrics()
            .counter_with(
                "fahana_serve_deadline_expirations_total",
                "connections cut by the reactor deadline wheel, by kind",
                &[("kind", kind)],
            )
            .inc();
    }

    /// Refreshes the point-in-time gauges (pool, cache, uptime) from their
    /// sources. Called before either rendering.
    fn refresh_gauges(&self, view: &StoreView) {
        let metrics = self.telemetry.metrics();
        metrics
            .gauge("fahana_serve_uptime_seconds", "seconds since server start")
            .set(self.started.elapsed().as_secs() as i64);
        metrics
            .gauge(
                "fahana_store_generation",
                "store view reload generation (bumps on every reload)",
            )
            .set(view.generation() as i64);
        metrics
            .gauge("fahana_store_campaigns", "campaigns in the store view")
            .set(view.campaigns().len() as i64);
        if let Some(pool) = &self.pool {
            let stats = pool.stats();
            for (path, count) in [
                ("local", stats.local_pops),
                ("injector", stats.injector_pops),
                ("steal", stats.steals),
            ] {
                metrics
                    .counter_with(
                        "fahana_pool_jobs_total",
                        "pool jobs executed, by scheduling path",
                        &[("path", path)],
                    )
                    .set(count);
            }
            metrics
                .gauge("fahana_pool_threads", "pool worker threads")
                .set(stats.threads as i64);
            metrics
                .gauge("fahana_pool_queue_depth", "jobs queued and not yet started")
                .set(pool.queue_depth() as i64);
        }
        if let Some(cache) = &self.cache {
            let stats = cache.stats();
            for (name, help, count) in [
                (
                    "fahana_serve_cache_hits_total",
                    "response cache lookups answered from cached bytes",
                    stats.hits,
                ),
                (
                    "fahana_serve_cache_misses_total",
                    "response cache lookups that had to render",
                    stats.misses,
                ),
                (
                    "fahana_serve_cache_evictions_total",
                    "response cache entries evicted under capacity pressure",
                    stats.evictions,
                ),
                (
                    "fahana_serve_cache_invalidations_total",
                    "wholesale response cache flushes on generation bump",
                    stats.invalidations,
                ),
            ] {
                metrics.counter(name, help).set(count);
            }
            metrics
                .gauge(
                    "fahana_serve_cache_entries",
                    "response cache entries currently held",
                )
                .set(stats.entries as i64);
        }
    }

    /// The `GET /metrics` body: the registry in Prometheus text format.
    pub fn render_metrics(&self, view: &StoreView) -> String {
        self.refresh_gauges(view);
        self.telemetry.metrics().render_prometheus()
    }

    /// The `GET /statusz` body: uptime, store generation, and per-endpoint
    /// request counts with latency percentiles.
    pub fn statusz_json(&self, view: &StoreView) -> Json {
        self.refresh_gauges(view);
        let endpoints = super::unpoison(self.latencies.lock())
            .iter()
            .map(|(endpoint, latency)| {
                Json::Obj(vec![
                    ("endpoint".into(), Json::str(*endpoint)),
                    ("requests".into(), Json::Int(latency.count() as i64)),
                    ("p50_ms".into(), Json::Num(latency.quantile(0.5))),
                    ("p90_ms".into(), Json::Num(latency.quantile(0.9))),
                    ("p99_ms".into(), Json::Num(latency.quantile(0.99))),
                ])
            })
            .collect();
        let mut body = Json::Obj(vec![
            ("status".into(), Json::str("ok")),
            (
                "uptime_ms".into(),
                Json::Int(self.started.elapsed().as_millis() as i64),
            ),
            (
                "store_generation".into(),
                Json::Int(view.generation() as i64),
            ),
            ("campaigns".into(), Json::Int(view.campaigns().len() as i64)),
            ("endpoints".into(), Json::Arr(endpoints)),
        ]);
        if let Some(cache) = &self.cache {
            let stats = cache.stats();
            // `body` is the Json::Obj built a few lines up; the else
            // arm exists only to satisfy the let-else shape.
            let Json::Obj(fields) = &mut body else {
                return body;
            };
            fields.push((
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Int(stats.hits as i64)),
                    ("misses".into(), Json::Int(stats.misses as i64)),
                    ("evictions".into(), Json::Int(stats.evictions as i64)),
                    (
                        "invalidations".into(),
                        Json::Int(stats.invalidations as i64),
                    ),
                    ("entries".into(), Json::Int(stats.entries as i64)),
                    ("generation".into(), Json::Int(stats.generation as i64)),
                ]),
            ));
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_are_bounded() {
        assert_eq!(normalize_endpoint("/healthz"), "/healthz");
        assert_eq!(
            normalize_endpoint("/leaderboard/raspberry_pi_4"),
            "/leaderboard/{device}"
        );
        assert_eq!(
            normalize_endpoint("/leaderboard/../../etc/passwd"),
            "/leaderboard/{device}"
        );
        assert_eq!(normalize_endpoint("/favicon.ico"), "other");
        assert_eq!(normalize_endpoint("/metrics"), "/metrics");
    }
}
