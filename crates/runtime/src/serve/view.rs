//! A shared, reload-on-ingest read view over an [`ArtifactStore`].
//!
//! The one-shot `fahana-query` CLI re-scans and re-parses every artifact
//! per invocation — fine for a batch tool, unacceptable per request in a
//! long-lived daemon. [`StoreView`] parses the store once at startup and
//! hands out cheap `Arc` snapshots of the campaign set; the set is only
//! re-read from disk when an ingest goes through the view (or [`reload`]
//! is called after out-of-band writes).
//!
//! [`reload`]: StoreView::reload

use std::sync::{Arc, RwLock};

use crate::store::{ArtifactStore, StoreError, StoredCampaign};

/// An in-memory view of a store's campaigns, shared across request
/// handler threads.
///
/// The campaign set and its generation number live under one lock and are
/// swapped together, so [`StoreView::snapshot`] hands out a consistent
/// `(generation, campaigns)` pair: the response cache keys rendered bytes
/// by exactly the generation those bytes were rendered from, and a reload
/// racing a render can never mislabel old bytes with a new generation (or
/// vice versa).
#[derive(Debug)]
pub struct StoreView {
    store: ArtifactStore,
    /// `(generation, campaigns)`, swapped atomically on reload. The
    /// generation bumps on every successful [`StoreView::reload`];
    /// `/statusz` reports it so a scraper can tell "the daemon restarted"
    /// from "the view refreshed".
    state: RwLock<(u64, Arc<Vec<StoredCampaign>>)>,
}

impl StoreView {
    /// Opens a view over `store`, loading every campaign eagerly so the
    /// first request pays no parse cost (and a corrupt store fails fast,
    /// at startup).
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::campaigns`].
    pub fn open(store: ArtifactStore) -> Result<Self, StoreError> {
        let campaigns = Arc::new(store.campaigns()?);
        Ok(StoreView {
            store,
            state: RwLock::new((0, campaigns)),
        })
    }

    /// How many times the view has been successfully reloaded since it
    /// was opened.
    pub fn generation(&self) -> u64 {
        super::unpoison(self.state.read()).0
    }

    /// The underlying store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// A snapshot of the current campaign set. The `Arc` keeps the
    /// snapshot alive for as long as the request needs it, even if an
    /// ingest swaps the view underneath.
    pub fn campaigns(&self) -> Arc<Vec<StoredCampaign>> {
        Arc::clone(&super::unpoison(self.state.read()).1)
    }

    /// The current `(generation, campaigns)` pair, read under one lock so
    /// the two can never disagree — the anchor the response cache hangs
    /// its "never serve stale-generation bytes" guarantee on.
    pub fn snapshot(&self) -> (u64, Arc<Vec<StoredCampaign>>) {
        let state = super::unpoison(self.state.read());
        (state.0, Arc::clone(&state.1))
    }

    /// Re-reads the campaign set from disk (after out-of-band store
    /// writes, e.g. a concurrently running `fahana-campaign --store`).
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::campaigns`]; the previous snapshot stays
    /// in place on failure.
    pub fn reload(&self) -> Result<usize, StoreError> {
        let fresh = Arc::new(self.store.campaigns()?);
        let count = fresh.len();
        let mut state = super::unpoison(self.state.write());
        state.0 += 1;
        state.1 = fresh;
        Ok(count)
    }

    /// Ingests a report through the store (atomic artifact publish +
    /// catalog rebuild) and refreshes the view, so the next query sees the
    /// new campaign without a daemon restart.
    ///
    /// # Errors
    ///
    /// As [`ArtifactStore::ingest`]. A *reload* failure after a successful
    /// ingest is swallowed: the artifact is already durable, so reporting
    /// an error would tell the client its (accepted) publish failed — and
    /// a retry would then hit `DuplicateId`. The stale view heals on the
    /// next successful reload.
    pub fn ingest(&self, id: &str, report_json: &str) -> Result<StoredCampaign, StoreError> {
        let stored = self.store.ingest(id, report_json)?;
        self.reload().ok();
        Ok(stored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CampaignConfig, RewardSetting};
    use crate::{campaign_json, CampaignEngine};
    use edgehw::DeviceKind;

    fn tiny_report(seed: u64) -> String {
        let outcome = CampaignEngine::new(CampaignConfig {
            episodes: 4,
            samples: 120,
            threads: 2,
            seed,
            devices: vec![DeviceKind::RaspberryPi4],
            rewards: vec![RewardSetting::balanced()],
            freezing: vec![true],
            ..CampaignConfig::default()
        })
        .unwrap()
        .run()
        .unwrap();
        campaign_json(&outcome)
    }

    #[test]
    fn view_snapshots_and_reloads_on_ingest() {
        let root = std::env::temp_dir().join(format!("fahana-view-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let store = ArtifactStore::open(&root).unwrap();
        store.ingest("first", &tiny_report(1)).unwrap();

        let view = StoreView::open(store.clone()).unwrap();
        let before = view.campaigns();
        assert_eq!(before.len(), 1);

        // ingest through the view: new snapshot, old one still readable
        view.ingest("second", &tiny_report(2)).unwrap();
        assert_eq!(before.len(), 1, "held snapshot is immutable");
        assert_eq!(view.campaigns().len(), 2);

        // out-of-band store write is invisible until reload()
        store.ingest("third", &tiny_report(3)).unwrap();
        assert_eq!(view.campaigns().len(), 2);
        assert_eq!(view.reload().unwrap(), 3);
        assert_eq!(view.campaigns().len(), 3);

        // duplicate ids surface the store's error
        assert!(matches!(
            view.ingest("second", &tiny_report(4)),
            Err(StoreError::DuplicateId(_))
        ));
        std::fs::remove_dir_all(&root).ok();
    }
}
