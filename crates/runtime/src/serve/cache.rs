//! The generation-keyed response cache.
//!
//! Every read endpoint is a pure function of the store view: the same
//! `(method, path, query)` against the same [`StoreView::generation`]
//! renders the same bytes, bit for bit (the property `tests/serve_http.rs`
//! pins against the CLI). That makes cached response bytes free wins — as
//! long as a cached entry is *never* served across a generation bump. The
//! cache therefore holds entries for exactly one generation at a time:
//! a lookup against a newer generation flushes the whole map before
//! answering (wholesale invalidation — `POST /ingest` bumps the view
//! generation, so the next read after an ingest starts from an empty
//! cache), and an insert tagged with a stale generation is dropped on the
//! floor instead of poisoning the fresh map.
//!
//! The map is bounded: past `capacity` entries, the oldest inserted entry
//! is evicted (FIFO — the prerendered hot entries are inserted first and
//! re-inserted on every flush, so a scan of distinct `/query` filters
//! churns the tail, not the hot set). Hits, misses, evictions, and
//! invalidation flushes are counted on the cache itself and mirrored into
//! the [`MetricsRegistry`](crate::telemetry::MetricsRegistry) at scrape
//! time, the same way pool statistics are.
//!
//! [`StoreView::generation`]: crate::serve::view::StoreView::generation

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::serve::http::{Request, Response};

/// Point-in-time cache statistics (monotonic counters plus the live entry
/// count), as mirrored into `/metrics` and `/statusz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to render.
    pub misses: u64,
    /// Entries evicted to make room (capacity pressure, not invalidation).
    pub evictions: u64,
    /// Wholesale flushes caused by a generation bump.
    pub invalidations: u64,
    /// Entries currently held.
    pub entries: usize,
    /// The generation the held entries were rendered from.
    pub generation: u64,
}

/// What a cache lookup found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup {
    /// The exact response bytes rendered earlier this generation.
    Hit(Response),
    /// Nothing cached under this key. `flushed` is true when this lookup
    /// is the first against a new generation and just emptied the map —
    /// the router uses that edge to prerender the hot responses.
    Miss {
        /// Whether this lookup flushed a stale generation's entries.
        flushed: bool,
    },
}

#[derive(Debug, Default)]
struct CacheMap {
    /// The generation every held entry was rendered from.
    generation: u64,
    /// False until the first insert or lookup. The view's generation also
    /// starts at 0, so without this flag the very first lookup would not
    /// see a flush edge and nothing would trigger the initial prerender.
    primed: bool,
    // fahana-lint: allow(hash-iter) never iterated for output: lookups are by exact key, eviction order comes from the FIFO deque
    entries: HashMap<String, Response>,
    /// Insertion order, oldest first, for FIFO eviction.
    order: VecDeque<String>,
}

/// A bounded map from `(method, path, query)` to rendered response bytes,
/// valid for a single store-view generation.
#[derive(Debug)]
pub struct ResponseCache {
    capacity: usize,
    map: Mutex<CacheMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses. Capacity 0 disables
    /// caching entirely (every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            capacity,
            map: Mutex::new(CacheMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The cache key for a request: method + decoded path + decoded query
    /// pairs. Path and every query component are length-prefixed so no
    /// decoded byte sequence can collide with the separators — `?a=b%26c=d`
    /// and `?a=b&c=d` must be distinct keys, and a path that *contains* a
    /// serialized query tail must not alias a real query.
    pub fn key(request: &Request) -> String {
        let mut key = format!("{} {}:{}", request.method, request.path.len(), request.path);
        for (name, value) in &request.query {
            key.push_str(&format!("|{}:{name}={}:{value}", name.len(), value.len()));
        }
        key
    }

    /// Looks `key` up against `generation`. A lookup from a generation
    /// newer than the held entries flushes the map first (wholesale
    /// invalidation); a lookup from an *older* generation (a request that
    /// raced a reload and lost) bypasses the cache entirely — stale bytes
    /// are never served, and a fresher map is never flushed backwards.
    pub fn lookup(&self, key: &str, generation: u64) -> CacheLookup {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss { flushed: false };
        }
        let mut map = super::unpoison(self.map.lock());
        let mut flushed = false;
        if generation > map.generation {
            let stale = map.entries.len();
            map.entries.clear();
            map.order.clear();
            map.generation = generation;
            if stale > 0 {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
            flushed = true;
        } else if generation < map.generation {
            // this request rendered from a view snapshot that is already
            // superseded; serve it fresh, leave the cache alone
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss { flushed: false };
        }
        if !map.primed {
            // first-ever lookup: report the flush edge (so the caller
            // prerenders the hot set) without clearing anything
            map.primed = true;
            flushed = true;
        }
        match map.entries.get(key) {
            Some(response) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Hit(response.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Miss { flushed }
            }
        }
    }

    /// Caches `response` under `key`, valid for `generation`. Dropped
    /// silently when `generation` does not match the map's (the render
    /// raced a reload — caching it would serve stale bytes) or when the
    /// cache is disabled. Evicts the oldest entry at capacity.
    pub fn insert(&self, key: String, generation: u64, response: Response) {
        if self.capacity == 0 {
            return;
        }
        let mut map = super::unpoison(self.map.lock());
        if generation != map.generation {
            return;
        }
        map.primed = true;
        if map.entries.contains_key(&key) {
            // a concurrent miss on the same key won the race; both rendered
            // the same generation, so both hold identical bytes — keep the
            // incumbent and its position in the eviction order
            return;
        }
        while map.entries.len() >= self.capacity {
            let Some(oldest) = map.order.pop_front() else {
                break;
            };
            map.entries.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        map.order.push_back(key.clone());
        map.entries.insert(key, response);
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> CacheStatsSnapshot {
        let map = super::unpoison(self.map.lock());
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: map.entries.len(),
            generation: map.generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(body: &str) -> Response {
        Response::ok(body.to_string())
    }

    fn request(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    #[test]
    fn hit_after_insert_within_one_generation() {
        let cache = ResponseCache::new(8);
        let key = ResponseCache::key(&request("/catalog", &[]));
        assert_eq!(
            cache.lookup(&key, 0),
            CacheLookup::Miss { flushed: true },
            "the very first lookup establishes generation 0 over an empty map"
        );
        cache.insert(key.clone(), 0, response("catalog-bytes"));
        match cache.lookup(&key, 0) {
            CacheLookup::Hit(cached) => assert_eq!(cached.body, "catalog-bytes"),
            miss => panic!("expected a hit, got {miss:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn generation_bump_flushes_wholesale_and_stale_inserts_are_dropped() {
        let cache = ResponseCache::new(8);
        let key = ResponseCache::key(&request("/query", &[("device", "pi")]));
        cache.lookup(&key, 3);
        cache.insert(key.clone(), 3, response("gen-3"));

        // a lookup from generation 4 must never see gen-3 bytes
        assert_eq!(cache.lookup(&key, 4), CacheLookup::Miss { flushed: true });
        assert_eq!(cache.stats().entries, 0, "flush is wholesale");
        assert_eq!(cache.stats().invalidations, 1);

        // an insert still tagged 3 (its render raced the reload) is dropped
        cache.insert(key.clone(), 3, response("gen-3-late"));
        assert_eq!(cache.lookup(&key, 4), CacheLookup::Miss { flushed: false });

        // and a late *lookup* from generation 3 bypasses rather than
        // flushing the fresher map backwards
        cache.insert(key.clone(), 4, response("gen-4"));
        assert_eq!(cache.lookup(&key, 3), CacheLookup::Miss { flushed: false });
        assert!(matches!(cache.lookup(&key, 4), CacheLookup::Hit(_)));
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = ResponseCache::new(2);
        cache.lookup("a", 0);
        cache.insert("a".into(), 0, response("a"));
        cache.insert("b".into(), 0, response("b"));
        cache.insert("c".into(), 0, response("c"));
        assert_eq!(cache.lookup("a", 0), CacheLookup::Miss { flushed: false });
        assert!(matches!(cache.lookup("b", 0), CacheLookup::Hit(_)));
        assert!(matches!(cache.lookup("c", 0), CacheLookup::Hit(_)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::new(0);
        assert_eq!(
            cache.lookup("a", 0),
            CacheLookup::Miss { flushed: false },
            "a disabled cache never reports a flush edge (nothing to prerender into)"
        );
        cache.insert("a".into(), 0, response("a"));
        assert_eq!(cache.lookup("a", 0), CacheLookup::Miss { flushed: false });
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn keys_cannot_collide_across_query_encodings() {
        // `?a=b&c=d` and `?a=b&c=d` spelled as one decoded value must not
        // share a key, or one filter's bytes would answer the other
        let two_pairs = ResponseCache::key(&request("/query", &[("a", "b"), ("c", "d")]));
        let one_pair = ResponseCache::key(&request("/query", &[("a", "b&c=d")]));
        assert_ne!(two_pairs, one_pair);
        let nested = ResponseCache::key(&request("/query", &[("a", "b|1:c=1:d")]));
        assert_ne!(two_pairs, nested);
        // a path embedding a serialized query tail must not alias either
        let weird_path = ResponseCache::key(&request("/query|1:a=1:b|1:c=1:d", &[]));
        assert_ne!(two_pairs, weird_path);
    }
}
