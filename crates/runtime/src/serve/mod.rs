//! `fahana-serve` — a std-only, long-lived HTTP/1.1 daemon over the
//! campaign [`ArtifactStore`](crate::store::ArtifactStore).
//!
//! The paper's end goal is picking fair, small architectures for edge
//! devices *at query time*; the one-shot `fahana-query` CLI pays a full
//! process spawn and a whole-store re-parse per question. This module is
//! the serving front-end the ROADMAP calls for instead:
//!
//! * [`view`] — a reload-on-ingest [`StoreView`]: campaigns parsed once,
//!   shared across handler threads as `Arc` snapshots, with the
//!   generation and campaign set swapped under one lock;
//! * [`http`] — hand-rolled HTTP/1.1 request parsing and JSON responses
//!   (no hyper in the offline build), with keep-alive connection reuse
//!   for sequential clients, per-request read deadlines and body caps
//!   ([`RequestLimits`]), and a minimal framed client
//!   ([`client_roundtrip`], [`client_exchange`]) used by the
//!   `fahana-shard` coordinator and the `fahana-loadgen` bench;
//! * [`cache`] — a generation-keyed [`ResponseCache`]: rendered read
//!   responses valid for exactly one store generation, flushed wholesale
//!   when `POST /ingest` bumps it, hot entries prerendered on every bump;
//! * [`router`] — the endpoint table (see below);
//! * [`reactor`] (unix) — the nonblocking readiness loop (`epoll` with a
//!   portable `poll(2)` fallback, hand-declared FFI): every accepted
//!   socket lives here, idle keep-alive connections park off-worker, and
//!   only complete buffered requests are dispatched to the pool, so
//!   connection count and `--threads` are independent axes;
//! * [`server`] — the [`Server`] accept loop, registering admitted
//!   connections with the reactor (an in-flight gate ([`ServeOptions`])
//!   still answers 503 + `Retry-After` at the door when saturated), over
//!   the same work-stealing [`ThreadPool`](crate::pool::ThreadPool)
//!   campaigns use;
//! * [`obs`] — the serve-side observability context: per-endpoint request
//!   counters and latency histograms (bounded label vocabulary), body
//!   byte totals and keep-alive reuse, rendered as Prometheus text
//!   (`GET /metrics`) and a JSON status document (`GET /statusz`).
//!
//! ## Endpoints
//!
//! | Route | Answer |
//! |---|---|
//! | `GET /healthz` | liveness + campaign/scenario counts |
//! | `GET /query` | [`StoreQuery`](crate::store::StoreQuery) over URL params — byte-identical to `fahana-query --json` |
//! | `GET /campaigns` | id/size/wall-clock summary per ingested campaign |
//! | `GET /catalog` | the coverage catalog (same document as `catalog.json`) |
//! | `GET /leaderboard/{device_slug}` | per-device best-by-reward ranking (`?top=N`) |
//! | `GET /metrics` | the metrics registry, Prometheus text exposition format |
//! | `GET /statusz` | JSON status: uptime, store generation, per-endpoint latency percentiles |
//! | `POST /ingest?id=ID` | atomic artifact publish + catalog rebuild + view refresh |

pub mod cache;
pub mod http;
pub mod obs;

/// Recovers the guard from a poisoned lock instead of panicking.
///
/// Every mutex on the serve path protects a small invariant-complete
/// critical section (queue push/drain, map insert, counter bump) — a
/// panic elsewhere cannot leave the protected data half-updated, so the
/// right response to poison is to keep serving, not to cascade the
/// panic into the reactor or a pool worker and take the daemon down.
pub(crate) fn unpoison<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
#[cfg(unix)]
pub(crate) mod reactor;
pub mod router;
pub mod server;
pub mod view;

pub use cache::{CacheLookup, CacheStatsSnapshot, ResponseCache};
pub use http::{
    client_exchange, client_roundtrip, ClientResponse, Request, RequestLimits, Response,
};
pub use obs::ServeTelemetry;
pub use router::route;
pub use server::{ReactorBackend, ServeOptions, Server, ServerHandle};
pub use view::StoreView;
